"""Legacy setup shim.

The execution environment is offline and lacks the `wheel` package, so
PEP 660 editable installs fail; this setup.py lets `pip install -e .`
take the legacy `setup.py develop` path. All metadata lives here (the
offline pip/setuptools combination cannot combine [project] metadata
with a legacy editable install).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SQL-TS and the OPS generalized-KMP sequence-query optimizer "
        "(Sadri & Zaniolo, PODS 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
