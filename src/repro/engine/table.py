"""Typed in-memory tables.

A :class:`Table` stores rows as plain dicts validated against a
:class:`Schema`.  Types are the small set the paper's examples need —
strings, integers, floats, and dates — with ``int`` acceptable wherever
``float`` is declared (SQL numeric widening).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

#: Supported column type names.
TYPES = ("str", "int", "float", "date")

_PYTHON_TYPES = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "date": (_dt.date,),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in TYPES:
            raise SchemaError(f"unknown column type {self.type!r} (choose from {TYPES})")
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def validate(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, _PYTHON_TYPES[self.type]):
            raise SchemaError(
                f"column {self.name!r} expects {self.type}, got {value!r}"
            )


class Schema:
    """An ordered collection of columns."""

    __slots__ = ("_columns", "_by_name")

    def __init__(self, columns: Iterable[Column | tuple[str, str]]):
        normalized = [
            column if isinstance(column, Column) else Column(*column)
            for column in columns
        ]
        names = [column.name for column in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names: {names}")
        if not normalized:
            raise SchemaError("a schema needs at least one column")
        self._columns = tuple(normalized)
        self._by_name = {column.name: column for column in normalized}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def validate_row(self, row: Mapping[str, object]) -> dict[str, object]:
        """Validate and normalize one row (extra keys are rejected)."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"row has unknown columns: {sorted(unknown)}")
        validated: dict[str, object] = {}
        for column in self._columns:
            if column.name not in row:
                raise SchemaError(f"row is missing column {column.name!r}")
            value = row[column.name]
            column.validate(value)
            validated[column.name] = value
        return validated

    def __repr__(self) -> str:
        body = ", ".join(f"{c.name} {c.type}" for c in self._columns)
        return f"Schema({body})"


class Table:
    """An insert-ordered bag of schema-validated rows."""

    __slots__ = ("name", "schema", "_rows")

    def __init__(self, name: str, schema: Schema | Iterable[Column | tuple[str, str]]):
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: list[dict[str, object]] = []

    def insert(self, row: Mapping[str, object]) -> None:
        self._rows.append(self.schema.validate_row(row))

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.insert(row)

    @property
    def rows(self) -> list[dict[str, object]]:
        """The live row list (treated as read-only by the executor)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {self.schema!r})"
