"""The table catalog: name -> Table registry used by the executor."""

from __future__ import annotations

from typing import Iterator

from repro.engine.table import Table
from repro.errors import ExecutionError


class Catalog:
    """A flat namespace of tables."""

    __slots__ = ("_tables",)

    def __init__(self, tables: tuple[Table, ...] | list[Table] = ()):
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.register(table)

    def register(self, table: Table) -> Table:
        if table.name in self._tables:
            raise ExecutionError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        return table

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise ExecutionError(f"no table named {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
