"""Query results: an ordered relation with named columns."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.resilience import Diagnostics


class Result:
    """An immutable result relation.

    Rows are tuples aligned with ``columns``; ``to_dicts()`` gives the
    dict view, ``pretty()`` an aligned text table for examples and
    benchmark reports.

    ``diagnostics`` records anything the producing execution skipped,
    downgraded, or cut short (see :mod:`repro.resilience`); it is
    informational and excluded from equality/hashing, so result
    comparisons keep their relational meaning.  ``profile`` is the
    EXPLAIN ANALYZE-style :class:`~repro.obs.QueryProfile` of a traced
    execution (None on untraced runs) — likewise informational and
    excluded from equality.
    """

    __slots__ = ("columns", "rows", "diagnostics", "profile")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Sequence[tuple],
        diagnostics: Optional[Diagnostics] = None,
    ):
        self.columns = tuple(columns)
        self.rows = tuple(tuple(row) for row in rows)
        self.diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        self.profile = None
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} != column count {len(self.columns)}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[object]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no result column {name!r}") from None
        return [row[index] for row in self.rows]

    def pretty(self, max_rows: int | None = 20) -> str:
        """Aligned text rendering, truncated to ``max_rows`` (None = all)."""
        shown = list(self.rows if max_rows is None else self.rows[:max_rows])
        cells = [[_fmt(value) for value in row] for row in shown]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        header = " | ".join(name.ljust(w) for name, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
        ]
        lines = [header, rule, *body]
        hidden = len(self.rows) - len(shown)
        if hidden > 0:
            lines.append(f"... ({hidden} more rows)")
        return "\n".join(lines)

    def to_csv(self, path) -> None:
        """Write the result relation as CSV (dates in ISO form)."""
        import csv
        import datetime as _dt

        def render(value: object) -> str:
            if value is None:
                return ""
            if isinstance(value, _dt.date):
                return value.isoformat()
            return str(value)

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow([render(value) for value in row])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Result):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.columns, self.rows))

    def __repr__(self) -> str:
        note = "" if self.diagnostics.ok else ", diagnostics"
        return f"Result({len(self.rows)} rows x {len(self.columns)} cols{note})"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "NULL"
    return str(value)
