"""A statement session: CREATE TABLE, INSERT, and SQL-TS queries together.

:class:`Session` is the miniature-database front door: feed it statement
text (single statements or ``;``-separated scripts) and it maintains the
catalog, loads data, and executes pattern queries::

    session = Session(domains=AttributeDomains.prices())
    session.execute("CREATE TABLE quote (name Varchar(8), date Date, price Real)")
    session.execute("INSERT INTO quote VALUES ('IBM', '1999-01-25', 100.0)")
    result = session.execute("SELECT ... FROM quote ... AS (X, Y) WHERE ...")
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.result import Result
from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.match.base import Instrumentation, Matcher
from repro.pattern.predicates import AttributeDomains
from repro.sqlts.ddl import (
    coerce_value,
    parse_create_table,
    parse_insert,
    statement_kind,
)


class Session:
    """Holds a catalog and executes statements against it."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        domains: Optional[AttributeDomains] = None,
        matcher: Union[str, Matcher] = "ops",
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self._executor = Executor(self.catalog, domains=domains, matcher=matcher)

    def execute(
        self,
        statement: str,
        instrumentation: Optional[Instrumentation] = None,
    ) -> Optional[Result]:
        """Execute one statement; queries return a Result, DDL/DML None."""
        kind = statement_kind(statement)
        if kind == "create":
            self._create(statement)
            return None
        if kind == "insert":
            self._insert(statement)
            return None
        return self._executor.execute(statement, instrumentation)

    def run_script(self, script: str) -> list[Result]:
        """Execute a ``;``-separated script; returns the query results."""
        results = []
        for statement in split_statements(script):
            result = self.execute(statement)
            if result is not None:
                results.append(result)
        return results

    # ------------------------------------------------------------------

    def _create(self, statement: str) -> None:
        parsed = parse_create_table(statement)
        self.catalog.register(Table(parsed.name, parsed.columns))

    def _insert(self, statement: str) -> None:
        parsed = parse_insert(statement)
        table = self.catalog.table(parsed.table)
        schema = table.schema
        columns = parsed.columns if parsed.columns is not None else schema.names
        for row_values in parsed.rows:
            if len(row_values) != len(columns):
                raise ExecutionError(
                    f"INSERT row has {len(row_values)} values for "
                    f"{len(columns)} columns"
                )
            row = {
                column: coerce_value(value, schema.column(column).type)
                for column, value in zip(columns, row_values)
            }
            table.insert(row)


def split_statements(script: str) -> list[str]:
    """Split a script on ``;`` outside string literals; drop blanks."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if in_string:
            current.append(char)
            if char == "'":
                # '' is an escaped quote inside the literal.
                if index + 1 < len(script) and script[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            statements.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    statements.append("".join(current))
    return [statement for statement in statements if statement.strip()]
