"""A statement session: CREATE TABLE, INSERT, and SQL-TS queries together.

:class:`Session` is the miniature-database front door: feed it statement
text (single statements or ``;``-separated scripts) and it maintains the
catalog, loads data, and executes pattern queries::

    session = Session(domains=AttributeDomains.prices())
    session.execute("CREATE TABLE quote (name Varchar(8), date Date, price Real)")
    session.execute("INSERT INTO quote VALUES ('IBM', '1999-01-25', 100.0)")
    result = session.execute("SELECT ... FROM quote ... AS (X, Y) WHERE ...")

A session carries an :class:`~repro.resilience.ErrorPolicy` and optional
:class:`~repro.resilience.ResourceLimits`: under ``SKIP``/``COLLECT``
bad INSERT rows and malformed CSV rows are quarantined into
``session.diagnostics`` instead of aborting, and scripts can continue
past failing statements, collecting per-statement errors.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.catalog import Catalog
from repro.engine.csv_io import load_csv
from repro.engine.executor import Executor
from repro.engine.result import Result
from repro.engine.table import Schema, Table
from repro.errors import ExecutionError, ReproError, SchemaError, StatementError
from repro.match.base import Instrumentation, Matcher
from repro.pattern.predicates import AttributeDomains
from repro.resilience import Diagnostics, ErrorPolicy, ResourceLimits
from repro.sqlts.ddl import (
    coerce_value,
    parse_create_table,
    parse_insert,
    statement_kind,
)

#: Characters of a failing statement echoed into error context.
_SNIPPET_CHARS = 80


def _snippet(statement: str) -> str:
    text = " ".join(statement.split())
    return text[:_SNIPPET_CHARS]


class Session:
    """Holds a catalog and executes statements against it."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        domains: Optional[AttributeDomains] = None,
        matcher: Union[str, Matcher] = "ops",
        policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
        limits: Optional[ResourceLimits] = None,
        workers: int = 1,
        parallel_mode: str = "auto",
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.policy = ErrorPolicy.coerce(policy)
        self.limits = limits if limits is not None else ResourceLimits()
        self.diagnostics = Diagnostics()
        self._executor = Executor(
            self.catalog,
            domains=domains,
            matcher=matcher,
            policy=self.policy,
            limits=self.limits,
            workers=workers,
            parallel_mode=parallel_mode,
        )

    def execute(
        self,
        statement: str,
        instrumentation: Optional[Instrumentation] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        workers: Optional[int] = None,
        cancel=None,
        trace=None,
    ) -> Optional[Result]:
        """Execute one statement; queries return a Result, DDL/DML None.

        ``limits``, ``workers``, and ``cancel`` override the session's
        executor configuration for this statement only (see
        :meth:`repro.engine.executor.Executor.execute_with_report`) —
        the serving layer uses them to apply per-tenant quotas and
        cooperative cancellation over one shared session.  ``trace``
        (a :class:`~repro.obs.Trace`) turns on the flight recorder for
        a query statement; the returned ``Result`` then carries a
        ``profile``.
        """
        kind = statement_kind(statement)
        if kind == "create":
            self._create(statement)
            return None
        if kind == "insert":
            self._insert(statement)
            return None
        result = self._executor.execute(
            statement,
            instrumentation,
            limits=limits,
            workers=workers,
            cancel=cancel,
            trace=trace,
        )
        self.diagnostics.merge(result.diagnostics)
        return result

    def run_script(
        self,
        script: str,
        *,
        continue_on_error: Optional[bool] = None,
    ) -> list[Result]:
        """Execute a ``;``-separated script; returns the query results.

        A failing statement raises :class:`~repro.errors.StatementError`
        carrying its 1-based index and leading text, with the original
        error chained.  With ``continue_on_error=True`` (the default
        under the ``COLLECT`` policy) failing statements are instead
        recorded in ``session.diagnostics.errors`` and execution
        proceeds with the next statement.
        """
        if continue_on_error is None:
            continue_on_error = self.policy is ErrorPolicy.COLLECT
        results = []
        for index, statement in enumerate(split_statements(script), start=1):
            try:
                result = self.execute(statement)
            except ReproError as error:
                if not continue_on_error:
                    raise StatementError(index, _snippet(statement), error) from error
                self.diagnostics.record_error(index, _snippet(statement), error)
                continue
            if result is not None:
                results.append(result)
        return results

    def stream(
        self,
        query: str,
        source_factory,
        *,
        store=None,
        checkpoints=None,
        retry=None,
        resume: bool = False,
        overflow: str = "raise",
        instrumentation: Optional[Instrumentation] = None,
        stop=None,
        trace=None,
    ):
        """Plan a crash-recoverable streaming query (see Executor.stream).

        ``source_factory(start_offset)`` yields ``(offset, row)`` pairs —
        :func:`repro.engine.csv_io.iter_csv` satisfies the contract for
        CSV files.  Stream diagnostics (checkpoints written/restored,
        retries, suppressed duplicates) accumulate into
        ``session.diagnostics``.
        """
        return self._executor.stream(
            query,
            source_factory,
            store=store,
            checkpoints=checkpoints,
            retry=retry,
            resume=resume,
            overflow=overflow,
            instrumentation=instrumentation,
            diagnostics=self.diagnostics,
            stop=stop,
            trace=trace,
        )

    def load_csv(
        self, path, name: str, schema: Union[Schema, object]
    ) -> Table:
        """Load a CSV file into a new table registered with the catalog.

        The session's error policy applies: lenient policies quarantine
        malformed rows into ``session.diagnostics``.
        """
        table = load_csv(
            path,
            name,
            schema if isinstance(schema, Schema) else Schema(schema),
            policy=self.policy,
            diagnostics=self.diagnostics,
        )
        self.catalog.register(table)
        return table

    # ------------------------------------------------------------------

    def _create(self, statement: str) -> None:
        parsed = parse_create_table(statement)
        self.catalog.register(Table(parsed.name, parsed.columns))

    def _insert(self, statement: str) -> None:
        parsed = parse_insert(statement)
        table = self.catalog.table(parsed.table)
        schema = table.schema
        columns = parsed.columns if parsed.columns is not None else schema.names
        for row_number, row_values in enumerate(parsed.rows, start=1):
            try:
                table.insert(
                    self._coerce_row(schema, columns, row_values)
                )
            except (ExecutionError, SchemaError) as error:
                if not self.policy.lenient:
                    raise
                self.diagnostics.quarantine(
                    f"INSERT INTO {parsed.table}",
                    row_number,
                    str(error),
                    tuple(row_values),
                )
                if self.policy is ErrorPolicy.COLLECT:
                    self.diagnostics.record_error(
                        row_number, f"INSERT INTO {parsed.table}", error
                    )

    @staticmethod
    def _coerce_row(
        schema: Schema, columns, row_values
    ) -> dict[str, object]:
        if len(row_values) != len(columns):
            raise ExecutionError(
                f"INSERT row has {len(row_values)} values for "
                f"{len(columns)} columns"
            )
        row: dict[str, object] = {}
        for column, value in zip(columns, row_values):
            type_name = schema.column(column).type
            try:
                row[column] = coerce_value(value, type_name)
            except (ValueError, TypeError) as error:
                raise ExecutionError(
                    f"column {column!r}: cannot coerce {value!r} "
                    f"to {type_name} ({error})"
                ) from error
        return row


def split_statements(script: str) -> list[str]:
    """Split a script on ``;`` outside string literals; drop blanks."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if in_string:
            current.append(char)
            if char == "'":
                # '' is an escaped quote inside the literal.
                if index + 1 < len(script) and script[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            statements.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    statements.append("".join(current))
    return [statement for statement in statements if statement.strip()]
