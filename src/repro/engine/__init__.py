"""A self-contained in-memory relational engine hosting SQL-TS.

The paper runs SQL-TS inside a conventional DBMS, implemented "via
user-defined aggregates that are capable of applying arbitrary SQL
statements on input streams" [17].  This subpackage is that substrate,
built from scratch:

- typed tables with schema validation (:mod:`repro.engine.table`);
- a catalog of named tables (:mod:`repro.engine.catalog`);
- CLUSTER BY grouping and SEQUENCE BY sorting (:mod:`repro.engine.cluster`);
- a streaming user-defined-aggregate framework, including the SQL-TS
  pattern matcher expressed as a UDA (:mod:`repro.engine.aggregates`);
- the query executor tying parser, analyzer, OPS compiler, and matcher
  together (:mod:`repro.engine.executor`);
- CSV import/export (:mod:`repro.engine.csv_io`).
"""

from repro.engine.table import Column, Schema, Table
from repro.engine.catalog import Catalog
from repro.engine.cluster import clusters_of
from repro.engine.executor import ExecutionReport, Executor, execute
from repro.engine.result import Result

__all__ = [
    "Column",
    "Schema",
    "Table",
    "Catalog",
    "clusters_of",
    "Executor",
    "ExecutionReport",
    "execute",
    "Result",
]
