"""The SQL-TS query executor.

Ties the whole stack together: parse → analyze → compile the pattern with
OPS → for every cluster, apply the hoisted cluster filter and run the
configured matcher via the UDA substrate → evaluate the SELECT items on
each match.

The matcher is pluggable (``"ops"`` — the default, star-capable OPS
runtime — or ``"naive"``), and an :class:`~repro.match.base.Instrumentation`
can be threaded through to count predicate evaluations, which is how the
benchmark harness reproduces the paper's speedup numbers.

Resilience (see ``docs/resilience.md``): an
:class:`~repro.resilience.ErrorPolicy` and
:class:`~repro.resilience.ResourceLimits` can be supplied.  Under a
lenient policy, OPS compilation failures and star-capability mismatches
degrade to the ``fallback`` matcher (default ``"naive"``) instead of
raising — identical matches, more predicate tests — and every limit in
``limits`` is enforced by a :class:`~repro.resilience.Budget` threaded
into the matcher loops, so a runaway query returns partial results with
a limit diagnostic instead of hanging.  The default ``RAISE`` policy
with no limits behaves exactly like the seed executor.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, Tuple, Union

from repro.engine.aggregates import PatternSearchAggregate, apply_aggregate
from repro.engine.catalog import Catalog
from repro.engine.cluster import clusters_of
from repro.engine.result import Result
from repro.errors import ExecutionError, PlanningError
from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation, Match, Matcher
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.obs import MetricsRegistry, QueryProfile, Trace
from repro.pattern.compiler import CompiledPattern, compile_pattern, degraded_pattern
from repro.pattern.predicates import AttributeDomains
from repro.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    RecoveringStreamRunner,
    RetryPolicy,
)
from repro.resilience import Budget, Diagnostics, ErrorPolicy, ResourceLimits
from repro.sqlts import ast
from repro.sqlts.expressions import evaluate_condition, evaluate_expr
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import AnalyzedQuery, analyze

MATCHERS: dict[str, type] = {
    "ops": OpsStarMatcher,
    "ops-nonstar": OpsMatcher,
    "naive": NaiveMatcher,
    "backtracking": BacktrackingMatcher,
}

#: Matchers that ignore shift/next and are therefore safe for degraded
#: plans (restart-based scans).
_RESTART_MATCHERS = ("naive", "backtracking")

#: Execution modes accepted by ``parallel_mode`` (see
#: :mod:`repro.engine.parallel`).
PARALLEL_MODES = ("auto", "process", "thread")

#: Predicate evaluation modes accepted by ``evaluator``: ``"row"`` pins
#: the per-row closures (the differential oracle for the columnar path),
#: ``"columnar"`` always materializes truth arrays for the lowered
#: elements, and ``"auto"`` does so only when the NumPy batch backend is
#: active (the pure-Python batch backend can cost more than the sparse
#: row path it replaces).  Matches are byte-identical in every mode.
EVALUATOR_MODES = ("auto", "columnar", "row")


@dataclass
class _CachedPlan:
    """One plan-cache entry: the analysis/compilation outcome of a query.

    ``planning_error`` is set when OPS compilation failed; ``compiled``
    is then the degraded placeholder plan and ``degrade_reason`` the
    downgrade diagnostic to re-record on every cache hit (diagnostics
    are per-execution, the cache is not).
    """

    analyzed: AnalyzedQuery
    compiled: CompiledPattern
    planning_error: Optional[PlanningError] = None
    degrade_reason: Optional[str] = None


@dataclass
class ExecutionReport:
    """Execution statistics alongside the compiled plan."""

    matcher: str
    clusters: int
    clusters_searched: int
    rows_scanned: int
    predicate_tests: int
    matches: int
    pattern: CompiledPattern
    diagnostics: Diagnostics = field(default_factory=Diagnostics)

    @property
    def limit_hit(self) -> bool:
        return self.diagnostics.limit_hit

    @property
    def degraded(self) -> bool:
        return self.diagnostics.degraded


class Executor:
    """Executes SQL-TS queries against a catalog of tables."""

    def __init__(
        self,
        catalog: Catalog,
        domains: Optional[AttributeDomains] = None,
        matcher: Union[str, Matcher] = "ops",
        policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
        limits: Optional[ResourceLimits] = None,
        fallback: Optional[str] = "naive",
        codegen: bool = True,
        plan_cache_size: int = 128,
        workers: int = 1,
        parallel_mode: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        evaluator: str = "auto",
    ):
        self._catalog = catalog
        self._domains = domains if domains is not None else AttributeDomains.none()
        self._matcher_name, self._matcher = _resolve_matcher(matcher)
        self._policy = ErrorPolicy.coerce(policy)
        self._limits = limits if limits is not None else ResourceLimits()
        if fallback is not None and fallback not in _RESTART_MATCHERS:
            raise ExecutionError(
                f"fallback matcher must be restart-based "
                f"{_RESTART_MATCHERS}, got {fallback!r}"
            )
        self._fallback = fallback
        self._codegen = codegen
        if plan_cache_size < 0:
            raise ExecutionError(
                f"plan_cache_size must be >= 0, got {plan_cache_size}"
            )
        self._plan_cache_size = plan_cache_size
        self._plan_cache: OrderedDict[
            tuple[str, tuple[str, ...]], _CachedPlan
        ] = OrderedDict()
        # Cache reads mutate LRU order (move_to_end) and eviction mutates
        # the dict, so every access is serialized: parallel thread workers
        # and user threads sharing one executor must not corrupt it.
        self._plan_cache_lock = threading.Lock()
        # The flight recorder's registry (docs/observability.md): shared
        # with the serving layer when one is passed in, private otherwise.
        # Plan-cache traffic lives here — ``plan_cache_hits``/``_misses``
        # stay available as int properties for existing callers.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._plan_cache_hit_counter = self.metrics.counter(
            "repro_plan_cache_hits_total", "Plan-cache hits"
        )
        self._plan_cache_miss_counter = self.metrics.counter(
            "repro_plan_cache_misses_total", "Plan-cache misses"
        )
        self._queries_counter = self.metrics.counter(
            "repro_queries_total", "Queries executed to completion"
        )
        self._query_seconds = self.metrics.histogram(
            "repro_query_seconds", "Query wall time in seconds"
        )
        if not isinstance(workers, int) or workers < 1:
            raise ExecutionError(f"workers must be a positive int, got {workers!r}")
        if parallel_mode not in PARALLEL_MODES:
            raise ExecutionError(
                f"parallel_mode must be one of {PARALLEL_MODES}, "
                f"got {parallel_mode!r}"
            )
        self._workers = workers
        self._parallel_mode = parallel_mode
        if evaluator not in EVALUATOR_MODES:
            raise ExecutionError(
                f"evaluator must be one of {EVALUATOR_MODES}, "
                f"got {evaluator!r}"
            )
        self._evaluator = evaluator

    @property
    def plan_cache_hits(self) -> int:
        return int(self._plan_cache_hit_counter.value)

    @property
    def plan_cache_misses(self) -> int:
        return int(self._plan_cache_miss_counter.value)

    def prepare(self, query: Union[str, ast.Query]) -> tuple[AnalyzedQuery, CompiledPattern]:
        """Parse, analyze, and OPS-compile a query without running it."""
        entry = self._analyze_and_compile(query)
        if entry.planning_error is not None:
            raise entry.planning_error
        return entry.analyzed, entry.compiled

    def execute(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
        *,
        workers: Optional[int] = None,
        limits: Optional[ResourceLimits] = None,
        cancel: Optional[Callable[[], Optional[str]]] = None,
        trace: Optional[Trace] = None,
    ) -> Result:
        result, _ = self.execute_with_report(
            query,
            instrumentation,
            workers=workers,
            limits=limits,
            cancel=cancel,
            trace=trace,
        )
        return result

    def execute_with_report(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
        *,
        workers: Optional[int] = None,
        limits: Optional[ResourceLimits] = None,
        cancel: Optional[Callable[[], Optional[str]]] = None,
        trace: Optional[Trace] = None,
    ) -> tuple[Result, ExecutionReport]:
        """Execute ``query``, serially or partition-parallel.

        ``workers`` overrides the executor-level worker count for this
        call.  ``workers=1`` (the default) is exactly the seed's serial
        path; ``workers>1`` hands the admitted partitions to
        :func:`repro.engine.parallel.execute_parallel`, whose merge is
        deterministic and — absent resource limits — byte-identical to
        serial execution (see ``docs/performance.md``).

        ``limits`` overrides the executor-level :class:`ResourceLimits`
        for this call only — the serving layer uses it to apply
        per-tenant and per-request deadlines over one shared executor
        (and its shared plan cache).  ``cancel`` is a cooperative
        cancellation hook (see :class:`~repro.resilience.CancelToken`):
        called periodically from the budget checks; returning a reason
        string trips the budget and the query returns partial results
        with a limit diagnostic.

        ``trace`` (a :class:`~repro.obs.Trace`) turns on the flight
        recorder for this call: spans cover planning, the cluster scan
        (or the parallel pool), and the result carries an
        EXPLAIN ANALYZE-style :class:`~repro.obs.QueryProfile` on
        ``result.profile``.  With ``trace=None`` (the default) the
        traced code paths are never entered — output is byte-identical
        either way (asserted by ``repro.bench.obs_overhead``).
        """
        effective_workers = self._workers if workers is None else workers
        if not isinstance(effective_workers, int) or effective_workers < 1:
            raise ExecutionError(
                f"workers must be a positive int, got {effective_workers!r}"
            )
        started = time.perf_counter()
        if effective_workers > 1:
            from repro.engine.parallel import execute_parallel

            result, report = execute_parallel(
                self,
                query,
                instrumentation,
                workers=effective_workers,
                mode=self._parallel_mode,
                limits=limits,
                cancel=cancel,
                trace=trace,
            )
        else:
            result, report = self._execute_serial(
                query, instrumentation, limits=limits, cancel=cancel, trace=trace
            )
        self._queries_counter.inc()
        self._query_seconds.observe(time.perf_counter() - started)
        return result, report

    def _execute_serial(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        cancel: Optional[Callable[[], Optional[str]]] = None,
        trace: Optional[Trace] = None,
    ) -> tuple[Result, ExecutionReport]:
        if trace is None:
            return self._serial_pass(
                query, instrumentation, limits=limits, cancel=cancel, trace=None
            )
        with trace.span("execute", mode="serial") as root:
            result, report = self._serial_pass(
                query, instrumentation, limits=limits, cancel=cancel, trace=trace
            )
        root.annotate(
            matcher=report.matcher,
            matches=report.matches,
            rows_scanned=report.rows_scanned,
            tests=report.predicate_tests,
        )
        result.profile = QueryProfile(trace, report)
        return result, report

    def _serial_pass(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
        *,
        limits: Optional[ResourceLimits] = None,
        cancel: Optional[Callable[[], Optional[str]]] = None,
        trace: Optional[Trace] = None,
    ) -> tuple[Result, ExecutionReport]:
        diagnostics = Diagnostics()
        if trace is not None:
            with trace.span("plan") as plan_span:
                analyzed, compiled, matcher_name, matcher = self._plan(
                    query, diagnostics
                )
            _annotate_plan_span(
                plan_span, diagnostics, matcher_name, compiled
            )
        else:
            analyzed, compiled, matcher_name, matcher = self._plan(query, diagnostics)
        instrumentation = instrumentation or Instrumentation()
        if trace is not None:
            instrumentation.enable_detail()
        effective_limits = limits if limits is not None else self._limits
        budget = (
            Budget(effective_limits, diagnostics, cancel=cancel)
            if effective_limits.bounded or cancel is not None
            else None
        )
        table = self._catalog.table(analyzed.table)
        columns = [
            item.output_name(position)
            for position, item in enumerate(analyzed.select, start=1)
        ]
        output_rows: list[tuple] = []
        clusters = 0
        searched = 0
        scanned = 0
        match_count = 0
        with (
            trace.span("scan") if trace is not None else nullcontext()
        ) as scan_span:
            for key, rows in clusters_of(
                table,
                analyzed.cluster_by,
                analyzed.sequence_by,
                policy=self._policy,
                diagnostics=diagnostics,
            ):
                clusters += 1
                if budget is not None and budget.check_deadline():
                    break
                if not _cluster_passes(analyzed, rows):
                    continue
                if budget is not None and budget.add_rows(len(rows)):
                    break
                searched += 1
                scanned += len(rows)
                if trace is not None:
                    tests_before = instrumentation.tests
                    with trace.span("cluster") as cluster_span:
                        matches, matcher_name, matcher = self._search_cluster(
                            rows, compiled, matcher_name, matcher,
                            instrumentation, budget, diagnostics, trace=trace,
                        )
                    cluster_span.annotate(
                        partition=_cluster_label(key),
                        rows=len(rows),
                        tests=instrumentation.tests - tests_before,
                        matches=len(matches),
                        matcher=matcher_name,
                    )
                else:
                    matches, matcher_name, matcher = self._search_cluster(
                        rows, compiled, matcher_name, matcher, instrumentation,
                        budget, diagnostics,
                    )
                for match in matches:
                    match_count += 1
                    output_rows.append(_project(analyzed, rows, match))
                if budget is not None and budget.tripped is not None:
                    break
        if scan_span is not None:
            scan_span.annotate(
                clusters=clusters,
                clusters_searched=searched,
                rows_scanned=scanned,
                skips=instrumentation.skips,
                skip_distance=instrumentation.skip_distance,
            )
            if budget is not None and budget.tripped is not None:
                scan_span.annotate(tripped=budget.tripped)
        report = ExecutionReport(
            matcher=matcher_name,
            clusters=clusters,
            clusters_searched=searched,
            rows_scanned=scanned,
            predicate_tests=instrumentation.tests,
            matches=match_count,
            pattern=compiled,
            diagnostics=diagnostics,
        )
        return Result(columns, output_rows, diagnostics), report

    def stream(
        self,
        query: Union[str, ast.Query],
        source_factory: Callable[[int], Iterator[Tuple[int, Mapping[str, object]]]],
        *,
        store: Optional[CheckpointStore] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        resume: bool = False,
        overflow: str = "raise",
        instrumentation: Optional[Instrumentation] = None,
        diagnostics: Optional[Diagnostics] = None,
        stop: Optional[Callable[[], Optional[str]]] = None,
        trace: Optional[Trace] = None,
    ) -> "StreamingQuery":
        """Plan a query for crash-recoverable streaming execution.

        ``source_factory(start_offset)`` yields ``(offset, row)`` pairs
        (see :class:`~repro.recovery.RecoveringStreamRunner` for the
        contract; :func:`repro.engine.csv_io.iter_csv` satisfies it).
        Returns a :class:`StreamingQuery` whose ``rows`` iterator lazily
        drives the source and yields one projected output tuple per
        match, checkpointing to ``store`` as configured.

        Streaming has no degraded path: the bounded look-back buffer *is*
        OPS's no-backtracking guarantee, so an unplannable pattern raises
        :class:`PlanningError` regardless of the error policy.  CLUSTER
        BY is rejected — a stream is one unbounded sequence; partition
        upstream and run one streaming query per partition instead.
        """
        entry = self._analyze_and_compile(query)
        if entry.planning_error is not None:
            raise PlanningError(
                f"streaming execution requires an OPS plan: "
                f"{entry.planning_error}"
            ) from entry.planning_error
        analyzed, compiled = entry.analyzed, entry.compiled
        if analyzed.cluster_by:
            raise ExecutionError(
                "streaming execution does not support CLUSTER BY "
                f"{list(analyzed.cluster_by)}; partition the stream "
                "upstream and run one streaming query per partition"
            )
        diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        back, forward = _select_navigation(
            analyzed.select, last_var=analyzed.spec.names[-1]
        )
        if forward:
            diagnostics.warn(
                "SELECT navigates past the match end "
                f"({analyzed.spec.names[-1]}.NEXT); in streaming mode rows "
                "past the newest streamed tuple evaluate as NULL"
            )
        ordered_factory = _ordered_source(
            source_factory, analyzed.sequence_by
        )
        runner = RecoveringStreamRunner(
            compiled,
            ordered_factory,
            store=store,
            checkpoints=checkpoints,
            retry=retry,
            limits=self._limits if self._limits.bounded else None,
            overflow=overflow,
            extra_lookback=back,
            instrumentation=instrumentation,
            diagnostics=diagnostics,
            stop=stop,
            trace=trace,
        )
        columns = [
            item.output_name(position)
            for position, item in enumerate(analyzed.select, start=1)
        ]
        return StreamingQuery(
            columns=columns,
            runner=runner,
            keyed_rows=_stream_rows(runner, analyzed, resume),
        )

    # ------------------------------------------------------------------

    def _analyze_and_compile(
        self,
        query: Union[str, ast.Query],
        diagnostics: Optional[Diagnostics] = None,
    ) -> _CachedPlan:
        """Parse/analyze/compile a query, memoized in the LRU plan cache.

        Only string queries are cached (the text plus the domains
        fingerprint fully determine the plan for a given executor
        configuration); pre-built ``ast.Query`` objects bypass the cache
        because they are mutable and identity-keyed at best.  Compilation
        *failures* are cached too — the entry carries the original
        :class:`PlanningError` alongside a degraded placeholder plan, and
        the caller decides whether to raise or degrade.  Syntax and
        semantic errors always raise and are never cached.

        Keyed lookups feed two observers: the process-lifetime hit/miss
        counters on :attr:`metrics`, and (when ``diagnostics`` is given)
        the per-execution :meth:`Diagnostics.record_plan_cache` counts.
        Bypass paths record nothing anywhere.
        """
        key = None
        if isinstance(query, str) and self._plan_cache_size > 0:
            key = (query, self._domains.fingerprint())
            with self._plan_cache_lock:
                entry = self._plan_cache.get(key)
                if entry is not None:
                    self._plan_cache.move_to_end(key)
                    self._plan_cache_hit_counter.inc()
                    if diagnostics is not None:
                        diagnostics.record_plan_cache(hit=True)
                    return entry
                self._plan_cache_miss_counter.inc()
                if diagnostics is not None:
                    diagnostics.record_plan_cache(hit=False)
        parsed = parse_query(query) if isinstance(query, str) else query
        analyzed = analyze(parsed, self._domains)
        try:
            compiled = compile_pattern(analyzed.spec, codegen=self._codegen)
            entry = _CachedPlan(analyzed, compiled)
        except PlanningError as error:
            entry = _CachedPlan(
                analyzed,
                degraded_pattern(analyzed.spec, codegen=self._codegen),
                planning_error=error,
                degrade_reason=(
                    f"OPS compilation failed ({error}); executing with the "
                    f"{self._fallback!r} matcher on a degraded plan"
                ),
            )
        if key is not None:
            with self._plan_cache_lock:
                self._plan_cache[key] = entry
                if len(self._plan_cache) > self._plan_cache_size:
                    self._plan_cache.popitem(last=False)
        return entry

    def _plan(
        self, query: Union[str, ast.Query], diagnostics: Diagnostics
    ) -> tuple[AnalyzedQuery, CompiledPattern, str, Matcher]:
        """Produce the plan for one execution, degrading if allowed.

        Syntax and semantic errors always raise — there is nothing to
        degrade to without a valid query.  Planning (OPS compilation)
        errors degrade under a lenient policy: the pattern gets a
        placeholder plan and the restart-based fallback matcher, which
        produces identical matches without shift/next.  The downgrade
        diagnostic is re-recorded on every execution, including plan-cache
        hits — diagnostics belong to the execution, not the plan.
        """
        entry = self._analyze_and_compile(query, diagnostics)
        if entry.planning_error is not None:
            if not self._policy.lenient or self._fallback is None:
                raise entry.planning_error
            name = self._fallback
            diagnostics.record_downgrade(entry.degrade_reason)
            return entry.analyzed, entry.compiled, name, MATCHERS[name]()
        return entry.analyzed, entry.compiled, self._matcher_name, self._matcher

    def _search_cluster(
        self,
        rows: list[dict[str, object]],
        compiled: CompiledPattern,
        matcher_name: str,
        matcher: Matcher,
        instrumentation: Instrumentation,
        budget: Optional[Budget],
        diagnostics: Diagnostics,
        trace: Optional[Trace] = None,
    ) -> tuple[list[Match], str, Matcher]:
        """Run one cluster, downgrading the matcher on PlanningError.

        Returns the (possibly replaced) matcher so subsequent clusters
        skip the failing attempt instead of re-raising per cluster.
        """
        return search_rows(
            rows, compiled, matcher_name, matcher, instrumentation,
            budget, diagnostics, self._policy, self._fallback,
            evaluator=self._evaluator, trace=trace,
        )


@dataclass
class StreamingQuery:
    """A planned streaming execution: iterate ``rows`` to drive it.

    ``rows`` yields one projected SELECT tuple per match, in emission
    order.  ``keyed_rows`` is the same stream with each tuple preceded
    by its *sequence number* — the match's absolute end position in the
    stream, stable across checkpoint/resume cycles — which is how the
    serving layer delivers exactly-once to reconnecting subscribers
    (suppress everything at or below the subscriber's high-water mark).
    The two views share one underlying iterator: consume one of them.
    ``runner`` exposes the live matcher, the current source offset, and
    the shared diagnostics for monitoring mid-stream.
    """

    columns: list[str]
    runner: RecoveringStreamRunner
    keyed_rows: Iterator[tuple[int, tuple]]

    @property
    def rows(self) -> Iterator[tuple]:
        return (values for _, values in self.keyed_rows)

    @property
    def diagnostics(self) -> Diagnostics:
        return self.runner.diagnostics

    def __iter__(self) -> Iterator[tuple]:
        return self.rows


def _select_navigation(select, last_var: str) -> tuple[int, int]:
    """(max backward steps, max forward-past-end steps) in the SELECT.

    Backward navigation from *any* variable sizes the streaming matcher's
    ``extra_lookback`` so projection (``X.previous.attr`` chains) never
    reads a trimmed window position.  Forward navigation only escapes the
    match — and therefore the streamed-so-far prefix — when anchored on
    the final pattern variable, so only that case is reported.
    """
    back = 0
    forward = 0

    def visit(expr) -> None:
        nonlocal back, forward
        if isinstance(expr, ast.VarPath):
            position = 0
            for step in expr.navigation:
                position += -1 if step == "previous" else 1
                back = max(back, -position)
                if expr.var == last_var:
                    forward = max(forward, position)
        elif isinstance(expr, ast.BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.Neg):
            visit(expr.operand)

    for item in select:
        visit(item.expr)
    return back, forward


def _ordered_source(source_factory, sequence_by: tuple[str, ...]):
    """Wrap a source factory with a SEQUENCE BY monotonicity guard.

    Batch execution sorts each cluster by the SEQUENCE BY key; a stream
    cannot be sorted after the fact, and silently matching against a
    disordered stream would produce wrong results *and* make resume
    nondeterministic — so out-of-order (or incomparable) keys raise
    :class:`ExecutionError` naming the offset.
    """
    if not sequence_by:
        return source_factory

    def factory(start_offset: int):
        previous: Optional[tuple] = None
        for offset, row in source_factory(start_offset):
            try:
                key = tuple(row[attr] for attr in sequence_by)
            except KeyError as error:
                raise ExecutionError(
                    f"stream row at offset {offset} is missing "
                    f"SEQUENCE BY attribute {error.args[0]!r}"
                ) from None
            if previous is not None:
                try:
                    disordered = key < previous
                except TypeError as error:
                    raise ExecutionError(
                        f"stream row at offset {offset}: SEQUENCE BY key "
                        f"{key!r} is not comparable with {previous!r} "
                        f"({error})"
                    ) from None
                if disordered:
                    raise ExecutionError(
                        f"stream is not ordered by SEQUENCE BY "
                        f"{list(sequence_by)}: row at offset {offset} has "
                        f"key {key!r} after {previous!r}"
                    )
            previous = key
            yield offset, row

    return factory


def _stream_rows(
    runner: RecoveringStreamRunner, analyzed: AnalyzedQuery, resume: bool
) -> Iterator[tuple[int, tuple]]:
    """Project each emitted match against the matcher's live window.

    Yields ``(seq, values)`` where ``seq`` is the match's absolute end
    position in the stream — the same coordinate the recovery runner's
    exactly-once high-water mark uses, so it is stable across
    crash/resume and strictly increasing within one subscription.
    """
    warned_trimmed = False
    for _, match in runner.run(resume=resume):
        window = runner.matcher.window
        bindings = {
            name: (span.start, span.end)
            for name, span in match.bindings().items()
        }
        values = []
        for item in analyzed.select:
            try:
                values.append(
                    evaluate_expr(item.expr, window, bindings, analyzed.stars)
                )
            except RuntimeError:
                # The window position was trimmed — possible after an
                # overflow "restart" dropped rows a restored/pending
                # match still references.  NULL matches the batch
                # engine's off-end semantics.
                values.append(None)
                if not warned_trimmed:
                    warned_trimmed = True
                    runner.diagnostics.warn(
                        "SELECT read a trimmed window position (dropped "
                        "by a stream-buffer restart); emitting NULL"
                    )
        yield match.end, tuple(values)


def _cluster_label(key) -> str:
    """A short, stable label for one cluster's CLUSTER BY key."""
    if key == ():
        return "(all)"
    if isinstance(key, tuple) and len(key) == 1:
        return str(key[0])
    return str(key)


def _annotate_plan_span(
    plan_span, diagnostics: Diagnostics, matcher_name: str,
    compiled: CompiledPattern,
) -> None:
    """Fold the planning outcome into the plan span's attributes."""
    if diagnostics.plan_cache_hits:
        cache = "hit"
    elif diagnostics.plan_cache_misses:
        cache = "miss"
    else:
        cache = "bypass"
    plan_span.annotate(
        cache=cache,
        matcher=matcher_name,
        degraded=diagnostics.degraded,
    )
    fused = sum(
        1
        for evaluator in compiled.evaluators
        if evaluator is not None and getattr(evaluator, "band_fused", False)
    )
    if fused:
        plan_span.annotate(band_fused_elements=fused)


def _resolve_matcher(matcher: Union[str, Matcher]) -> tuple[str, Matcher]:
    if isinstance(matcher, str):
        try:
            return matcher, MATCHERS[matcher]()
        except KeyError:
            raise ExecutionError(
                f"unknown matcher {matcher!r} (choose from {sorted(MATCHERS)})"
            ) from None
    # Instance-passed matchers normalize to their registry key so reports
    # and downgrade diagnostics name the same matcher an equivalent
    # string argument would ("ops", not "OpsStarMatcher").  Exact type
    # match only: a subclass is a different matcher and keeps its own name.
    for name, cls in MATCHERS.items():
        if type(matcher) is cls:
            return name, matcher
    return type(matcher).__name__, matcher


def search_rows(
    rows: list[dict[str, object]],
    compiled: CompiledPattern,
    matcher_name: str,
    matcher: Matcher,
    instrumentation: Instrumentation,
    budget: Optional[Budget],
    diagnostics: Diagnostics,
    policy: ErrorPolicy,
    fallback: Optional[str],
    *,
    evaluator: str = "row",
    trace: Optional[Trace] = None,
) -> tuple[list[Match], str, Matcher]:
    """Search one cluster's rows, degrading the matcher on PlanningError.

    The single source of truth for per-cluster matching: the serial
    executor loop and every parallel worker
    (:mod:`repro.engine.parallel`) call this, so the two paths cannot
    drift apart.  Returns the (possibly replaced by ``fallback``)
    matcher so callers carry the downgrade forward across clusters.

    ``evaluator`` selects the predicate path per :data:`EVALUATOR_MODES`;
    anything but ``"row"`` may materialize columnar truth arrays for
    this cluster and hand them to a kernel-aware matcher.  The default
    is ``"row"`` so existing callers keep the seed behaviour.
    """
    kernels = _cluster_kernels(rows, compiled, matcher, evaluator, trace)
    aggregate = PatternSearchAggregate(
        compiled, matcher, instrumentation, budget, kernels=kernels
    )
    try:
        return apply_aggregate(aggregate, rows), matcher_name, matcher
    except PlanningError as error:
        if not policy.lenient or fallback is None:
            raise
        replacement = MATCHERS[fallback]()
        diagnostics.record_downgrade(
            f"matcher {matcher_name!r} cannot execute this pattern "
            f"({error}); falling back to {fallback!r}"
        )
        if kernels is None:
            kernels = _cluster_kernels(
                rows, compiled, replacement, evaluator, trace
            )
        aggregate = PatternSearchAggregate(
            compiled, replacement, instrumentation, budget, kernels=kernels
        )
        return apply_aggregate(aggregate, rows), fallback, replacement


def _cluster_kernels(
    rows: list[dict[str, object]],
    compiled: CompiledPattern,
    matcher: Matcher,
    evaluator: str,
    trace: Optional[Trace],
):
    """Materialize columnar truth arrays for one cluster, or None.

    Engagement policy (see :data:`EVALUATOR_MODES`): never for
    ``"row"``; for ``"auto"`` only when the NumPy batch backend is
    active; ``"columnar"`` always attempts.  The matcher must opt in via
    ``supports_kernels`` and the plan must have compiled closures —
    ``use_codegen=False`` is the interpreted differential oracle and
    stays kernel-free end to end.
    """
    if evaluator == "row" or not rows:
        return None
    if not compiled.use_codegen:
        return None
    if not getattr(matcher, "supports_kernels", False):
        return None
    from repro.engine.columnar import materialize_kernels, vector_backend_active

    if evaluator == "auto" and not vector_backend_active():
        return None
    if trace is None:
        return materialize_kernels(compiled, rows)
    with trace.span("kernels") as span:
        kernels = materialize_kernels(compiled, rows)
        if kernels is None:
            span.annotate(lowered=0, rows=len(rows))
        else:
            span.annotate(
                lowered=kernels.lowered,
                elements=compiled.m,
                backend=kernels.backend,
                rows=len(rows),
            )
    return kernels


def _cluster_passes(analyzed: AnalyzedQuery, rows: list[dict[str, object]]) -> bool:
    """Evaluate the hoisted cluster-invariant conditions on this cluster.

    The conditions only reference CLUSTER BY attributes, which are
    constant within the cluster, so binding every pattern variable to the
    first row is exact.
    """
    if not analyzed.cluster_filter:
        return True
    if not rows:
        return False
    bindings = {name: (0, 0) for name in analyzed.spec.names}
    return all(
        evaluate_condition(condition, rows, bindings, analyzed.stars)
        for condition in analyzed.cluster_filter
    )


def _project(
    analyzed: AnalyzedQuery, rows: list[dict[str, object]], match: Match
) -> tuple:
    bindings = {name: (span.start, span.end) for name, span in match.bindings().items()}
    return tuple(
        evaluate_expr(item.expr, rows, bindings, analyzed.stars)
        for item in analyzed.select
    )


def execute(
    query: Union[str, ast.Query],
    catalog: Catalog,
    domains: Optional[AttributeDomains] = None,
    matcher: Union[str, Matcher] = "ops",
    instrumentation: Optional[Instrumentation] = None,
    policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
    limits: Optional[ResourceLimits] = None,
    fallback: Optional[str] = "naive",
    codegen: bool = True,
    workers: int = 1,
    parallel_mode: str = "auto",
    evaluator: str = "auto",
) -> Result:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(
        catalog,
        domains=domains,
        matcher=matcher,
        policy=policy,
        limits=limits,
        fallback=fallback,
        codegen=codegen,
        workers=workers,
        parallel_mode=parallel_mode,
        evaluator=evaluator,
    ).execute(query, instrumentation)
