"""The SQL-TS query executor.

Ties the whole stack together: parse → analyze → compile the pattern with
OPS → for every cluster, apply the hoisted cluster filter and run the
configured matcher via the UDA substrate → evaluate the SELECT items on
each match.

The matcher is pluggable (``"ops"`` — the default, star-capable OPS
runtime — or ``"naive"``), and an :class:`~repro.match.base.Instrumentation`
can be threaded through to count predicate evaluations, which is how the
benchmark harness reproduces the paper's speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.engine.aggregates import PatternSearchAggregate, apply_aggregate
from repro.engine.catalog import Catalog
from repro.engine.cluster import clusters_of
from repro.engine.result import Result
from repro.errors import ExecutionError
from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation, Match, Matcher
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import CompiledPattern, compile_pattern
from repro.pattern.predicates import AttributeDomains
from repro.sqlts import ast
from repro.sqlts.expressions import evaluate_condition, evaluate_expr
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import AnalyzedQuery, analyze

MATCHERS: dict[str, type] = {
    "ops": OpsStarMatcher,
    "naive": NaiveMatcher,
    "backtracking": BacktrackingMatcher,
}


@dataclass
class ExecutionReport:
    """Execution statistics alongside the compiled plan."""

    matcher: str
    clusters: int
    clusters_searched: int
    rows_scanned: int
    predicate_tests: int
    matches: int
    pattern: CompiledPattern


class Executor:
    """Executes SQL-TS queries against a catalog of tables."""

    def __init__(
        self,
        catalog: Catalog,
        domains: Optional[AttributeDomains] = None,
        matcher: Union[str, Matcher] = "ops",
    ):
        self._catalog = catalog
        self._domains = domains if domains is not None else AttributeDomains.none()
        self._matcher_name, self._matcher = _resolve_matcher(matcher)

    def prepare(self, query: Union[str, ast.Query]) -> tuple[AnalyzedQuery, CompiledPattern]:
        """Parse, analyze, and OPS-compile a query without running it."""
        parsed = parse_query(query) if isinstance(query, str) else query
        analyzed = analyze(parsed, self._domains)
        return analyzed, compile_pattern(analyzed.spec)

    def execute(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
    ) -> Result:
        result, _ = self.execute_with_report(query, instrumentation)
        return result

    def execute_with_report(
        self,
        query: Union[str, ast.Query],
        instrumentation: Optional[Instrumentation] = None,
    ) -> tuple[Result, ExecutionReport]:
        analyzed, compiled = self.prepare(query)
        instrumentation = instrumentation or Instrumentation()
        table = self._catalog.table(analyzed.table)
        columns = [
            item.output_name(position)
            for position, item in enumerate(analyzed.select, start=1)
        ]
        output_rows: list[tuple] = []
        clusters = 0
        searched = 0
        scanned = 0
        match_count = 0
        for _, rows in clusters_of(table, analyzed.cluster_by, analyzed.sequence_by):
            clusters += 1
            if not _cluster_passes(analyzed, rows):
                continue
            searched += 1
            scanned += len(rows)
            aggregate = PatternSearchAggregate(compiled, self._matcher, instrumentation)
            matches = apply_aggregate(aggregate, rows)
            for match in matches:
                match_count += 1
                output_rows.append(_project(analyzed, rows, match))
        report = ExecutionReport(
            matcher=self._matcher_name,
            clusters=clusters,
            clusters_searched=searched,
            rows_scanned=scanned,
            predicate_tests=instrumentation.tests,
            matches=match_count,
            pattern=compiled,
        )
        return Result(columns, output_rows), report


def _resolve_matcher(matcher: Union[str, Matcher]) -> tuple[str, Matcher]:
    if isinstance(matcher, str):
        try:
            return matcher, MATCHERS[matcher]()
        except KeyError:
            raise ExecutionError(
                f"unknown matcher {matcher!r} (choose from {sorted(MATCHERS)})"
            ) from None
    return type(matcher).__name__, matcher


def _cluster_passes(analyzed: AnalyzedQuery, rows: list[dict[str, object]]) -> bool:
    """Evaluate the hoisted cluster-invariant conditions on this cluster.

    The conditions only reference CLUSTER BY attributes, which are
    constant within the cluster, so binding every pattern variable to the
    first row is exact.
    """
    if not analyzed.cluster_filter:
        return True
    if not rows:
        return False
    bindings = {name: (0, 0) for name in analyzed.spec.names}
    return all(
        evaluate_condition(condition, rows, bindings, analyzed.stars)
        for condition in analyzed.cluster_filter
    )


def _project(
    analyzed: AnalyzedQuery, rows: list[dict[str, object]], match: Match
) -> tuple:
    bindings = {name: (span.start, span.end) for name, span in match.bindings().items()}
    return tuple(
        evaluate_expr(item.expr, rows, bindings, analyzed.stars)
        for item in analyzed.select
    )


def execute(
    query: Union[str, ast.Query],
    catalog: Catalog,
    domains: Optional[AttributeDomains] = None,
    matcher: Union[str, Matcher] = "ops",
    instrumentation: Optional[Instrumentation] = None,
) -> Result:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(catalog, domains=domains, matcher=matcher).execute(
        query, instrumentation
    )
