"""Columnar storage and vectorized predicate kernels.

Two cooperating halves, both behind the existing engine API:

**Kernel materialization** (stage 2 of the lowering started in
:mod:`repro.pattern.kernels`): bind a pattern's symbolic kernel programs
to one cluster's rows and produce per-element **truth arrays** — one
byte per input position, 1 where the element predicate holds.  Matchers
substitute ``truth[i]`` for the compiled closure call and, when neither
instrumentation nor a budget is attached, replace star-run walks with
C-speed ``bytes.find`` scans.  Because the truth value at every
position equals what the row evaluator would have returned there, the
matchers' control flow — and therefore matches, test counts, skip
accounting, and budget spend — is unchanged by construction; the
differential suite (``tests/engine/test_columnar_equivalence.py``)
holds both paths byte-identical.

Two interchangeable backends build the truth bytes:

- ``python`` (always available): evaluates the *identical* expression
  the row closure evaluates (``op(a * value + b, c)``) on the identical
  cell objects, so parity is automatic for every value type;
- ``numpy`` (optional, auto-detected, ``REPRO_COLUMNAR_NUMPY=0``
  disables): whole-column float64 arithmetic, used only for columns
  whose every cell is a ``float`` — Python floats are IEEE doubles, so
  the results are bit-identical to the scalar computation.

Materialization is conservative: any exception while building one
element's truth (a non-numeric cell, an overflow, a pathological
``__mul__``) silently drops that element back to the row evaluator, so
errors surface — or don't — exactly where the row path surfaces them.

**Out-of-core columnar files**: a single-file binary format (magic,
JSON header, CRC32-checksummed little-endian column blobs) written
atomically and loaded through ``mmap``, so a table larger than memory
is paged in by the OS instead of materialized as row dicts.
:class:`ColumnarTable` exposes the mapped data through the same
``name`` / ``schema`` / iteration surface as
:class:`~repro.engine.table.Table`; each row is a lazy
:class:`RowView` mapping.  Loading validates magic, version, blob
extents, and checksums — a torn write or partial file raises
:class:`~repro.errors.ColumnarFormatError` and
:func:`load_table` falls back to CSV ingest with a diagnostic, which is
what the failpoint-driven crash-consistency suite pins
(``tests/engine/test_columnar_file.py``).

See ``docs/performance.md`` ("Columnar execution") for flags and the
kernel spans emitted through :mod:`repro.obs`.
"""

from __future__ import annotations

import datetime as _dt
import json
import mmap
import os
import struct
import zlib
from collections.abc import Mapping as _MappingABC
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro import failpoints
from repro.constraints.atoms import Op
from repro.engine.table import Schema
from repro.errors import ColumnarFormatError
from repro.pattern.kernels import (
    CompareConst,
    ComparePair,
    Disjunction,
    ElementKernel,
    Ground,
    StringEquality,
)

import operator

_OP_FUNCS = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}

#: Marks a (row, column) cell whose row has no such key.  The row
#: evaluators turn a missing column into False (KeyError caught); the
#: kernels do the same by leaving the truth byte 0.
_MISSING = object()


# ----------------------------------------------------------------------
# Vector backend selection
# ----------------------------------------------------------------------

_NUMPY_IMPORT: object = _MISSING  # _MISSING = not yet attempted


def numpy_backend():
    """The numpy module, or None when unavailable or disabled.

    ``REPRO_COLUMNAR_NUMPY=0`` disables the vector backend (the
    pure-Python kernels remain); any other value — or the variable being
    unset — auto-detects.  The env var is consulted on every call so
    tests can flip it; the import attempt itself is cached.
    """
    if os.environ.get("REPRO_COLUMNAR_NUMPY", "").strip() == "0":
        return None
    global _NUMPY_IMPORT
    if _NUMPY_IMPORT is _MISSING:
        try:
            import numpy
        except ImportError:
            numpy = None
        _NUMPY_IMPORT = numpy
    return _NUMPY_IMPORT


def vector_backend_active() -> bool:
    """True when the numpy kernels are importable and not disabled."""
    return numpy_backend() is not None


# ----------------------------------------------------------------------
# Column store (per-cluster, transient)
# ----------------------------------------------------------------------


class _Column:
    """One column's cells for a cluster, plus vectorization eligibility."""

    __slots__ = ("values", "has_missing", "floats_only", "_f8")

    def __init__(self, rows: Sequence, name: str):
        values = []
        has_missing = False
        floats_only = True
        for row in rows:
            try:
                value = row[name]
            except KeyError:
                value = _MISSING
                has_missing = True
                floats_only = False
            else:
                if type(value) is not float:
                    floats_only = False
            values.append(value)
        self.values = values
        self.has_missing = has_missing
        self.floats_only = floats_only
        self._f8 = _MISSING

    def f8(self, np):
        """float64 ndarray of this column, or None when not exact.

        Only all-``float`` columns vectorize: a Python float *is* an
        IEEE double, so float64 arithmetic reproduces the scalar
        computation bit-for-bit.  Ints (arbitrary precision), dates,
        strings, and missing cells stay on the Python kernels.
        """
        if self._f8 is _MISSING:
            if np is None or not self.floats_only:
                self._f8 = None
            else:
                self._f8 = np.asarray(self.values, dtype=np.float64)
        return self._f8


class ColumnStore:
    """Lazily-built columns over one cluster's rows."""

    __slots__ = ("rows", "n", "_columns")

    def __init__(self, rows: Sequence):
        self.rows = rows
        self.n = len(rows)
        self._columns: dict[str, _Column] = {}

    def column(self, name: str) -> _Column:
        column = self._columns.get(name)
        if column is None:
            column = _Column(self.rows, name)
            self._columns[name] = column
        return column


# ----------------------------------------------------------------------
# Truth materialization (stage 2)
# ----------------------------------------------------------------------


class ClusterKernels:
    """Per-element truth arrays for one cluster.

    ``truth[j - 1]`` is a ``bytes`` of length ``n`` (1 where element j's
    predicate holds at that position) or None where the element fell
    back to the row evaluator.  Identical element kernels share one
    truth object (Example 10's repeated shapes deduplicate).
    """

    __slots__ = ("truth", "n", "backend", "lowered", "_starts")

    def __init__(self, truth: tuple, n: int, backend: str):
        self.truth = truth
        self.n = n
        self.backend = backend
        self.lowered = sum(1 for t in truth if t is not None)
        self._starts: dict = {}

    def start_candidates(self, stars: tuple) -> Optional[bytes]:
        """Candidate *attempt-start* bitset for a pattern shaped ``stars``.

        Position ``i`` is 1 only if every element of the pattern's
        leading prefix — the run of non-star elements plus the first
        element after it (star or not: both must hold at least once) —
        holds at its fixed offset from ``i``.  A zero byte proves an
        attempt at ``i`` fails inside that prefix, so uninstrumented
        scans may skip it outright; a one byte promises nothing beyond
        the prefix.  Returns None when the first element didn't lower.

        The conjunction runs at C speed on shifted byte strings: truth
        bytes are 0x00/0x01, so a big-int AND of the shifted slices is
        exactly the positionwise AND.
        """
        cached = self._starts.get(stars)
        if cached is not None:
            return cached
        prefix: list[tuple[int, bytes]] = []
        offset = 0
        for truth, star in zip(self.truth, stars):
            if truth is None:
                break
            prefix.append((offset, truth))
            if star:
                break
            offset += 1
        if not prefix:
            return None
        n = self.n
        max_offset = prefix[-1][0]
        length = n - max_offset
        if length <= 0:
            result = b"\x00" * n
        else:
            acc = int.from_bytes(prefix[0][1][:length], "big")
            for offset, truth in prefix[1:]:
                acc &= int.from_bytes(truth[offset : offset + length], "big")
            result = acc.to_bytes(length, "big") + b"\x00" * max_offset
        self._starts[stars] = result
        return result

    def candidates(self, j: int) -> Optional[int]:
        """How many positions satisfy element ``j`` (1-based), if lowered."""
        t = self.truth[j - 1]
        return None if t is None else t.count(1)

    def indices(self, j: int) -> Optional[list[int]]:
        """Sorted candidate positions for element ``j`` (1-based)."""
        t = self.truth[j - 1]
        if t is None:
            return None
        out = []
        pos = t.find(1)
        while pos != -1:
            out.append(pos)
            pos = t.find(1, pos + 1)
        return out


def materialize_kernels(
    compiled, rows: Sequence, backend: str = "auto"
) -> Optional[ClusterKernels]:
    """Build truth arrays for ``rows`` from a compiled pattern's plan.

    Returns None when nothing lowered (interpreted oracle plans, fully
    residual patterns, or every element failing materialization) — the
    caller then runs the plain row path.  ``backend`` is ``"auto"``
    (numpy when available), ``"numpy"`` (numpy where eligible, Python
    otherwise), or ``"python"`` (scalar kernels only — the backend the
    differential suite forces to cover both).
    """
    plan = compiled.kernel_plan
    if plan.lowered == 0:
        return None
    np = numpy_backend() if backend in ("auto", "numpy") else None
    store = ColumnStore(rows)
    n = store.n
    memo: dict[ElementKernel, Optional[bytes]] = {}
    truth: list[Optional[bytes]] = []
    used_numpy = False
    for kernel in plan.elements:
        if kernel is None:
            truth.append(None)
            continue
        if kernel in memo:
            truth.append(memo[kernel])
            continue
        try:
            built, vectorized = _element_truth(kernel, store, n, np)
        except Exception:
            # Anything the batch evaluation trips over (non-numeric
            # cells, overflow, exotic operators) is left to the row
            # evaluator, which raises — or short-circuits past it —
            # exactly as the row path always did.
            built, vectorized = None, False
        used_numpy = used_numpy or vectorized
        memo[kernel] = built
        truth.append(built)
    if all(t is None for t in truth):
        return None
    return ClusterKernels(
        tuple(truth), n=n, backend="numpy" if used_numpy else "python"
    )


def first_element_candidates(compiled, rows: Sequence) -> Optional[int]:
    """Candidate count of the first lowerable element, for work weighting.

    The parallel splitter (:func:`repro.engine.parallel.split_partitions`)
    can weight partitions by how many positions survive the first
    element's kernel instead of by raw row count.  Returns None when no
    element lowers or materialization declines.
    """
    plan = compiled.kernel_plan
    for kernel in plan.elements:
        if kernel is None:
            continue
        store = ColumnStore(rows)
        try:
            built, _ = _element_truth(kernel, store, store.n, numpy_backend())
        except Exception:
            return None
        return None if built is None else built.count(1)
    return None


def _element_truth(
    kernel: ElementKernel, store: ColumnStore, n: int, np
) -> tuple[bytes, bool]:
    """AND the kernel's step truths; returns (truth, used_numpy)."""
    if not kernel.steps:
        return b"\x01" * n, False
    truths = []
    used_numpy = False
    for step in kernel.steps:
        truth, vectorized = _step_truth(step, store, n, np)
        used_numpy = used_numpy or vectorized
        truths.append(truth)
    return _and_all(truths, n), used_numpy


def _and_all(truths: list[bytes], n: int) -> bytes:
    if len(truths) == 1:
        return truths[0]
    acc = int.from_bytes(truths[0], "big")
    for truth in truths[1:]:
        acc &= int.from_bytes(truth, "big")
    return acc.to_bytes(n, "big")


def _or_all(truths: list[bytes], n: int) -> bytes:
    if len(truths) == 1:
        return truths[0]
    acc = int.from_bytes(truths[0], "big")
    for truth in truths[1:]:
        acc |= int.from_bytes(truth, "big")
    return acc.to_bytes(n, "big")


def _step_truth(step, store: ColumnStore, n: int, np) -> tuple[bytes, bool]:
    if isinstance(step, CompareConst):
        return _compare_const_truth(step, store, n, np)
    if isinstance(step, ComparePair):
        return _compare_pair_truth(step, store, n, np)
    if isinstance(step, StringEquality):
        return _string_equality_truth(step, store, n), False
    if isinstance(step, Ground):
        return (b"\x01" * n if step.result else bytes(n)), False
    if isinstance(step, Disjunction):
        branch_truths = []
        used_numpy = False
        for branch in step.branches:
            leaf_truths = []
            for leaf in branch:
                truth, vectorized = _step_truth(leaf, store, n, np)
                used_numpy = used_numpy or vectorized
                leaf_truths.append(truth)
            branch_truths.append(_and_all(leaf_truths, n))
        return _or_all(branch_truths, n), used_numpy
    raise TypeError(f"unknown kernel step {type(step).__name__}")


def _valid_range(n: int, *offsets: int) -> tuple[int, int]:
    """Positions i where every ``i + off`` lands inside [0, n)."""
    lo = 0
    hi = n
    for off in offsets:
        lo = max(lo, -off)
        hi = min(hi, n - off)
    return lo, max(lo, hi)


def _np_exact(value) -> bool:
    """True when float64 arithmetic with ``value`` matches Python's."""
    if type(value) is float:
        return True
    if isinstance(value, int) and not isinstance(value, bool):
        try:
            return float(value) == value
        except OverflowError:
            return False
    return False


def _compare_const_truth(
    step: CompareConst, store: ColumnStore, n: int, np
) -> tuple[bytes, bool]:
    column = store.column(step.name)
    lo, hi = _valid_range(n, step.off)
    holds = _OP_FUNCS[step.op]
    a, b, c = step.a, step.b, step.const
    if (
        np is not None
        and _np_exact(a)
        and _np_exact(b)
        and _np_exact(c)
    ):
        arr = column.f8(np)
        if arr is not None:
            out = np.zeros(n, dtype=np.uint8)
            if hi > lo:
                seg = arr[lo + step.off : hi + step.off]
                with np.errstate(all="ignore"):
                    term = a * seg + b
                    result = holds(c, term) if step.const_on_left else holds(term, c)
                out[lo:hi] = result
            return out.tobytes(), True
    out = bytearray(n)
    values = column.values
    off = step.off
    if step.const_on_left:
        for i in range(lo, hi):
            value = values[i + off]
            if value is not _MISSING and holds(c, a * value + b):
                out[i] = 1
    else:
        for i in range(lo, hi):
            value = values[i + off]
            if value is not _MISSING and holds(a * value + b, c):
                out[i] = 1
    return bytes(out), False


def _compare_pair_truth(
    step: ComparePair, store: ColumnStore, n: int, np
) -> tuple[bytes, bool]:
    left = store.column(step.left_name)
    right = store.column(step.right_name)
    lo, hi = _valid_range(n, step.left_off, step.right_off)
    holds = _OP_FUNCS[step.op]
    la, lb = step.left_a, step.left_b
    ra, rb = step.right_a, step.right_b
    if (
        np is not None
        and _np_exact(la)
        and _np_exact(lb)
        and _np_exact(ra)
        and _np_exact(rb)
    ):
        left_arr = left.f8(np)
        right_arr = right.f8(np)
        if left_arr is not None and right_arr is not None:
            out = np.zeros(n, dtype=np.uint8)
            if hi > lo:
                lhs = left_arr[lo + step.left_off : hi + step.left_off]
                rhs = right_arr[lo + step.right_off : hi + step.right_off]
                with np.errstate(all="ignore"):
                    out[lo:hi] = holds(la * lhs + lb, ra * rhs + rb)
            return out.tobytes(), True
    out = bytearray(n)
    left_values = left.values
    right_values = right.values
    left_off, right_off = step.left_off, step.right_off
    for i in range(lo, hi):
        left_value = left_values[i + left_off]
        if left_value is _MISSING:
            continue
        # Complete the left term before reading the right cell, exactly
        # like the row closure, so a non-numeric left value raises here
        # (and drops the element to the row path) regardless of the
        # right side.
        lhs = la * left_value + lb
        right_value = right_values[i + right_off]
        if right_value is _MISSING:
            continue
        if holds(lhs, ra * right_value + rb):
            out[i] = 1
    return bytes(out), False


def _string_equality_truth(
    step: StringEquality, store: ColumnStore, n: int
) -> bytes:
    column = store.column(step.name)
    lo, hi = _valid_range(n, step.off)
    out = bytearray(n)
    values = column.values
    off = step.off
    expected = step.value
    equals = step.equals
    for i in range(lo, hi):
        value = values[i + off]
        if value is _MISSING:
            continue
        if (value == expected) if equals else (value != expected):
            out[i] = 1
    return bytes(out)


# ----------------------------------------------------------------------
# Out-of-core columnar files
# ----------------------------------------------------------------------

#: File magic: 8 bytes, versioned via the header's ``version`` field.
MAGIC = b"RPROCOL1"

#: Current format version.
FORMAT_VERSION = 1

#: Epoch for date columns: proleptic-Gregorian ordinals (date.toordinal).
_DATE_KIND = "date"

_KIND_BY_TYPE = {"float": "f8", "int": "i8", "date": _DATE_KIND, "str": "str"}

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def write_columnar(table, path: Union[str, Path]) -> None:
    """Serialize a table to the columnar format, atomically.

    ``table`` is anything with ``name``, ``schema``, and row iteration —
    :class:`~repro.engine.table.Table` or :class:`ColumnarTable`.  The
    payload is assembled fully, passed through the ``columnar.write``
    failpoint (torn-write injection), written to ``<path>.tmp``, fsynced
    (``columnar.fsync``), and renamed into place (``columnar.rename``) —
    a crash at any point leaves either the old file or no file, never a
    half-written one the loader would trust.
    """
    path = str(path)
    payload = _serialize(table)
    payload = failpoints.mangle("columnar.write", payload)
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if not failpoints.maybe_fail("columnar.fsync"):
                os.fsync(handle.fileno())
        failpoints.maybe_fail("columnar.rename")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _serialize(table) -> bytes:
    schema: Schema = table.schema
    names = schema.names
    columns_values: dict[str, list] = {name: [] for name in names}
    rows = 0
    for row in table:
        rows += 1
        for name in names:
            columns_values[name].append(row[name])
    blobs: list[bytes] = []
    column_entries: list[dict] = []
    offset = 0

    def add_blob(blob: bytes) -> dict:
        nonlocal offset
        entry = {"offset": offset, "nbytes": len(blob), "crc32": zlib.crc32(blob)}
        blobs.append(blob)
        offset += len(blob)
        pad = (-len(blob)) % 8
        if pad:
            blobs.append(b"\x00" * pad)
            offset += pad
        return entry

    for column in schema.columns:
        values = columns_values[column.name]
        kind = _KIND_BY_TYPE[column.type]
        entry: dict = {"name": column.name, "type": column.type, "kind": kind}
        if kind == "f8":
            blob = struct.pack(f"<{rows}d", *(float(v) for v in values))
            entry.update(add_blob(blob))
        elif kind == "i8":
            for value in values:
                if not (_INT64_MIN <= value <= _INT64_MAX):
                    raise ColumnarFormatError(
                        f"column {column.name!r}: int value {value} does not "
                        "fit in 64 bits"
                    )
            blob = struct.pack(f"<{rows}q", *values)
            entry.update(add_blob(blob))
        elif kind == _DATE_KIND:
            blob = struct.pack(f"<{rows}q", *(v.toordinal() for v in values))
            entry.update(add_blob(blob))
        else:  # str: int64 offsets (rows + 1) + utf-8 blob
            encoded = [v.encode("utf-8") for v in values]
            offsets = [0]
            for chunk in encoded:
                offsets.append(offsets[-1] + len(chunk))
            entry["aux"] = add_blob(struct.pack(f"<{rows + 1}q", *offsets))
            entry.update(add_blob(b"".join(encoded)))
        column_entries.append(entry)

    header = json.dumps(
        {
            "version": FORMAT_VERSION,
            "name": table.name,
            "rows": rows,
            "columns": column_entries,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    prefix = MAGIC + struct.pack("<I", len(header)) + header
    pad = (-len(prefix)) % 8
    return prefix + b"\x00" * pad + b"".join(blobs)


class _StoredColumn:
    """One mmap-backed column: typed view plus a value decoder."""

    __slots__ = ("kind", "data", "aux")

    def __init__(self, kind: str, data, aux=None):
        self.kind = kind
        self.data = data
        self.aux = aux

    def value(self, index: int):
        if self.kind == "f8" or self.kind == "i8":
            return self.data[index]
        if self.kind == _DATE_KIND:
            return _dt.date.fromordinal(self.data[index])
        start, end = self.aux[index], self.aux[index + 1]
        return bytes(self.data[start:end]).decode("utf-8")


class RowView(_MappingABC):
    """A lazy row over a :class:`ColumnarTable` position.

    Behaves like the plain dict rows of :class:`~repro.engine.table.Table`
    — ``row[name]`` decodes the cell on access (dates come back as
    ``datetime.date``, strings as ``str``), missing names raise
    ``KeyError``, and equality/iteration follow the Mapping protocol —
    so matchers, projection, and the kernels treat both storage layouts
    identically.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "ColumnarTable", index: int):
        self._table = table
        self._index = index

    def __getitem__(self, name: str):
        column = self._table._columns.get(name)
        if column is None:
            raise KeyError(name)
        return column.value(self._index)

    def __iter__(self) -> Iterator[str]:
        return iter(self._table.schema.names)

    def __len__(self) -> int:
        return len(self._table.schema.names)

    def __repr__(self) -> str:
        return f"RowView({dict(self)!r})"


class ColumnarTable:
    """A table read from a columnar file via ``mmap``.

    Duck-compatible with :class:`~repro.engine.table.Table` everywhere
    the engine reads one: ``name``, ``schema``, ``__iter__`` /
    ``__len__`` over row mappings, and a ``rows`` list.  Column data
    stays in the mapping until a cell is touched.
    """

    __slots__ = ("name", "schema", "_columns", "_length", "_mmap", "_file", "_rows")

    def __init__(self, name, schema, columns, length, mapped, handle):
        self.name = name
        self.schema = schema
        self._columns = columns
        self._length = length
        self._mmap = mapped
        self._file = handle
        self._rows: Optional[list[RowView]] = None

    @property
    def rows(self) -> list[RowView]:
        if self._rows is None:
            self._rows = [RowView(self, i) for i in range(self._length)]
        return self._rows

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[RowView]:
        return iter(self.rows)

    def close(self) -> None:
        """Release the mapping (reads after close raise)."""
        self._rows = None
        self._columns = {}
        self._mmap.close()
        self._file.close()


def load_columnar(path: Union[str, Path], name: Optional[str] = None) -> ColumnarTable:
    """mmap a columnar file, validating structure and checksums.

    Every rejection — bad magic, unsupported version, truncated blobs,
    checksum mismatches, malformed headers — raises
    :class:`~repro.errors.ColumnarFormatError` naming the file and the
    failed check, so callers can distinguish "corrupt cache" (fall back
    to CSV) from I/O errors.  ``name``, when given, overrides the table
    name stored in the header.
    """
    path = str(path)
    handle = open(path, "rb")
    try:
        size = os.fstat(handle.fileno()).st_size
        if size < len(MAGIC) + 4:
            raise ColumnarFormatError(f"{path}: truncated (only {size} bytes)")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            return _load_mapped(path, handle, mapped, size, name)
        except BaseException:
            mapped.close()
            raise
    except BaseException:
        handle.close()
        raise


def _load_mapped(path, handle, mapped, size, name) -> ColumnarTable:
    # Every memoryview over the mapping is tracked so the rejection path
    # can release them before the caller closes the mmap — the raised
    # exception's traceback keeps these frames (and their locals) alive,
    # and an un-released view makes mmap.close() raise BufferError.
    views: list[memoryview] = []

    def track(v: memoryview) -> memoryview:
        views.append(v)
        return v

    try:
        return _parse_mapped(path, handle, mapped, size, name, track)
    except BaseException:
        for v in views:
            v.release()
        raise


def _parse_mapped(path, handle, mapped, size, name, track) -> ColumnarTable:
    view = track(memoryview(mapped))
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise ColumnarFormatError(f"{path}: bad magic (not a columnar file)")
    (header_len,) = struct.unpack_from("<I", view, len(MAGIC))
    header_end = len(MAGIC) + 4 + header_len
    if header_end > size:
        raise ColumnarFormatError(
            f"{path}: truncated header (declares {header_len} bytes)"
        )
    try:
        header = json.loads(bytes(view[len(MAGIC) + 4 : header_end]))
    except ValueError as error:
        raise ColumnarFormatError(f"{path}: malformed header ({error})") from None
    if header.get("version") != FORMAT_VERSION:
        raise ColumnarFormatError(
            f"{path}: unsupported format version {header.get('version')!r}"
        )
    rows = header.get("rows")
    if not isinstance(rows, int) or rows < 0:
        raise ColumnarFormatError(f"{path}: invalid row count {rows!r}")
    data_start = header_end + ((-header_end) % 8)

    def checked_blob(entry: dict, what: str) -> memoryview:
        try:
            offset, nbytes, crc = entry["offset"], entry["nbytes"], entry["crc32"]
        except (KeyError, TypeError):
            raise ColumnarFormatError(f"{path}: {what}: malformed blob entry") from None
        start = data_start + offset
        end = start + nbytes
        if offset < 0 or nbytes < 0 or end > size:
            raise ColumnarFormatError(
                f"{path}: {what}: blob extends past end of file "
                f"(offset {offset}, {nbytes} bytes, file is {size})"
            )
        blob = track(view[start:end])
        if zlib.crc32(blob) != crc:
            raise ColumnarFormatError(f"{path}: {what}: checksum mismatch")
        return blob

    columns: dict[str, _StoredColumn] = {}
    schema_columns: list[tuple[str, str]] = []
    for entry in header.get("columns", []):
        column_name = entry.get("name")
        column_type = entry.get("type")
        kind = entry.get("kind")
        if kind not in ("f8", "i8", _DATE_KIND, "str"):
            raise ColumnarFormatError(
                f"{path}: column {column_name!r}: unknown kind {kind!r}"
            )
        what = f"column {column_name!r}"
        blob = checked_blob(entry, what)
        if kind == "str":
            aux_blob = checked_blob(entry.get("aux") or {}, f"{what} offsets")
            if len(aux_blob) != (rows + 1) * 8:
                raise ColumnarFormatError(f"{path}: {what}: offsets size mismatch")
            aux = track(aux_blob.cast("q"))
            if aux[0] != 0:
                raise ColumnarFormatError(f"{path}: {what}: offsets must start at 0")
            for i in range(rows):
                if aux[i] > aux[i + 1]:
                    raise ColumnarFormatError(
                        f"{path}: {what}: offsets not monotone"
                    )
            if aux[rows] != len(blob):
                raise ColumnarFormatError(f"{path}: {what}: offsets/data mismatch")
            columns[column_name] = _StoredColumn("str", blob, aux)
        else:
            width = 8
            if len(blob) != rows * width:
                raise ColumnarFormatError(
                    f"{path}: {what}: expected {rows * width} data bytes, "
                    f"found {len(blob)}"
                )
            code = "d" if kind == "f8" else "q"
            columns[column_name] = _StoredColumn(kind, track(blob.cast(code)))
        schema_columns.append((column_name, column_type))
    try:
        schema = Schema(schema_columns)
    except Exception as error:
        raise ColumnarFormatError(f"{path}: invalid schema ({error})") from None
    table_name = header.get("name")
    if not isinstance(table_name, str) or not table_name:
        raise ColumnarFormatError(f"{path}: missing table name")
    if name is not None:
        table_name = name
    return ColumnarTable(table_name, schema, columns, rows, mapped, handle)


def sidecar_path(csv_path: Union[str, Path]) -> str:
    """The columnar cache file conventionally paired with a CSV."""
    return str(csv_path) + ".rcol"


def load_table(
    path: Union[str, Path],
    name: str,
    schema: Schema,
    *,
    policy="raise",
    diagnostics=None,
):
    """Load a table, preferring columnar storage, falling back to CSV.

    - ``*.rcol`` paths load strictly through :func:`load_columnar`
      (schema must match; corruption raises);
    - CSV paths first probe the ``<path>.rcol`` sidecar: a valid,
      schema-matching sidecar is mmap'd; a rejected one (torn write,
      checksum mismatch, schema drift) records a warning on
      ``diagnostics`` and the CSV is ingested instead — the clean
      fallback the crash-consistency suite pins.
    """
    from repro.engine.csv_io import load_csv

    path = str(path)
    if path.endswith(".rcol"):
        table = load_columnar(path, name=name)
        try:
            _check_schema(path, table.schema, schema)
        except BaseException:
            table.close()
            raise
        return table
    sidecar = sidecar_path(path)
    if os.path.exists(sidecar):
        table = None
        try:
            table = load_columnar(sidecar, name=name)
            _check_schema(sidecar, table.schema, schema)
            return table
        except ColumnarFormatError as error:
            if table is not None:
                table.close()
            if diagnostics is not None:
                diagnostics.warn(
                    f"columnar sidecar rejected ({error}); "
                    f"falling back to CSV ingest of {path}"
                )
    return load_csv(path, name, schema, policy=policy, diagnostics=diagnostics)


def _check_schema(path: str, found: Schema, expected: Schema) -> None:
    found_cols = [(c.name, c.type) for c in found.columns]
    expected_cols = [(c.name, c.type) for c in expected.columns]
    if found_cols != expected_cols:
        raise ColumnarFormatError(
            f"{path}: schema {found_cols} does not match expected "
            f"{expected_cols}"
        )


def _main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.engine.columnar``: convert a CSV to columnar."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Convert a CSV table to the mmap-able columnar format."
    )
    parser.add_argument("csv", help="input CSV path")
    parser.add_argument(
        "output", nargs="?", default=None,
        help="output path (default: <csv>.rcol sidecar)",
    )
    parser.add_argument("--name", required=True, help="table name")
    parser.add_argument(
        "--schema", required=True,
        help="comma-separated col:type list (types: str,int,float,date)",
    )
    args = parser.parse_args(argv)
    columns = []
    for part in args.schema.split(","):
        column_name, _, column_type = part.strip().partition(":")
        columns.append((column_name, column_type))
    from repro.engine.csv_io import load_csv

    table = load_csv(args.csv, args.name, Schema(columns))
    output = args.output if args.output is not None else sidecar_path(args.csv)
    write_columnar(table, output)
    print(f"wrote {output} ({len(table.rows)} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
