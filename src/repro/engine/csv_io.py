"""CSV import/export for tables.

Values are converted according to the schema: ``int`` and ``float`` via
the obvious constructors, ``date`` via ISO-8601 (``YYYY-MM-DD``).
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Union

from repro.engine.table import Schema, Table
from repro.errors import SchemaError


def _parse(value: str, type_name: str) -> object:
    if type_name == "str":
        return value
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    if type_name == "date":
        return _dt.date.fromisoformat(value)
    raise SchemaError(f"unknown column type {type_name!r}")


def _render(value: object) -> str:
    if isinstance(value, _dt.date):
        return value.isoformat()
    return str(value)


def load_csv(path: Union[str, Path], name: str, schema: Schema) -> Table:
    """Load a CSV file (with header row) into a new table."""
    table = Table(name, schema)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SchemaError(f"{path}: empty CSV file")
        missing = set(schema.names) - set(reader.fieldnames)
        if missing:
            raise SchemaError(f"{path}: missing columns {sorted(missing)}")
        for record in reader:
            table.insert(
                {
                    column.name: _parse(record[column.name], column.type)
                    for column in schema.columns
                }
            )
    return table


def save_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table to CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for row in table:
            writer.writerow([_render(row[name]) for name in table.schema.names])
