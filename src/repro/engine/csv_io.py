"""CSV import/export for tables.

Values are converted according to the schema: ``int`` and ``float`` via
the obvious constructors, ``date`` via ISO-8601 (``YYYY-MM-DD``).

Parse failures carry full context (file path, 1-based line number,
column, offending value) as :class:`~repro.errors.SchemaError`, and
:func:`load_csv` accepts an :class:`~repro.resilience.ErrorPolicy`:
under ``SKIP``/``COLLECT`` malformed rows — unparseable values,
truncated rows, extra columns, non-finite floats — are quarantined into
a :class:`~repro.resilience.Diagnostics` record instead of aborting the
load.  The default ``RAISE`` policy keeps strict fail-fast behavior.
"""

from __future__ import annotations

import csv
import datetime as _dt
import math
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.engine.table import Schema, Table
from repro.errors import SchemaError
from repro.resilience import Diagnostics, ErrorPolicy

#: Sentinel DictReader fills in for missing trailing cells.
_MISSING = object()
#: Key DictReader files extra trailing cells under.
_EXTRA = "__extra_cells__"


def _parse(value: str, type_name: str) -> object:
    """Convert one CSV cell; context-free (see :func:`_parse_cell`)."""
    if type_name == "str":
        return value
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    if type_name == "date":
        return _dt.date.fromisoformat(value)
    raise SchemaError(f"unknown column type {type_name!r}")


def _parse_cell(
    value: str, type_name: str, *, path: str, line: int, column: str
) -> object:
    """Convert one cell, wrapping failures in a contextual SchemaError."""
    try:
        return _parse(value, type_name)
    except (ValueError, TypeError) as error:
        raise SchemaError(
            f"{path}:{line}: column {column!r}: "
            f"cannot parse {value!r} as {type_name} ({error})"
        ) from error


def _render(value: object) -> str:
    if isinstance(value, _dt.date):
        return value.isoformat()
    return str(value)


def load_csv(
    path: Union[str, Path],
    name: str,
    schema: Schema,
    *,
    policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
    diagnostics: Optional[Diagnostics] = None,
) -> Table:
    """Load a CSV file (with header row) into a new table.

    Under the default ``RAISE`` policy any malformed row aborts the load
    with a :class:`~repro.errors.SchemaError` naming the file, 1-based
    line, column, and offending value.  Under ``SKIP``/``COLLECT`` the
    row is quarantined into ``diagnostics`` (with the same context) and
    loading continues; ``COLLECT`` additionally retains the error object.
    A missing header or missing schema columns always raise — there is
    no row-level recovery from a broken header.
    """
    policy = ErrorPolicy.coerce(policy)
    sink = diagnostics if diagnostics is not None else Diagnostics()
    table = Table(name, schema)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle, restkey=_EXTRA, restval=_MISSING)
        if reader.fieldnames is None:
            raise SchemaError(f"{path}: empty CSV file")
        missing = set(schema.names) - set(reader.fieldnames)
        if missing:
            raise SchemaError(f"{path}: missing columns {sorted(missing)}")
        for record in reader:
            line = reader.line_num
            try:
                table.insert(
                    _convert_record(
                        record,
                        schema,
                        str(path),
                        line,
                        reject_non_finite=policy.lenient,
                    )
                )
            except SchemaError as error:
                if not policy.lenient:
                    raise
                _quarantine_row(sink, policy, record, schema, path, line, error)
    return table


def _quarantine_row(
    sink: Diagnostics,
    policy: ErrorPolicy,
    record: dict,
    schema: Schema,
    path: Union[str, Path],
    line: int,
    error: SchemaError,
) -> None:
    """Record one malformed CSV row under a lenient policy."""
    values = tuple(
        record[column]
        for column in schema.names
        if record.get(column) is not _MISSING
    )
    # QuarantinedRow prepends source:line, so strip the
    # prefix the contextual message already carries.
    reason = str(error)
    prefix = f"{path}:{line}: "
    if reason.startswith(prefix):
        reason = reason[len(prefix) :]
    sink.quarantine(str(path), line, reason, values)
    if policy is ErrorPolicy.COLLECT:
        sink.record_error(line, f"{path}:{line}", error)


def iter_csv(
    path: Union[str, Path],
    schema: Schema,
    *,
    start_offset: int = 0,
    policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
    diagnostics: Optional[Diagnostics] = None,
) -> Iterator[Tuple[int, dict[str, object]]]:
    """Stream a CSV file as ``(offset, row)`` pairs, resumable by offset.

    Offsets number the *physical* data rows 0-based — quarantined rows
    consume an offset too, so a row's offset is independent of the error
    policy and stable across runs; that is what makes offsets safe to
    persist in checkpoints and resume from.  Rows before ``start_offset``
    are skipped without schema conversion (and without re-recording their
    quarantine entries), so resuming does not re-validate the replayed
    prefix.

    This is the offset-addressable source for
    :class:`~repro.recovery.RecoveringStreamRunner`:
    ``lambda start: iter_csv(path, schema, start_offset=start, ...)``.
    """
    if start_offset < 0:
        raise ValueError(f"start_offset must be non-negative, got {start_offset}")
    policy = ErrorPolicy.coerce(policy)
    sink = diagnostics if diagnostics is not None else Diagnostics()
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle, restkey=_EXTRA, restval=_MISSING)
        if reader.fieldnames is None:
            raise SchemaError(f"{path}: empty CSV file")
        missing = set(schema.names) - set(reader.fieldnames)
        if missing:
            raise SchemaError(f"{path}: missing columns {sorted(missing)}")
        for offset, record in enumerate(reader):
            if offset < start_offset:
                continue
            line = reader.line_num
            try:
                row = _convert_record(
                    record,
                    schema,
                    str(path),
                    line,
                    reject_non_finite=policy.lenient,
                )
            except SchemaError as error:
                if not policy.lenient:
                    raise
                _quarantine_row(sink, policy, record, schema, path, line, error)
                continue
            yield offset, row


def _convert_record(
    record: dict,
    schema: Schema,
    path: str,
    line: int,
    *,
    reject_non_finite: bool = False,
) -> dict[str, object]:
    """Convert one DictReader record, rejecting short and long rows.

    ``reject_non_finite`` additionally treats NaN/inf floats as errors —
    the lenient policies quarantine such rows as dirty data, while the
    strict default keeps the seed's permissive float parsing.
    """
    if _EXTRA in record:
        extra = record[_EXTRA]
        raise SchemaError(
            f"{path}:{line}: row has {len(extra)} extra column(s): {extra!r}"
        )
    row: dict[str, object] = {}
    for column in schema.columns:
        raw = record[column.name]
        if raw is _MISSING or raw is None:
            raise SchemaError(
                f"{path}:{line}: truncated row is missing column {column.name!r}"
            )
        value = _parse_cell(
            raw, column.type, path=path, line=line, column=column.name
        )
        if (
            reject_non_finite
            and isinstance(value, float)
            and not math.isfinite(value)
        ):
            raise SchemaError(
                f"{path}:{line}: column {column.name!r}: "
                f"non-finite value {raw!r}"
            )
        row[column.name] = value
    return row


def save_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table to CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for row in table:
            writer.writerow([_render(row[name]) for name in table.schema.names])
