"""Partition-parallel execution of clustered SQL-TS queries.

The paper's OPS matcher runs independently per ``CLUSTER BY`` partition
— each stock in the DJIA-style workloads is searched in isolation — so
partition parallelism is the cheapest scale-out step: split the
clustered input into work units, search them on a
:mod:`concurrent.futures` pool, and merge the outcomes back in
partition order.

Determinism contract (the reason this module can exist next to the
resilience and recovery layers): **without resource limits, parallel
execution is byte-identical to serial execution** — same output rows in
the same order, same predicate-test counts (the paper's metric), same
diagnostics, same report fields.  The guarantees rest on three pillars:

1. *Serial admission.*  Clustering, sequence audits, hoisted cluster
   filters, and ``max_rows_scanned`` check-then-charge all run in the
   parent, in first-appearance cluster order, before anything is
   dispatched — so which partitions are searched, and every
   admission-side diagnostic, is decided exactly as the serial loop
   decides it.
2. *Shared per-cluster search.*  Workers run the same
   :func:`repro.engine.executor.search_rows` the serial loop runs,
   including the per-partition OPS→fallback degrade.
3. *Ordered merge.*  Outcomes are merged by partition index regardless
   of completion order; identical downgrade/limit messages that each
   worker discovers independently (they are properties of the pattern,
   not the data) are collapsed to the single entry serial execution
   would record.

With resource limits the guarantees are necessarily looser — a worker
cannot know remotely when a sibling trips the global budget — but they
stay *safe*: ``max_rows_scanned`` admits exactly the serial prefix
(never over-admits), ``max_matches`` keeps exactly the first N matches
in partition order (the same rows serial keeps, though workers may have
tested more predicates finding discarded ones), and a
``wall_clock_deadline`` is pushed down to every worker so a mid-pool
expiry stops outstanding workers and still returns a well-formed
partial report.  See "Parallel execution" in ``docs/performance.md``.

Worker modes: ``process`` re-plans the query from its text in each
worker (compiled-predicate closures cannot cross the pickle boundary —
re-compilation is deterministic) and suits CPU-bound compiled
workloads; ``thread`` shares the in-memory plan and suits small inputs
or pre-built ``ast.Query`` objects, and is the fallback whenever the
query is not a string.  ``auto`` picks ``process`` on multi-core hosts
for string queries, ``thread`` otherwise.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import as_completed
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro import failpoints
from repro.engine.cluster import clusters_of
from repro.engine.executor import (
    MATCHERS,
    ExecutionReport,
    _annotate_plan_span,
    _cluster_passes,
    _project,
    search_rows,
)
from repro.engine.result import Result
from repro.errors import (
    ExecutionError,
    LimitExceeded,
    PlanningError,
    ReproError,
    SchemaError,
    SemanticError,
)
from repro.match.base import Instrumentation
from repro.obs import QueryProfile, Trace
from repro.pattern.compiler import compile_pattern, degraded_pattern
from repro.pattern.predicates import AttributeDomains
from repro.resilience import Budget, Diagnostics, ErrorPolicy, ResourceLimits
from repro.sqlts import ast
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze

#: Work units per worker: small enough to amortize dispatch overhead,
#: large enough that a skewed partition cannot straggle a whole unit's
#: worth of siblings behind it.
UNIT_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class Partition:
    """One admitted cluster: its merge position, key, and sorted rows."""

    index: int
    key: tuple
    rows: Sequence


@dataclass(frozen=True)
class WorkUnit:
    """A consecutive slice of partitions dispatched as one pool task."""

    index: int
    partitions: tuple


def split_partitions(
    partitions: Sequence,
    workers: int,
    unit_size: Optional[int] = None,
    weights: Optional[Sequence[int]] = None,
) -> list[WorkUnit]:
    """Chunk ``partitions`` into consecutive, order-preserving work units.

    Every input item appears in exactly one unit, units concatenate back
    to the input order, and no unit is empty — the invariants the
    property suite (``tests/engine/test_parallel_properties.py``) pins.
    ``unit_size`` defaults to an oversubscription of
    ``workers * UNIT_OVERSUBSCRIPTION`` units so skewed partitions
    rebalance across the pool.

    ``weights`` (one non-negative int per partition, e.g. the columnar
    first-element candidate counts) switches to weighted chunking: units
    stay consecutive and order-preserving, but each unit closes once its
    accumulated weight reaches ``total_weight / (workers *
    UNIT_OVERSUBSCRIPTION)``, so a partition with many candidate
    positions does not drag a unit's worth of cheap siblings behind it.
    Mutually exclusive with ``unit_size``.
    """
    if workers < 1:
        raise ExecutionError(f"workers must be positive, got {workers}")
    if unit_size is not None and unit_size < 1:
        raise ExecutionError(f"unit_size must be positive, got {unit_size}")
    total = len(partitions)
    if total == 0:
        return []
    if weights is not None:
        if unit_size is not None:
            raise ExecutionError("unit_size and weights are mutually exclusive")
        if len(weights) != total:
            raise ExecutionError(
                f"weights must match partitions: {len(weights)} != {total}"
            )
        if any(weight < 0 for weight in weights):
            raise ExecutionError("weights must be non-negative")
        target = sum(weights) / (workers * UNIT_OVERSUBSCRIPTION)
        units = []
        current: list = []
        accumulated = 0
        for partition, weight in zip(partitions, weights):
            current.append(partition)
            accumulated += weight
            if accumulated >= target:
                units.append(WorkUnit(len(units), tuple(current)))
                current = []
                accumulated = 0
        if current:
            units.append(WorkUnit(len(units), tuple(current)))
        return units
    if unit_size is None:
        unit_size = max(1, -(-total // (workers * UNIT_OVERSUBSCRIPTION)))
    units = []
    for start in range(0, total, unit_size):
        units.append(
            WorkUnit(len(units), tuple(partitions[start : start + unit_size]))
        )
    return units


def index_outcomes(outcomes: Iterable[dict]) -> dict[int, dict]:
    """Key unit outcomes by unit index, rejecting duplicates."""
    by_unit: dict[int, dict] = {}
    for outcome in outcomes:
        unit = outcome["unit"]
        if unit in by_unit:
            raise ExecutionError(f"duplicate outcome for work unit {unit}")
        by_unit[unit] = outcome
    return by_unit


def ordered_partition_outcomes(by_unit: dict[int, dict]) -> Iterable[dict]:
    """Yield partition outcomes in global partition order.

    Units may complete in any order; this is the single place that
    restores determinism.  A partition index that repeats or goes
    backwards means a splitter/runner bug and is rejected loudly rather
    than silently reordering rows.
    """
    last = -1
    for unit_index in sorted(by_unit):
        for outcome in by_unit[unit_index]["partitions"]:
            if outcome["partition"] <= last:
                raise ExecutionError(
                    f"partition outcomes out of order or duplicated: "
                    f"{outcome['partition']} after {last}"
                )
            last = outcome["partition"]
            yield outcome


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass
class _WorkerPlan:
    """Everything a worker needs to search partitions of one query."""

    analyzed: object
    compiled: object
    matcher_name: str
    policy: ErrorPolicy
    fallback: Optional[str]
    record_trace: bool
    # Flight-recorder mode: workers time each unit/partition and report
    # serialized span dicts (durations only — perf_counter origins do
    # not align across processes) for the parent to graft into its Trace.
    record_spans: bool = False
    # Predicate evaluation mode (see executor.EVALUATOR_MODES): workers
    # apply the same per-cluster kernel engagement policy as the serial
    # loop, so matches stay byte-identical across worker counts.
    evaluator: str = "row"


def _run_unit(
    plan: _WorkerPlan,
    unit_index: int,
    partitions: Sequence[tuple],
    deadline_remaining: Optional[float] = None,
    max_matches: Optional[int] = None,
) -> dict:
    """Search one work unit's partitions; return a picklable outcome.

    ``partitions`` is a sequence of ``(partition_index, rows)`` pairs.
    A fresh matcher starts the unit and — exactly like the serial loop —
    a PlanningError downgrade replaces it for the unit's remaining
    partitions.  A per-unit budget carries the pushed-down deadline and
    the global ``max_matches`` allowance (a unit alone can prove the
    global cap reached; the merge enforces it across units).

    The first partition that raises stops the unit: its error is
    reported with its partition index so the parent can deterministically
    re-raise the earliest failure, exactly as the serial loop would have
    surfaced it.
    """
    failpoints.maybe_fail("parallel.worker_start")
    matcher_name = plan.matcher_name
    matcher = MATCHERS[matcher_name]()
    unit_diagnostics = Diagnostics()
    budget = None
    if deadline_remaining is not None or max_matches is not None:
        limits = ResourceLimits(
            wall_clock_deadline=deadline_remaining, max_matches=max_matches
        )
        budget = Budget(limits, unit_diagnostics)
    outcomes: list[dict] = []
    error: Optional[tuple[int, str, str]] = None
    error_obj: Optional[BaseException] = None
    record_spans = plan.record_spans
    partition_spans: list[dict] = []
    unit_started = time.perf_counter() if record_spans else 0.0
    for partition_index, rows in partitions:
        if budget is not None and budget.tripped is not None:
            break
        instrumentation = Instrumentation(record_trace=plan.record_trace)
        if record_spans:
            instrumentation.enable_detail()
            partition_started = time.perf_counter()
        diagnostics = Diagnostics()
        try:
            matches, matcher_name, matcher = search_rows(
                rows,
                plan.compiled,
                matcher_name,
                matcher,
                instrumentation,
                budget,
                diagnostics,
                plan.policy,
                plan.fallback,
                evaluator=plan.evaluator,
            )
            projected = [_project(plan.analyzed, rows, match) for match in matches]
        except Exception as exc:
            error = (partition_index, type(exc).__name__, str(exc))
            error_obj = exc
            break
        outcomes.append(
            {
                "partition": partition_index,
                "rows": projected,
                "tests": instrumentation.tests,
                "skips": instrumentation.skips,
                "skip_distance": instrumentation.skip_distance,
                "tests_by_element": instrumentation.tests_by_element,
                "trace": instrumentation.trace,
                "matcher": matcher_name,
                "downgrades": list(diagnostics.downgrades),
            }
        )
        if record_spans:
            partition_spans.append(
                {
                    "name": "cluster",
                    "duration_s": time.perf_counter() - partition_started,
                    "attrs": {
                        "partition": partition_index,
                        "rows": len(rows),
                        "tests": instrumentation.tests,
                        "matches": len(matches),
                        "matcher": matcher_name,
                    },
                    "children": [],
                }
            )
    return {
        "unit": unit_index,
        "partitions": outcomes,
        "limits_hit": list(unit_diagnostics.limits_hit),
        "error": error,
        "error_obj": error_obj,
        "span": (
            {
                "name": "unit",
                "duration_s": time.perf_counter() - unit_started,
                "attrs": {"unit": unit_index},
                "children": partition_spans,
            }
            if record_spans
            else None
        ),
    }


#: Per-process plan, built once by the pool initializer.
_PROCESS_PLAN: Optional[_WorkerPlan] = None


def _plan_from_payload(payload: dict) -> _WorkerPlan:
    """Rebuild the execution plan inside a worker process.

    Compiled predicate evaluators are closures and cannot be pickled, so
    the parent ships the query *text* plus the planning knobs and each
    worker re-plans once.  Compilation is deterministic, so every worker
    holds the same plan the parent does.
    """
    domains = AttributeDomains(payload["positive"])
    parsed = parse_query(payload["query"])
    analyzed = analyze(parsed, domains)
    if payload["degraded"]:
        compiled = degraded_pattern(analyzed.spec, codegen=payload["codegen"])
    else:
        compiled = compile_pattern(analyzed.spec, codegen=payload["codegen"])
    return _WorkerPlan(
        analyzed=analyzed,
        compiled=compiled,
        matcher_name=payload["matcher"],
        policy=ErrorPolicy.coerce(payload["policy"]),
        fallback=payload["fallback"],
        record_trace=payload["record_trace"],
        record_spans=payload.get("record_spans", False),
        evaluator=payload.get("evaluator", "row"),
    )


def _process_initializer(payload: dict) -> None:
    global _PROCESS_PLAN
    _PROCESS_PLAN = _plan_from_payload(payload)


def _process_run_unit(task: tuple) -> dict:
    unit_index, partitions, deadline_remaining, max_matches = task
    outcome = _run_unit(
        _PROCESS_PLAN, unit_index, partitions, deadline_remaining, max_matches
    )
    # Live exception objects may not survive the pickle boundary; the
    # (partition, class name, message) triple does, and the parent
    # rebuilds the error from it.
    outcome["error_obj"] = None
    return outcome


#: Library errors reconstructible by name when a worker process reports
#: a failure (the triple form of the error crosses the pickle boundary,
#: the live object need not).
_ERROR_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ExecutionError,
        PlanningError,
        SchemaError,
        SemanticError,
        LimitExceeded,
        ReproError,
    )
}


def _rebuild_error(class_name: str, message: str) -> BaseException:
    """Reconstruct a worker-reported error: same type where possible."""
    cls = _ERROR_TYPES.get(class_name)
    if cls is not None:
        return cls(message)
    import builtins

    candidate = getattr(builtins, class_name, None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        try:
            return candidate(message)
        except Exception:  # exotic constructor signature
            pass
    return ExecutionError(f"{class_name}: {message}")


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def _partition_weights(executor, compiled, admitted) -> Optional[list[int]]:
    """Columnar candidate counts per partition, or None for row counts.

    When the columnar path is engaged, the cost of a partition tracks how
    many positions survive its first lowered kernel, not its raw length —
    the splitter weights units by that signal so one candidate-dense
    stock does not straggle a unit of candidate-free siblings.  Weighting
    only reshapes unit *boundaries*; the merge stays partition-ordered,
    so outputs are unchanged.  None (row-count splitting) whenever the
    columnar path is off or any partition declines to materialize.
    """
    if len(admitted) <= 1 or executor._evaluator == "row":
        return None
    if not compiled.use_codegen:
        return None
    from repro.engine.columnar import (
        first_element_candidates,
        vector_backend_active,
    )

    if executor._evaluator == "auto" and not vector_backend_active():
        return None
    weights = []
    for partition in admitted:
        candidates = first_element_candidates(compiled, partition.rows)
        if candidates is None:
            return None
        # +1 keeps empty-candidate partitions from weighing nothing: the
        # worker still pays per-partition dispatch and kernel build.
        weights.append(candidates + 1)
    return weights


def _resolve_mode(mode: str, query: Union[str, ast.Query]) -> str:
    """Pick the pool flavor; non-string queries always run on threads
    (a pre-built AST cannot be shipped to a fresh interpreter)."""
    if not isinstance(query, str):
        return "thread"
    if mode == "auto":
        return "process" if (os.cpu_count() or 1) > 1 else "thread"
    return mode


def _remaining(deadline_end: Optional[float]) -> Optional[float]:
    if deadline_end is None:
        return None
    return max(deadline_end - time.monotonic(), 0.001)


def _harvest(future, unit: WorkUnit, outcome_by_unit: dict[int, dict]) -> None:
    """Fold one finished future into the outcome map.

    A failure *outside* the per-partition guard (a broken process pool,
    an unpicklable outcome) is attributed to the unit's first partition
    so it participates in the deterministic earliest-error selection.
    """
    try:
        outcome = future.result(timeout=0)
    except Exception as exc:
        first = unit.partitions[0].index
        outcome = {
            "unit": unit.index,
            "partitions": [],
            "limits_hit": [],
            "error": (first, type(exc).__name__, str(exc)),
            "error_obj": exc,
        }
    outcome_by_unit[outcome["unit"]] = outcome


def _run_units_pooled(
    plan: _WorkerPlan,
    units: Sequence[WorkUnit],
    workers: int,
    mode: str,
    payload: Optional[dict],
    deadline_end: Optional[float],
    max_matches: Optional[int],
    budget: Optional[Budget],
) -> dict[int, dict]:
    """Dispatch units to a process or thread pool and collect outcomes.

    A global deadline expiring mid-pool trips the parent budget (which
    records the canonical limit diagnostic), cancels undispatched units,
    and then waits briefly for the running ones — each worker holds the
    same deadline allowance, so they stop on their own and their partial
    outcomes are still merged.
    """
    outcome_by_unit: dict[int, dict] = {}
    max_workers = min(workers, len(units))

    def unit_task(unit: WorkUnit) -> tuple:
        return (
            unit.index,
            [(p.index, p.rows) for p in unit.partitions],
            _remaining(deadline_end),
            max_matches,
        )

    if mode == "process":
        pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_process_initializer,
            initargs=(payload,),
        )

        def submit(unit: WorkUnit):
            return pool.submit(_process_run_unit, unit_task(unit))

    else:
        pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-parallel"
        )

        def submit(unit: WorkUnit):
            return pool.submit(_run_unit, plan, *unit_task(unit))

    try:
        future_units = {submit(unit): unit for unit in units}
        try:
            for future in as_completed(future_units, timeout=_remaining(deadline_end)):
                _harvest(future, future_units[future], outcome_by_unit)
        except FuturesTimeout:
            if budget is not None:
                budget.check_deadline()
            for future in future_units:
                future.cancel()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    # Harvest anything that finished while the pool was draining.
    for future, unit in future_units.items():
        if (
            unit.index not in outcome_by_unit
            and future.done()
            and not future.cancelled()
        ):
            _harvest(future, unit, outcome_by_unit)
    return outcome_by_unit


def execute_parallel(
    executor,
    query: Union[str, ast.Query],
    instrumentation: Optional[Instrumentation] = None,
    *,
    workers: int,
    mode: str = "auto",
    limits: Optional[ResourceLimits] = None,
    cancel=None,
    trace: Optional[Trace] = None,
) -> tuple[Result, ExecutionReport]:
    """Execute ``query`` with partition-parallel workers.

    Called by :meth:`repro.engine.executor.Executor.execute_with_report`
    when the effective worker count exceeds one; ``workers=1`` never
    reaches here (the executor short-circuits to the serial path).

    ``limits`` overrides the executor-level resource limits for this
    call (per-request deadlines from the serving layer).  ``cancel`` is
    a cooperative cancellation hook consulted by the parent budget
    during admission and harvest; dispatched workers stop on their own
    deadlines, so cancellation of in-flight units is best-effort.

    ``trace`` turns on the flight recorder: the parent spans planning,
    admission, and the pool phase, workers report per-unit span dicts
    (see :class:`_WorkerPlan.record_spans`), and the merged result
    carries a :class:`~repro.obs.QueryProfile`.
    """
    if trace is None:
        return _parallel_pass(
            executor,
            query,
            instrumentation,
            workers=workers,
            mode=mode,
            limits=limits,
            cancel=cancel,
            trace=None,
        )
    with trace.span("execute", mode="parallel") as root:
        result, report = _parallel_pass(
            executor,
            query,
            instrumentation,
            workers=workers,
            mode=mode,
            limits=limits,
            cancel=cancel,
            trace=trace,
        )
    root.annotate(
        matcher=report.matcher,
        matches=report.matches,
        rows_scanned=report.rows_scanned,
        tests=report.predicate_tests,
    )
    result.profile = QueryProfile(trace, report)
    return result, report


def _parallel_pass(
    executor,
    query: Union[str, ast.Query],
    instrumentation: Optional[Instrumentation] = None,
    *,
    workers: int,
    mode: str = "auto",
    limits: Optional[ResourceLimits] = None,
    cancel=None,
    trace: Optional[Trace] = None,
) -> tuple[Result, ExecutionReport]:
    diagnostics = Diagnostics()
    if trace is not None:
        with trace.span("plan") as plan_span:
            entry = executor._analyze_and_compile(query, diagnostics)
    else:
        entry = executor._analyze_and_compile(query, diagnostics)
    if entry.planning_error is not None:
        if not executor._policy.lenient or executor._fallback is None:
            raise entry.planning_error
        matcher_name = executor._fallback
        diagnostics.record_downgrade(entry.degrade_reason)
        degraded = True
    else:
        matcher_name = executor._matcher_name
        degraded = False
    analyzed, compiled = entry.analyzed, entry.compiled
    if trace is not None:
        _annotate_plan_span(plan_span, diagnostics, matcher_name, compiled)

    if matcher_name not in MATCHERS:
        # A custom matcher instance has no registry constructor workers
        # could call; honor the request serially rather than guess.
        result, report = executor._execute_serial(query, instrumentation)
        result.diagnostics.warn(
            f"matcher {matcher_name!r} is not in the matcher registry; "
            "parallel execution needs a registry matcher — ran serially"
        )
        return result, report

    instrumentation = (
        instrumentation if instrumentation is not None else Instrumentation()
    )
    if trace is not None:
        instrumentation.enable_detail()
    limits = limits if limits is not None else executor._limits
    budget = (
        Budget(limits, diagnostics, cancel=cancel)
        if limits.bounded or cancel is not None
        else None
    )
    deadline_end = (
        time.monotonic() + limits.wall_clock_deadline
        if limits.wall_clock_deadline is not None
        else None
    )
    table = executor._catalog.table(analyzed.table)
    columns = [
        item.output_name(position)
        for position, item in enumerate(analyzed.select, start=1)
    ]

    # Phase 1 — admission, with the serial loop's exact semantics:
    # cluster order, sequence audits, hoisted filters, and the
    # check-then-charge row budget all happen here, in the parent, so
    # splitting work across workers can never over-admit rows.
    admitted: list[Partition] = []
    clusters = 0
    searched = 0
    scanned = 0
    admit_span = None
    if trace is not None:
        admit_cm = trace.span("scan")
        admit_span = admit_cm.__enter__()
    try:
        for key, rows in clusters_of(
            table,
            analyzed.cluster_by,
            analyzed.sequence_by,
            policy=executor._policy,
            diagnostics=diagnostics,
        ):
            clusters += 1
            if budget is not None and budget.check_deadline():
                break
            if not _cluster_passes(analyzed, rows):
                continue
            if budget is not None and budget.add_rows(len(rows)):
                break
            searched += 1
            scanned += len(rows)
            admitted.append(Partition(index=len(admitted), key=key, rows=rows))
    finally:
        if admit_span is not None:
            admit_cm.__exit__(None, None, None)
            admit_span.annotate(
                clusters=clusters,
                clusters_searched=searched,
                rows_scanned=scanned,
            )

    # Phase 2 — dispatch.
    plan = _WorkerPlan(
        analyzed=analyzed,
        compiled=compiled,
        matcher_name=matcher_name,
        policy=executor._policy,
        fallback=executor._fallback,
        record_trace=instrumentation.trace is not None,
        record_spans=trace is not None,
        evaluator=executor._evaluator,
    )
    units = split_partitions(
        admitted, workers, weights=_partition_weights(executor, compiled, admitted)
    )
    max_matches = limits.max_matches
    resolved_mode = _resolve_mode(mode, query)
    pool_span = None
    if trace is not None:
        pool_cm = trace.span("parallel")
        pool_span = pool_cm.__enter__()
    try:
        if len(units) <= 1:
            # One unit (or none) cannot use a pool; run it in-line through
            # the identical worker code path.
            outcome_by_unit = index_outcomes(
                _run_unit(
                    plan,
                    unit.index,
                    [(p.index, p.rows) for p in unit.partitions],
                    _remaining(deadline_end),
                    max_matches,
                )
                for unit in units
            )
        else:
            payload = None
            if resolved_mode == "process":
                payload = {
                    "query": query,
                    "positive": executor._domains.fingerprint(),
                    "codegen": executor._codegen,
                    "degraded": degraded,
                    "matcher": matcher_name,
                    "fallback": executor._fallback,
                    "policy": executor._policy.value,
                    "record_trace": plan.record_trace,
                    "record_spans": plan.record_spans,
                    "evaluator": plan.evaluator,
                }
            outcome_by_unit = _run_units_pooled(
                plan,
                units,
                workers,
                resolved_mode,
                payload,
                deadline_end,
                max_matches,
                budget,
            )
    finally:
        if pool_span is not None:
            pool_cm.__exit__(None, None, None)
            pool_span.annotate(
                mode=resolved_mode, workers=workers, units=len(units)
            )
    if trace is not None:
        # Graft the per-unit span trees the workers reported (duration
        # only — their clock origins are not ours) under the pool span.
        for unit_index in sorted(outcome_by_unit):
            span_payload = outcome_by_unit[unit_index].get("span")
            if span_payload:
                trace.attach(pool_span, span_payload)

    # Phase 3 — deterministic earliest-error selection.  The serial loop
    # surfaces the first failing partition; completed siblings are
    # discarded just as serial execution would never have reached them.
    failures = [
        (outcome["error"], outcome.get("error_obj"))
        for outcome in outcome_by_unit.values()
        if outcome.get("error") is not None
    ]
    if failures:
        (partition, class_name, message), error_obj = min(
            failures, key=lambda failure: failure[0][0]
        )
        if error_obj is not None:
            raise error_obj
        raise _rebuild_error(class_name, message)

    # Phase 4 — ordered merge: rows, instrumentation, diagnostics, and
    # the match cap, all in partition order.
    output_rows: list[tuple] = []
    match_count = 0
    final_matcher = matcher_name
    capped = False
    for outcome in ordered_partition_outcomes(outcome_by_unit):
        instrumentation.tests += outcome["tests"]
        instrumentation.skips += outcome.get("skips", 0)
        instrumentation.skip_distance += outcome.get("skip_distance", 0)
        detail = outcome.get("tests_by_element")
        if detail and instrumentation.tests_by_element is not None:
            for position, count in detail.items():
                instrumentation.tests_by_element[position] = (
                    instrumentation.tests_by_element.get(position, 0) + count
                )
        if instrumentation.trace is not None and outcome["trace"]:
            instrumentation.trace.extend(outcome["trace"])
        if outcome["matcher"] != matcher_name:
            final_matcher = outcome["matcher"]
        for message in outcome["downgrades"]:
            # Each unit rediscovers the same pattern-level downgrade the
            # serial loop records once; collapse exact duplicates.
            if message not in diagnostics.downgrades:
                diagnostics.record_downgrade(message)
        if capped:
            continue
        for row in outcome["rows"]:
            output_rows.append(row)
            match_count += 1
            if max_matches is not None and match_count >= max_matches:
                capped = True
                if budget is not None:
                    budget.trip(f"max_matches ({max_matches}) reached")
                break
    for unit_index in sorted(outcome_by_unit):
        for message in outcome_by_unit[unit_index]["limits_hit"]:
            if message not in diagnostics.limits_hit:
                diagnostics.record_limit(message)

    report = ExecutionReport(
        matcher=final_matcher,
        clusters=clusters,
        clusters_searched=searched,
        rows_scanned=scanned,
        predicate_tests=instrumentation.tests,
        matches=match_count,
        pattern=compiled,
        diagnostics=diagnostics,
    )
    return Result(columns, output_rows, diagnostics), report
