"""Streaming user-defined aggregates (UDAs).

Section 6 of the paper: "The runtime execution of SQL-TS is achieved via
user-defined aggregates that are capable of applying arbitrary SQL
statements on input streams" (Wang & Zaniolo, VLDB 2000).  This module
provides that substrate:

- the :class:`UserDefinedAggregate` protocol
  (``initialize`` / ``iterate`` / ``terminate``), applied per cluster by
  :func:`apply_aggregate`;
- standard aggregates (FIRST, LAST, COUNT, MIN, MAX, AVG) built on it;
- :class:`PatternSearchAggregate` — the SQL-TS matcher packaged as a UDA,
  which is exactly how the paper deploys OPS inside a host DBMS.  Tuples
  stream in via ``iterate``; matches stream out of ``terminate``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.match.base import Instrumentation, Match, Matcher
from repro.pattern.compiler import CompiledPattern
from repro.resilience import Budget, Diagnostics, ResourceLimits


class UserDefinedAggregate:
    """The streaming aggregate protocol of Wang & Zaniolo [17].

    ``initialize`` resets state for a new group; ``iterate`` consumes one
    tuple and may emit early results; ``terminate`` flushes the rest.
    """

    def initialize(self) -> None:
        raise NotImplementedError

    def iterate(self, row: Mapping[str, object]) -> Iterable[object]:
        raise NotImplementedError

    def terminate(self) -> Iterable[object]:
        raise NotImplementedError


def apply_aggregate(
    aggregate: UserDefinedAggregate, rows: Iterable[Mapping[str, object]]
) -> list[object]:
    """Run one aggregate over one (already clustered/sorted) stream."""
    aggregate.initialize()
    output: list[object] = []
    for row in rows:
        output.extend(aggregate.iterate(row))
    output.extend(aggregate.terminate())
    return output


class _ColumnAggregate(UserDefinedAggregate):
    """Base for single-column aggregates emitting one value at terminate."""

    def __init__(self, column: str):
        self.column = column
        self._values: list[object] = []

    def initialize(self) -> None:
        self._values = []

    def iterate(self, row: Mapping[str, object]) -> Iterable[object]:
        if self.column not in row:
            raise ExecutionError(f"no column {self.column!r} in input row")
        self._values.append(row[self.column])
        return ()

    def terminate(self) -> Iterable[object]:
        raise NotImplementedError


class FirstAggregate(_ColumnAggregate):
    """FIRST(column): the first value in stream order."""

    def terminate(self) -> Iterable[object]:
        return [self._values[0]] if self._values else []


class LastAggregate(_ColumnAggregate):
    """LAST(column): the last value in stream order."""

    def terminate(self) -> Iterable[object]:
        return [self._values[-1]] if self._values else []


class CountAggregate(_ColumnAggregate):
    def terminate(self) -> Iterable[object]:
        return [len(self._values)]


class MinAggregate(_ColumnAggregate):
    def terminate(self) -> Iterable[object]:
        if not self._values:
            return []
        try:
            return [min(self._values)]  # type: ignore[type-var]
        except TypeError:
            raise ExecutionError(
                f"MIN({self.column}): column mixes incomparable types"
            ) from None


class MaxAggregate(_ColumnAggregate):
    def terminate(self) -> Iterable[object]:
        if not self._values:
            return []
        try:
            return [max(self._values)]  # type: ignore[type-var]
        except TypeError:
            raise ExecutionError(
                f"MAX({self.column}): column mixes incomparable types"
            ) from None


class AvgAggregate(_ColumnAggregate):
    def terminate(self) -> Iterable[object]:
        if not self._values:
            return []
        numbers = []
        for value in self._values:
            try:
                numbers.append(float(value))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"AVG({self.column}): non-numeric value {value!r}"
                ) from None
        return [sum(numbers) / len(numbers)]


class PatternSearchAggregate(UserDefinedAggregate):
    """The SQL-TS pattern search expressed as a streaming UDA.

    Tuples arrive one at a time through ``iterate`` and are buffered;
    ``terminate`` runs the configured matcher over the buffered cluster
    and emits one :class:`~repro.match.base.Match` per occurrence.  (The
    OPS shift formulas index back into the current attempt, so a bounded
    look-back buffer is required in any case; buffering the cluster keeps
    this reference implementation simple while preserving the streaming
    interface the paper describes.  For the truly incremental deployment
    use :class:`StreamingPatternAggregate`.)
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        matcher: Matcher,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
        kernels=None,
    ):
        self._pattern = pattern
        self._matcher = matcher
        self._instrumentation = instrumentation
        self._budget = budget
        # Columnar truth arrays materialized from the cluster this
        # aggregate is about to buffer (see repro.engine.columnar); only
        # valid because the executor feeds the identical rows through
        # iterate().
        self._kernels = kernels
        self._buffer: list[Mapping[str, object]] = []

    def initialize(self) -> None:
        self._buffer = []

    def iterate(self, row: Mapping[str, object]) -> Iterable[Match]:
        self._buffer.append(row)
        return ()

    def terminate(self) -> Iterable[Match]:
        if self._kernels is not None:
            return self._matcher.find_matches(
                self._buffer, self._pattern, self._instrumentation,
                budget=self._budget, kernels=self._kernels,
            )
        if self._budget is None:
            # Positional call keeps compatibility with third-party
            # matchers written against the pre-budget interface.
            return self._matcher.find_matches(
                self._buffer, self._pattern, self._instrumentation
            )
        return self._matcher.find_matches(
            self._buffer, self._pattern, self._instrumentation,
            budget=self._budget,
        )

    @property
    def buffered(self) -> Sequence[Mapping[str, object]]:
        return self._buffer


class StreamingPatternAggregate(UserDefinedAggregate):
    """Incremental SQL-TS search: matches stream OUT of ``iterate``.

    Built on :class:`~repro.match.streaming.OpsStreamMatcher`, this UDA
    emits each match the moment its last tuple arrives and keeps only a
    bounded look-back window — the deployment the paper's "user-defined
    aggregates on input streams" sentence is really about.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        limits: Optional[ResourceLimits] = None,
        diagnostics: Optional[Diagnostics] = None,
        overflow: str = "raise",
    ):
        self._pattern = pattern
        self._instrumentation = instrumentation
        self._limits = limits
        self._diagnostics = diagnostics
        self._overflow = overflow
        self._matcher: Optional["OpsStreamMatcher"] = None
        self.initialize()

    def initialize(self) -> None:
        from repro.match.streaming import OpsStreamMatcher

        self._matcher = OpsStreamMatcher(
            self._pattern,
            self._instrumentation,
            limits=self._limits,
            diagnostics=self._diagnostics,
            overflow=self._overflow,
        )

    def iterate(self, row: Mapping[str, object]) -> Iterable[Match]:
        assert self._matcher is not None
        return self._matcher.push(row)

    def terminate(self) -> Iterable[Match]:
        assert self._matcher is not None
        return self._matcher.finish()

    @property
    def buffered_rows(self) -> int:
        assert self._matcher is not None
        return self._matcher.buffered_rows
