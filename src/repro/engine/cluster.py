"""CLUSTER BY grouping and SEQUENCE BY sorting (paper Figure 1).

"Rows are grouped by their CLUSTER BY attribute(s) (not necessarily
ordered), and data in each group are sorted by their SEQUENCE BY
attribute(s)."  Clusters are yielded in first-appearance order of their
key; with no CLUSTER BY the whole table is a single cluster.

The stable re-sort is part of the language semantics, so the default
(strict) behavior is unchanged from the seed.  Under a lenient
:class:`~repro.resilience.ErrorPolicy` the grouping additionally audits
sequence-key integrity per cluster: out-of-order input is re-sorted with
a warning recorded in :class:`~repro.resilience.Diagnostics`, and
duplicate SEQUENCE BY keys — which make the match semantics
order-dependent — are warned about (``COLLECT``) or dropped after the
first occurrence with a quarantine entry (``SKIP``).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence, Union

from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.resilience import Diagnostics, ErrorPolicy


def clusters_of(
    table: Table,
    cluster_by: Sequence[str],
    sequence_by: Sequence[str],
    *,
    policy: Union[ErrorPolicy, str] = ErrorPolicy.RAISE,
    diagnostics: Optional[Diagnostics] = None,
) -> Iterator[tuple[tuple[object, ...], list[dict[str, object]]]]:
    """Yield ``(key, sorted_rows)`` per cluster.

    ``key`` is the tuple of CLUSTER BY values (empty tuple when there is
    no CLUSTER BY clause).
    """
    policy = ErrorPolicy.coerce(policy)
    for name in (*cluster_by, *sequence_by):
        if name not in table.schema:
            raise ExecutionError(
                f"table {table.name!r} has no column {name!r} "
                "(referenced by CLUSTER BY / SEQUENCE BY)"
            )
    groups: dict[tuple[object, ...], list[dict[str, object]]] = {}
    for row in table:
        key = tuple(row[name] for name in cluster_by)
        groups.setdefault(key, []).append(row)
    for key, rows in groups.items():
        if sequence_by:
            if policy.lenient:
                rows = _audit_sequence(
                    table.name, key, rows, sequence_by, policy, diagnostics
                )
            else:
                rows = sorted(rows, key=lambda row: _sort_key(row, sequence_by))
        yield key, rows


def _audit_sequence(
    table_name: str,
    key: tuple[object, ...],
    rows: list[dict[str, object]],
    sequence_by: Sequence[str],
    policy: ErrorPolicy,
    diagnostics: Optional[Diagnostics],
) -> list[dict[str, object]]:
    """Sort one cluster, reporting out-of-order and duplicate keys."""
    keys = [_sort_key(row, sequence_by) for row in rows]
    out_of_order = any(a > b for a, b in zip(keys, keys[1:]))
    ordered = sorted(zip(keys, rows), key=lambda pair: pair[0])
    label = f"cluster {key!r}" if key else "the single cluster"
    if out_of_order and diagnostics is not None:
        diagnostics.warn(
            f"table {table_name!r}, {label}: SEQUENCE BY "
            f"{tuple(sequence_by)} keys arrived out of order; "
            "stably re-sorted"
        )
    duplicates = sum(a == b for (a, _), (b, _) in zip(ordered, ordered[1:]))
    if duplicates:
        if policy is ErrorPolicy.SKIP:
            deduped: list[dict[str, object]] = []
            last_key: object = object()
            for sort_key, row in ordered:
                if sort_key == last_key:
                    if diagnostics is not None:
                        diagnostics.quarantine(
                            f"table {table_name!r}",
                            0,
                            f"{label}: duplicate SEQUENCE BY key {sort_key!r}",
                            tuple(row.values()),
                        )
                    continue
                last_key = sort_key
                deduped.append(row)
            return deduped
        if diagnostics is not None:
            diagnostics.warn(
                f"table {table_name!r}, {label}: {duplicates} duplicate "
                f"SEQUENCE BY key(s); match results depend on their "
                "relative order"
            )
    return [row for _, row in ordered]


def _sort_key(row: Mapping[str, object], sequence_by: Sequence[str]) -> tuple:
    return tuple(row[name] for name in sequence_by)
