"""CLUSTER BY grouping and SEQUENCE BY sorting (paper Figure 1).

"Rows are grouped by their CLUSTER BY attribute(s) (not necessarily
ordered), and data in each group are sorted by their SEQUENCE BY
attribute(s)."  Clusters are yielded in first-appearance order of their
key; with no CLUSTER BY the whole table is a single cluster.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.engine.table import Table
from repro.errors import ExecutionError


def clusters_of(
    table: Table,
    cluster_by: Sequence[str],
    sequence_by: Sequence[str],
) -> Iterator[tuple[tuple[object, ...], list[dict[str, object]]]]:
    """Yield ``(key, sorted_rows)`` per cluster.

    ``key`` is the tuple of CLUSTER BY values (empty tuple when there is
    no CLUSTER BY clause).
    """
    for name in (*cluster_by, *sequence_by):
        if name not in table.schema:
            raise ExecutionError(
                f"table {table.name!r} has no column {name!r} "
                "(referenced by CLUSTER BY / SEQUENCE BY)"
            )
    groups: dict[tuple[object, ...], list[dict[str, object]]] = {}
    for row in table:
        key = tuple(row[name] for name in cluster_by)
        groups.setdefault(key, []).append(row)
    for key, rows in groups.items():
        if sequence_by:
            rows = sorted(rows, key=lambda row: _sort_key(row, sequence_by))
        yield key, rows


def _sort_key(row: Mapping[str, object], sequence_by: Sequence[str]) -> tuple:
    return tuple(row[name] for name in sequence_by)
