"""Classic string-matching algorithms (paper Sections 3.1 and 8).

The paper builds OPS on Knuth–Morris–Pratt and closes by comparing KMP
against Boyer–Moore and Karp–Rabin as candidate bases for the same
generalization.  This module implements all four over plain character
strings, instrumented with a character-comparison counter so the
Section 8 comparison can be regenerated:

- :func:`naive_search`        — restart-on-mismatch;
- :func:`kmp_search`          — with :func:`kmp_failure` (the paper's
  ``next`` array, Section 3.1);
- :func:`boyer_moore_search`  — bad-character + good-suffix rules;
- :func:`karp_rabin_search`   — rolling-hash filtering with verification.

All return the 0-based start offsets of every (possibly overlapping)
occurrence and agree with each other (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TextStats:
    """Character-comparison counter (hash updates tracked separately)."""

    comparisons: int = 0
    hash_operations: int = 0


def kmp_failure(pattern: str) -> list[int]:
    """The KMP ``next`` array (1-based positions, next[0] unused).

    ``next[j]`` is the pattern position to resume at after a mismatch at
    position ``j``, per the Section 3.1 definition: the largest k < j with
    ``p_1..p_{k-1} = p_{j-k+1}..p_{j-1}`` and ``p_k != p_j``; 0 if none.
    """
    m = len(pattern)
    next_ = [0] * (m + 1)
    if m == 0:
        return next_
    # Standard failure function f[j]: length of the longest proper
    # prefix of p[:j] that is also a suffix.
    f = [0] * (m + 1)
    k = 0
    for j in range(2, m + 1):
        while k > 0 and pattern[j - 1] != pattern[k]:
            k = f[k]
        if pattern[j - 1] == pattern[k]:
            k += 1
        f[j] = k
    next_[1] = 0
    for j in range(2, m + 1):
        k = f[j - 1] + 1  # candidate resume position
        # Apply the KMP refinement: skip candidates equal to p_j.
        while k > 0 and pattern[k - 1] == pattern[j - 1]:
            k = next_[k]
        next_[j] = k
    return next_


def kmp_search(text: str, pattern: str, stats: TextStats | None = None) -> list[int]:
    """All occurrence offsets via Knuth–Morris–Pratt."""
    if not pattern:
        return list(range(len(text) + 1))
    stats = stats if stats is not None else TextStats()
    next_ = kmp_failure(pattern)
    m, n = len(pattern), len(text)
    result = []
    i = j = 1
    while i <= n:
        while j > 0:
            stats.comparisons += 1
            if text[i - 1] == pattern[j - 1]:
                break
            j = next_[j]
        i += 1
        j += 1
        if j > m:
            result.append(i - 1 - m)
            # Continue for overlapping occurrences: fall back as if the
            # next position mismatched at j = m + 1 via the failure fn.
            j = _success_resume(pattern, next_)
    return result


def _success_resume(pattern: str, next_: list[int]) -> int:
    """Pattern position to resume at after a full match (overlap-aware)."""
    m = len(pattern)
    # Longest proper prefix of the whole pattern that is also a suffix.
    k = 0
    for length in range(m - 1, 0, -1):
        if pattern[:length] == pattern[m - length :]:
            k = length
            break
    return k + 1


def naive_search(text: str, pattern: str, stats: TextStats | None = None) -> list[int]:
    """All occurrence offsets by brute force."""
    if not pattern:
        return list(range(len(text) + 1))
    stats = stats if stats is not None else TextStats()
    m, n = len(pattern), len(text)
    result = []
    for start in range(n - m + 1):
        matched = True
        for offset in range(m):
            stats.comparisons += 1
            if text[start + offset] != pattern[offset]:
                matched = False
                break
        if matched:
            result.append(start)
    return result


def _bad_character_table(pattern: str) -> dict[str, int]:
    return {ch: index for index, ch in enumerate(pattern)}


def _good_suffix_table(pattern: str) -> list[int]:
    """Good-suffix shifts via the standard border-position construction."""
    m = len(pattern)
    shift = [0] * (m + 1)
    border = [0] * (m + 1)
    i, j = m, m + 1
    border[i] = j
    while i > 0:
        while j <= m and pattern[i - 1] != pattern[j - 1]:
            if shift[j] == 0:
                shift[j] = j - i
            j = border[j]
        i -= 1
        j -= 1
        border[i] = j
    j = border[0]
    for i in range(m + 1):
        if shift[i] == 0:
            shift[i] = j
        if i == j:
            j = border[j]
    return shift


def boyer_moore_search(text: str, pattern: str, stats: TextStats | None = None) -> list[int]:
    """All occurrence offsets via Boyer–Moore (bad char + good suffix)."""
    if not pattern:
        return list(range(len(text) + 1))
    stats = stats if stats is not None else TextStats()
    m, n = len(pattern), len(text)
    bad = _bad_character_table(pattern)
    good = _good_suffix_table(pattern)
    result = []
    start = 0
    while start <= n - m:
        j = m - 1
        while j >= 0:
            stats.comparisons += 1
            if text[start + j] != pattern[j]:
                break
            j -= 1
        if j < 0:
            result.append(start)
            start += good[0]
        else:
            bad_shift = j - bad.get(text[start + j], -1)
            start += max(good[j + 1], bad_shift, 1)
    return result


def karp_rabin_search(
    text: str,
    pattern: str,
    stats: TextStats | None = None,
    base: int = 257,
    modulus: int = 1_000_000_007,
) -> list[int]:
    """All occurrence offsets via Karp–Rabin rolling hashes.

    Hash updates are counted in ``stats.hash_operations``; character
    comparisons only happen on hash hits (verification).
    """
    if not pattern:
        return list(range(len(text) + 1))
    stats = stats if stats is not None else TextStats()
    m, n = len(pattern), len(text)
    if m > n:
        return []
    pattern_hash = 0
    window_hash = 0
    high = pow(base, m - 1, modulus)
    for index in range(m):
        pattern_hash = (pattern_hash * base + ord(pattern[index])) % modulus
        window_hash = (window_hash * base + ord(text[index])) % modulus
        stats.hash_operations += 2
    result = []
    for start in range(n - m + 1):
        if window_hash == pattern_hash:
            matched = True
            for offset in range(m):
                stats.comparisons += 1
                if text[start + offset] != pattern[offset]:
                    matched = False
                    break
            if matched:
                result.append(start)
        if start < n - m:
            window_hash = (
                (window_hash - ord(text[start]) * high) * base + ord(text[start + m])
            ) % modulus
            stats.hash_operations += 1
    return result
