"""Pattern-matching runtimes over tuple sequences.

Three matchers share one interface (:func:`find_matches(rows, pattern)`):

- :mod:`repro.match.naive` — restart-on-mismatch baseline (the paper's
  comparison point);
- :mod:`repro.match.ops` — the paper-literal OPS loop for star-free
  patterns (Section 4.2.1), kept verbatim for the Figure 5 reproduction;
- :mod:`repro.match.ops_star` — the unified OPS runtime with the
  Section 5 count bookkeeping; handles star and star-free patterns alike
  (the star-free case degenerates to the Section 4 formula).

All matchers count predicate evaluations through
:class:`~repro.match.base.Instrumentation` — the paper's performance
metric — and can record the ``(i, j)`` path curve of Figure 5.

:mod:`repro.match.text` hosts the classic string matchers (naive, KMP,
Boyer–Moore, Karp–Rabin) referenced in Sections 3.1 and 8, and
:mod:`repro.match.direction` the Section 8 forward/reverse heuristic.
"""

from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation, Match, Matcher, Span
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher

__all__ = [
    "Span",
    "Match",
    "Matcher",
    "Instrumentation",
    "NaiveMatcher",
    "BacktrackingMatcher",
    "OpsMatcher",
    "OpsStarMatcher",
    "OpsStreamMatcher",
]
