"""The paper-literal OPS loop for star-free patterns (Section 4.2.1).

This matcher transcribes the paper's pseudo-code as directly as Python
allows::

    j = 1;  i = 1;
    while j <= m  and  i <= n:
        while j > 0 and not p_j(t_i):
            i = i - j + shift(j) + next(j)
            j = next(j)
        i = i + 1;  j = j + 1

extended in the obvious way to report *all* non-overlapping matches
(after a success the pattern cursor resets to 1 and scanning continues at
the current input position).  It exists alongside the unified
:class:`~repro.match.ops_star.OpsStarMatcher` for two reasons: the Figure 5
reproduction wants the exact control flow of the paper, and the test
suite cross-checks both implementations against each other.

Raises :class:`~repro.errors.PlanningError` when handed a star pattern —
use :class:`OpsStarMatcher` for those.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import PlanningError
from repro.match.base import Instrumentation, Match, Span
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import EvalContext
from repro.resilience import Budget


class OpsMatcher:
    """Optimized Pattern Search, star-free form (paper Section 4.2.1)."""

    #: Accepts per-cluster truth arrays (see :mod:`repro.engine.columnar`).
    supports_kernels = True

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
        kernels=None,
    ) -> list[Match]:
        if pattern.has_star:
            raise PlanningError("OpsMatcher handles star-free patterns only")
        predicates = [element.predicate for element in pattern.spec]
        evaluators = pattern.evaluators
        names = pattern.spec.names
        shift = pattern.shift_next.shift
        next_ = pattern.shift_next.next_
        m = pattern.m
        n = len(rows)
        matches: list[Match] = []

        # The paper indexes from 1; we keep j 1-based and translate i to
        # 0-based at the single point of evaluation.
        record = instrumentation.record if instrumentation is not None else None
        record_skip = (
            instrumentation.record_skip if instrumentation is not None else None
        )
        truths = kernels.truth if kernels is not None else None
        i = 1
        j = 1
        while j <= m and i <= n:
            if budget is not None and budget.step():
                break
            while j > 0:
                # Inlined test_element: record, then truth-array lookup,
                # compiled closure, or interpreted — in that order.  The
                # truth byte equals the evaluator's verdict at (i-1, j),
                # so the shift/next control flow is untouched (and the
                # per-test bindings dict is never needed on that path).
                if record is not None:
                    record(i - 1, j)
                truth = truths[j - 1] if truths is not None else None
                if truth is not None:
                    satisfied = truth[i - 1]
                else:
                    evaluator = evaluators[j - 1]
                    if evaluator is not None:
                        satisfied = evaluator(rows, i - 1, _bindings(names, i, j))
                    else:
                        satisfied = predicates[j - 1].test(
                            EvalContext(rows, i - 1, _bindings(names, i, j))
                        )
                if satisfied:
                    break
                if record_skip is not None:
                    # The attempt origin advances by exactly shift(j)
                    # input positions — the work a restart matcher would
                    # redo (mismatch path only, never per test).
                    record_skip(shift[j])
                i = i - j + shift[j] + next_[j]
                j = next_[j]
                if i > n:
                    break
                if budget is not None and budget.step():
                    return matches
            if i > n:
                break
            i += 1
            j += 1
            if j > m:
                start = i - m - 1  # 0-based: the match covers t_{i-m} .. t_{i-1}
                spans = tuple(Span(start + offset, start + offset) for offset in range(m))
                matches.append(Match(start, i - 2, spans, names))
                j = 1  # resume scanning right after the match (non-overlapping)
                if budget is not None and budget.add_match():
                    break
        return matches


def _bindings(names: tuple[str, ...], i: int, j: int) -> dict[str, tuple[int, int]]:
    """Spans of the elements already matched in the current attempt.

    For a star-free pattern element t (< j) is bound to the single input
    position (i - j + t), 1-based; converted here to 0-based.
    """
    return {
        names[t - 1]: (i - j + t - 1, i - j + t - 1)
        for t in range(1, j)
    }
