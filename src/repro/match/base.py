"""Shared matcher types: spans, matches, instrumentation, the interface.

The paper measures performance as "the number of times that an element of
input is tested against a pattern element" (Section 7);
:class:`Instrumentation` counts exactly those events, and can additionally
record the ``(i, j)`` coordinates of every test to reproduce the path
curves of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Protocol, Sequence

from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import ElementPredicate, EvalContext
from repro.resilience import Budget


@dataclass(frozen=True)
class Span:
    """An inclusive range of input positions (0-based) bound to one element."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"empty span {self.start}..{self.end}")

    @property
    def length(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class Match:
    """One pattern occurrence: overall extent plus per-element spans."""

    start: int
    end: int
    spans: tuple[Span, ...]
    names: tuple[str, ...]

    def bindings(self) -> dict[str, Span]:
        """Pattern-variable name -> matched span."""
        return dict(zip(self.names, self.spans))

    def span_of(self, name: str) -> Span:
        try:
            return self.spans[self.names.index(name)]
        except ValueError:
            raise KeyError(f"no pattern variable named {name!r}") from None


class Instrumentation:
    """Counts predicate tests; optionally records the (i, j) path curve.

    ``trace`` entries are 1-based ``(i, j)`` pairs to match the paper's
    Figure 5 axes.

    ``skips``/``skip_distance`` measure the paper's optimization itself:
    every time a matcher applies its shift/next tables after a mismatch,
    it records how many input positions the attempt origin advanced —
    the work the naive restart strategy would have redone.  These are
    plain int adds on the (cold) mismatch path, so they are always on.

    ``tests_by_element`` is the opt-in detail mode the flight recorder
    uses (:meth:`enable_detail`): per pattern position j, how many tests
    it absorbed — which is what lets a query profile attribute predicate
    work to individual pattern elements (and to the band-fused ones).
    It costs one dict update per test, so it stays off outside traced
    runs; the aggregate ``tests`` counter is untouched either way.
    """

    __slots__ = ("tests", "trace", "skips", "skip_distance", "tests_by_element")

    def __init__(self, record_trace: bool = False):
        self.tests = 0
        self.trace: Optional[list[tuple[int, int]]] = [] if record_trace else None
        self.skips = 0
        self.skip_distance = 0
        self.tests_by_element: Optional[dict[int, int]] = None

    def enable_detail(self) -> None:
        """Start attributing tests to pattern positions (profile mode)."""
        if self.tests_by_element is None:
            self.tests_by_element = {}

    def record(self, input_index: int, pattern_position: int) -> None:
        """Note one test of input position (0-based) against element j (1-based)."""
        self.tests += 1
        if self.trace is not None:
            self.trace.append((input_index + 1, pattern_position))
        if self.tests_by_element is not None:
            self.tests_by_element[pattern_position] = (
                self.tests_by_element.get(pattern_position, 0) + 1
            )

    def record_skip(self, distance: int) -> None:
        """Note one shift/next application advancing the attempt origin
        by ``distance`` input positions (0 = re-anchor in place)."""
        self.skips += 1
        self.skip_distance += distance

    def __repr__(self) -> str:
        traced = f", trace[{len(self.trace)}]" if self.trace is not None else ""
        skipped = f", skips={self.skips}" if self.skips else ""
        return f"Instrumentation(tests={self.tests}{skipped}{traced})"


class Matcher(Protocol):
    """The common matcher interface.

    ``budget`` is optional resource-limit tracking
    (:class:`~repro.resilience.Budget`): implementations consult it
    periodically inside their scan loops and, once it trips, stop and
    return the matches found so far (partial results — the trip reason is
    recorded on the budget's diagnostics, never raised from here).
    """

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
    ) -> list[Match]:
        """All left-maximal, non-overlapping matches, in input order."""
        ...


def test_element(
    predicate: ElementPredicate,
    rows: Sequence[Mapping[str, object]],
    index: int,
    bindings: Mapping[str, tuple[int, int]],
    pattern_position: int,
    instrumentation: Optional[Instrumentation],
    evaluator: Optional[Callable] = None,
) -> bool:
    """Evaluate one element predicate on one input tuple, instrumented.

    ``evaluator`` is the element's compiled fast path (an entry of
    :attr:`~repro.pattern.compiler.CompiledPattern.evaluators`); when it
    is None the interpreted ``predicate.test`` runs instead.  Both paths
    are observationally identical, and the instrumentation count is
    recorded before dispatch so the paper's metric is path-independent.
    """
    if instrumentation is not None:
        instrumentation.record(index, pattern_position)
    if evaluator is not None:
        return evaluator(rows, index, bindings)
    return predicate.test(EvalContext(rows, index, bindings))
