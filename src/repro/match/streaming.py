"""Push-based streaming OPS with a bounded look-back window.

The paper deploys SQL-TS "via user-defined aggregates ... on input
streams"; a real stream cannot be buffered whole.  OPS makes bounded
buffering possible: after a mismatch the scan never revisits anything
before the current attempt's origin, so rows older than

    attempt_start + (most negative navigation offset in the pattern)

can be discarded.  :class:`OpsStreamMatcher` exposes that as a push API:

    matcher = OpsStreamMatcher(compiled_pattern)
    for row in stream:
        for match in matcher.push(row):
            ...            # emitted as soon as they complete
    trailing = matcher.finish()

Matches carry absolute input positions, identical to the batch
:class:`~repro.match.ops_star.OpsStarMatcher` (differential-tested).

Trimming requires navigation offsets to be statically bounded; patterns
with residual (opaque) conditions keep the full history instead, since a
residual may navigate arbitrarily through its bindings.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from repro.match.base import Instrumentation, Match
from repro.match.ops_star import _Run
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import (
    ComparisonCondition,
    Condition,
    OrCondition,
    StringEqualityCondition,
)
from repro.pattern.spec import PatternSpec


def pattern_offsets(spec: PatternSpec) -> tuple[int, int, bool]:
    """(most negative offset, most positive offset, has_opaque_conditions).

    Offsets come from the fixed-offset conditions; any condition whose
    navigation cannot be bounded statically sets the opaque flag.
    """
    low = 0
    high = 0
    opaque = False

    def visit(condition: Condition) -> None:
        nonlocal low, high, opaque
        if isinstance(condition, ComparisonCondition):
            for term in (condition.left, condition.right):
                if term.attr is not None:
                    low = min(low, term.attr.offset)
                    high = max(high, term.attr.offset)
        elif isinstance(condition, StringEqualityCondition):
            low = min(low, condition.attr.offset)
            high = max(high, condition.attr.offset)
        elif isinstance(condition, OrCondition):
            for branch in condition.branches:
                for leaf in branch:
                    visit(leaf)
        else:
            opaque = True

    for element in spec:
        for condition in element.predicate.conditions:
            visit(condition)
    return low, high, opaque


class _Window:
    """A list with absolute indexing whose head can be trimmed away.

    Reading a trimmed position is a bug in the trimming logic, so it
    raises ``RuntimeError`` (deliberately not ``LookupError``, which the
    condition evaluators treat as benign off-end navigation).
    """

    __slots__ = ("_rows", "_base")

    def __init__(self) -> None:
        self._rows: list[Mapping[str, object]] = []
        self._base = 0

    def append(self, row: Mapping[str, object]) -> None:
        self._rows.append(row)

    def __len__(self) -> int:
        return self._base + len(self._rows)

    def __getitem__(self, index: int) -> Mapping[str, object]:
        relative = index - self._base
        if relative < 0:
            raise RuntimeError(
                f"streaming window read at trimmed position {index} "
                f"(window starts at {self._base})"
            )
        return self._rows[relative]

    def __iter__(self) -> Iterator[Mapping[str, object]]:
        return iter(self._rows)

    def trim_before(self, index: int) -> None:
        """Forget rows strictly before ``index``."""
        drop = index - self._base
        if drop > 0:
            del self._rows[:drop]
            self._base = index

    @property
    def buffered(self) -> int:
        return len(self._rows)


class OpsStreamMatcher:
    """Incremental OPS: push tuples, collect matches as they complete."""

    def __init__(
        self,
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        trim: bool = True,
    ):
        self._pattern = pattern
        self._window = _Window()
        self._run = _Run(self._window, pattern, instrumentation)
        low, high, opaque = pattern_offsets(pattern.spec)
        self._lookback = -low
        self._lookahead = high
        self._trim = trim and not opaque
        self._emitted = 0
        self._finished = False

    def push(self, row: Mapping[str, object]) -> list[Match]:
        """Feed one tuple; return matches completed by it."""
        if self._finished:
            raise RuntimeError("push() after finish()")
        self._window.append(row)
        self._run.process(finished=False, lookahead=self._lookahead)
        if self._trim:
            self._window.trim_before(self._run.attempt_start - self._lookback)
        return self._drain()

    def finish(self) -> list[Match]:
        """Signal end of stream; return any trailing matches."""
        if not self._finished:
            self._finished = True
            self._run.process(finished=True)
        return self._drain()

    def _drain(self) -> list[Match]:
        fresh = self._run.matches[self._emitted :]
        self._emitted = len(self._run.matches)
        return fresh

    @property
    def matches(self) -> list[Match]:
        """All matches emitted so far."""
        return list(self._run.matches)

    @property
    def buffered_rows(self) -> int:
        """Current look-back window size (for tests and monitoring)."""
        return self._window.buffered
