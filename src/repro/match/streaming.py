"""Push-based streaming OPS with a bounded look-back window.

The paper deploys SQL-TS "via user-defined aggregates ... on input
streams"; a real stream cannot be buffered whole.  OPS makes bounded
buffering possible: after a mismatch the scan never revisits anything
before the current attempt's origin, so rows older than

    attempt_start + (most negative navigation offset in the pattern)

can be discarded.  :class:`OpsStreamMatcher` exposes that as a push API:

    matcher = OpsStreamMatcher(compiled_pattern)
    for row in stream:
        for match in matcher.push(row):
            ...            # emitted as soon as they complete
    trailing = matcher.finish()

Matches carry absolute input positions, identical to the batch
:class:`~repro.match.ops_star.OpsStarMatcher` (differential-tested).

Trimming requires navigation offsets to be statically bounded; patterns
with residual (opaque) conditions keep the full history instead, since a
residual may navigate arbitrarily through its bindings.  For those
opaque patterns the buffer would grow without bound on a long stream, so
:class:`OpsStreamMatcher` accepts
:class:`~repro.resilience.ResourceLimits` with a hard
``max_stream_buffer`` cap and an explicit overflow behavior: ``"raise"``
(default — a :class:`~repro.errors.LimitExceeded` escapes to the caller)
or ``"restart"`` (abandon the in-flight attempt, drop the oldest rows,
and keep matching; matches spanning the dropped region are lost, which
is recorded in :class:`~repro.resilience.Diagnostics`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.errors import LimitExceeded, StreamStateError
from repro.match.base import Instrumentation, Match
from repro.match.ops_star import _Run

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery import MatcherSnapshot
from repro.pattern.compiler import CompiledPattern
from repro.resilience import Budget, Diagnostics, ResourceLimits
from repro.pattern.predicates import (
    ComparisonCondition,
    Condition,
    OrCondition,
    StringEqualityCondition,
)
from repro.pattern.spec import PatternSpec


def pattern_offsets(spec: PatternSpec) -> tuple[int, int, bool]:
    """(most negative offset, most positive offset, has_opaque_conditions).

    Offsets come from the fixed-offset conditions; any condition whose
    navigation cannot be bounded statically sets the opaque flag.
    """
    low = 0
    high = 0
    opaque = False

    def visit(condition: Condition) -> None:
        nonlocal low, high, opaque
        if isinstance(condition, ComparisonCondition):
            for term in (condition.left, condition.right):
                if term.attr is not None:
                    low = min(low, term.attr.offset)
                    high = max(high, term.attr.offset)
        elif isinstance(condition, StringEqualityCondition):
            low = min(low, condition.attr.offset)
            high = max(high, condition.attr.offset)
        elif isinstance(condition, OrCondition):
            for branch in condition.branches:
                for leaf in branch:
                    visit(leaf)
        else:
            opaque = True

    for element in spec:
        for condition in element.predicate.conditions:
            visit(condition)
    return low, high, opaque


class _Window:
    """A list with absolute indexing whose head can be trimmed away.

    Reading a trimmed position is a bug in the trimming logic, so it
    raises ``RuntimeError`` (deliberately not ``LookupError``, which the
    condition evaluators treat as benign off-end navigation).
    """

    __slots__ = ("_rows", "_base")

    def __init__(self) -> None:
        self._rows: list[Mapping[str, object]] = []
        self._base = 0

    def append(self, row: Mapping[str, object]) -> None:
        self._rows.append(row)

    def __len__(self) -> int:
        return self._base + len(self._rows)

    def __getitem__(self, index: int) -> Mapping[str, object]:
        relative = index - self._base
        if relative < 0:
            raise RuntimeError(
                f"streaming window read at trimmed position {index} "
                f"(window starts at {self._base})"
            )
        return self._rows[relative]

    def __iter__(self) -> Iterator[Mapping[str, object]]:
        return iter(self._rows)

    def trim_before(self, index: int) -> None:
        """Forget rows strictly before ``index``."""
        drop = index - self._base
        if drop > 0:
            del self._rows[:drop]
            self._base = index

    @property
    def buffered(self) -> int:
        return len(self._rows)

    @property
    def base(self) -> int:
        """Absolute index of the oldest retained row."""
        return self._base


class OpsStreamMatcher:
    """Incremental OPS: push tuples, collect matches as they complete."""

    def __init__(
        self,
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        trim: bool = True,
        limits: Optional[ResourceLimits] = None,
        diagnostics: Optional[Diagnostics] = None,
        overflow: str = "raise",
        extra_lookback: int = 0,
    ):
        if overflow not in ("raise", "restart"):
            raise ValueError(
                f"overflow must be 'raise' or 'restart', got {overflow!r}"
            )
        if extra_lookback < 0:
            raise ValueError(
                f"extra_lookback must be non-negative, got {extra_lookback}"
            )
        self._pattern = pattern
        self._window = _Window()
        self.diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        self._limits = limits if limits is not None else ResourceLimits()
        self._budget = (
            Budget(self._limits, self.diagnostics)
            if self._limits.bounded
            else None
        )
        self._overflow = overflow
        self._overflowed = False
        self._run = _Run(self._window, pattern, instrumentation, self._budget)
        low, high, opaque = pattern_offsets(pattern.spec)
        self._lookback = -low
        self._lookahead = high
        self._extra_lookback = extra_lookback
        self._trim = trim and not opaque
        self._emitted = 0
        self._high_water = -1
        self._finished = False
        self._fingerprint: Optional[str] = None

    def push(self, row: Mapping[str, object]) -> list[Match]:
        """Feed one tuple; return matches completed by it.

        Once a budget limit trips (deadline, match cap) the matcher goes
        quiescent: rows are still accepted but no further matching work
        is done, so the producing loop can drain cheaply.  Check
        :attr:`tripped` to stop early.

        Rows belonging to the matches *returned by this call* are
        retained in the window until the next ``push()``, so a caller may
        evaluate SELECT expressions (navigating up to ``extra_lookback``
        rows before each match) against :attr:`window` before feeding the
        next tuple.
        """
        if self._finished:
            raise StreamStateError(
                f"push() after finish(): the stream was already concluded "
                f"after {len(self._window)} row(s) with "
                f"{self._emitted} match(es) emitted"
            )
        if self._budget is not None and self._budget.tripped is not None:
            return []
        self._window.append(row)
        self._run.process(finished=False, lookahead=self._lookahead)
        retain = self._lookback + self._extra_lookback
        live = self._run.attempt_start - self._lookback
        if self._trim:
            # Keep the rows of matches completed by this push alive until
            # the caller has seen them (they are trimmed next push).
            keep = self._run.attempt_start - retain
            fresh = self._run.matches[self._emitted :]
            if fresh:
                keep = min(keep, fresh[0].start - retain)
            self._window.trim_before(keep)
        cap = self._limits.max_stream_buffer
        if cap is not None:
            # The cap bounds the *live* look-back the matcher itself still
            # needs; rows retained only for caller-side projection of
            # just-completed matches do not count against it.
            buffered = (
                len(self._window) - live if self._trim else self._window.buffered
            )
            if buffered > cap:
                self._handle_overflow(cap)
        return self._drain()

    def _handle_overflow(self, cap: int) -> None:
        """The look-back window outgrew ``max_stream_buffer``.

        ``"raise"``: record the limit and raise :class:`LimitExceeded` —
        the caller decides whether to abandon or restart the stream.
        ``"restart"``: abandon the current attempt, forget everything
        before the newest ``cap`` rows, and restart matching at the
        oldest retained row; any match that would have spanned the
        dropped region is lost (recorded once in diagnostics).
        """
        reason = (
            f"max_stream_buffer ({cap}) exceeded: "
            f"{self._window.buffered} rows buffered"
        )
        if self._overflow == "raise":
            self.diagnostics.record_limit(reason)
            raise LimitExceeded(reason, reason="max_stream_buffer")
        keep_from = len(self._window) - cap
        self._run._reset_attempt(keep_from)
        self._window.trim_before(keep_from)
        self.diagnostics.record_dropped_region()
        if not self._overflowed:
            self._overflowed = True
            self.diagnostics.record_limit(reason)
            self.diagnostics.warn(
                "stream buffer overflowed; the in-flight attempt was "
                "abandoned and matches spanning the dropped rows are lost"
            )

    def finish(self) -> list[Match]:
        """Signal end of stream; return any trailing matches."""
        if not self._finished:
            self._finished = True
            self._run.process(finished=True)
        return self._drain()

    def _drain(self) -> list[Match]:
        fresh = self._run.matches[self._emitted :]
        self._emitted = len(self._run.matches)
        if fresh:
            self._high_water = max(self._high_water, fresh[-1].end)
        return fresh

    @property
    def matches(self) -> list[Match]:
        """All matches emitted so far."""
        return list(self._run.matches)

    @property
    def buffered_rows(self) -> int:
        """Current look-back window size (for tests and monitoring)."""
        return self._window.buffered

    @property
    def tripped(self) -> Optional[str]:
        """The budget trip reason, or None while within limits."""
        return self._budget.tripped if self._budget is not None else None

    @property
    def window(self) -> _Window:
        """The live look-back window (absolute indexing)."""
        return self._window

    @property
    def emitted_high_water(self) -> int:
        """End position of the latest emitted match, or -1 if none."""
        return self._high_water

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has concluded this stream."""
        return self._finished

    @property
    def fingerprint(self) -> str:
        """Stable hash of the compiled pattern + matcher configuration.

        Snapshots are keyed by this value so state can never be restored
        against a different query or an incompatible matcher setup.
        """
        if self._fingerprint is None:
            from repro.recovery import pattern_fingerprint

            self._fingerprint = pattern_fingerprint(
                self._pattern,
                trim=self._trim,
                overflow=self._overflow,
                max_stream_buffer=self._limits.max_stream_buffer,
                extra_lookback=self._extra_lookback,
            )
        return self._fingerprint

    def snapshot(self) -> "MatcherSnapshot":
        """Capture the full matcher state as a serializable snapshot."""
        from repro.recovery import snapshot_matcher

        return snapshot_matcher(self)

    @classmethod
    def restore(
        cls,
        snapshot: "MatcherSnapshot",
        pattern: CompiledPattern,
        *,
        instrumentation: Optional[Instrumentation] = None,
        trim: bool = True,
        limits: Optional[ResourceLimits] = None,
        diagnostics: Optional[Diagnostics] = None,
        overflow: str = "raise",
        extra_lookback: int = 0,
    ) -> "OpsStreamMatcher":
        """Rebuild a matcher from :meth:`snapshot` output.

        The live ``pattern`` and configuration must reproduce the
        snapshot's fingerprint; otherwise
        :class:`~repro.errors.RecoveryError` is raised.
        """
        from repro.recovery import restore_matcher

        return restore_matcher(
            snapshot,
            pattern,
            instrumentation=instrumentation,
            trim=trim,
            limits=limits,
            diagnostics=diagnostics,
            overflow=overflow,
            extra_lookback=extra_lookback,
        )
