"""Forward/reverse search and the direction heuristic (paper Section 8).

"Clearly, it is possible to search the input stream in either the forward
or the reverse direction.  Therefore, we can optimize searches in both
directions, and then select the better. ... a large average value for
shift and next is a good indication of effective optimization.  Specially
a larger value of shift has more effect on the speedup."

This module implements that machinery:

- :func:`reverse_pattern` — the pattern read right-to-left: element order
  reversed and every fixed sequence offset negated (``previous`` and
  ``next`` swap roles);
- :class:`ReverseMatcher` — runs any matcher over the reversed input with
  the reversed pattern and maps spans back to forward coordinates;
- :func:`direction_scores` / :func:`choose_direction` — the paper's
  average-shift/next heuristic, with shift weighted above next.

Semantics note: reverse scanning resolves *overlapping* candidate matches
right-to-left, so on inputs with overlapping occurrences the reverse
match set may legitimately differ from the forward (left-maximal) one.
The heuristic is therefore a *cost* tool; an engine that must preserve
left-maximality can still use the reverse direction to locate match
regions and re-anchor, or restrict the choice to patterns whose matches
provably cannot overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.errors import PlanningError
from repro.match.base import Instrumentation, Match, Matcher, Span
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import CompiledPattern, compile_pattern
from repro.pattern.predicates import (
    Attr,
    ComparisonCondition,
    Condition,
    ElementPredicate,
    LinearTerm,
    StringEqualityCondition,
)
from repro.pattern.spec import PatternElement, PatternSpec


def _reverse_attr(attr: Attr | None) -> Attr | None:
    return None if attr is None else Attr(attr.name, -attr.offset)


def _reverse_term(term: LinearTerm) -> LinearTerm:
    return LinearTerm(term.coefficient, _reverse_attr(term.attr), term.constant)


def _reverse_condition(condition: Condition) -> Condition:
    if isinstance(condition, ComparisonCondition):
        return ComparisonCondition(
            _reverse_term(condition.left), condition.op, _reverse_term(condition.right)
        )
    if isinstance(condition, StringEqualityCondition):
        reversed_attr = _reverse_attr(condition.attr)
        assert reversed_attr is not None
        return StringEqualityCondition(reversed_attr, condition.op, condition.value)
    raise PlanningError(
        "reverse optimization requires offset-expressible conditions; "
        f"cannot reverse {condition!r}"
    )


def reverse_pattern(spec: PatternSpec) -> PatternSpec:
    """The pattern as seen when scanning the input right-to-left."""
    reversed_elements = []
    for element in reversed(spec.elements):
        conditions = tuple(
            _reverse_condition(condition)
            for condition in element.predicate.conditions
        )
        predicate = ElementPredicate(
            conditions, label=element.predicate.label + "_rev"
        )
        reversed_elements.append(
            PatternElement(element.name, predicate, star=element.star)
        )
    return PatternSpec(reversed_elements)


@dataclass(frozen=True)
class DirectionScore:
    """The Section 8 heuristic score for one scan direction."""

    mean_shift: float
    mean_next: float

    @property
    def value(self) -> float:
        # Shift dominates ("a larger value of shift has more effect").
        return self.mean_shift + 0.5 * self.mean_next


def direction_scores(
    forward: CompiledPattern, backward: CompiledPattern
) -> tuple[DirectionScore, DirectionScore]:
    return _score(forward), _score(backward)


def _score(pattern: CompiledPattern) -> DirectionScore:
    m = pattern.m
    shifts = [pattern.shift(j) for j in range(1, m + 1)]
    nexts = [pattern.next(j) for j in range(1, m + 1)]
    return DirectionScore(sum(shifts) / m, sum(nexts) / m)


def choose_direction(spec: PatternSpec) -> tuple[str, CompiledPattern]:
    """Compile both directions and pick the better-scoring one.

    Returns ``("forward", plan)`` or ``("backward", plan)``; ties go to
    forward (left-maximal semantics preserved for free).
    """
    forward = compile_pattern(spec)
    try:
        backward = compile_pattern(reverse_pattern(spec))
    except PlanningError:
        return "forward", forward
    fwd, bwd = direction_scores(forward, backward)
    if bwd.value > fwd.value:
        return "backward", backward
    return "forward", forward


class ReverseMatcher:
    """Scan right-to-left with a reversed pattern; report forward spans."""

    def __init__(self, inner: Optional[Matcher] = None):
        self._inner = inner if inner is not None else OpsStarMatcher()

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
    ) -> list[Match]:
        reversed_plan = compile_pattern(reverse_pattern(pattern.spec))
        reversed_rows = list(reversed(rows))
        raw = self._inner.find_matches(reversed_rows, reversed_plan, instrumentation)
        n = len(rows)
        converted = []
        for match in raw:
            spans = tuple(
                Span(n - 1 - span.end, n - 1 - span.start)
                for span in reversed(match.spans)
            )
            names = tuple(reversed(match.names))
            converted.append(
                Match(n - 1 - match.end, n - 1 - match.start, spans, names)
            )
        converted.sort(key=lambda match: match.start)
        return converted
