"""The naive restart-on-mismatch matcher — the paper's baseline.

For every candidate start position the naive matcher attempts a full
greedy match; on any failure it abandons the attempt and restarts one
position to the right.  Star elements consume a *maximal* run of one or
more satisfying tuples (SQL-TS semantics: the tuple that ends a star run
is then tested against the next pattern element, without re-consuming
input).  Matches are left-maximal and, by default, non-overlapping: after
a success the scan resumes just past the match.

This is deliberately the same match semantics as the OPS runtimes — the
whole point of the reproduction is that OPS returns *identical matches
with far fewer predicate tests* — and the differential test-suite holds
the matchers to byte-identical outputs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.match.base import Instrumentation, Match, Span
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import EvalContext
from repro.resilience import Budget


class NaiveMatcher:
    """Baseline matcher: restart at start+1 after every failed attempt.

    ``overlapping=True`` restarts at start+1 even after a *successful*
    match, yielding all (possibly overlapping) occurrences; the default
    reproduces the paper's left-maximal non-overlapping semantics.
    """

    #: Accepts per-cluster truth arrays (see :mod:`repro.engine.columnar`).
    supports_kernels = True

    def __init__(self, overlapping: bool = False):
        self._overlapping = overlapping

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
        kernels=None,
    ) -> list[Match]:
        matches: list[Match] = []
        n = len(rows)
        truths = kernels.truth if kernels is not None else None
        fast = instrumentation is None and budget is None
        if fast and truths is not None and kernels.lowered == len(truths):
            # Every element lowered: the scan never needs a row, a
            # binding, or an evaluator — run it entirely on the truth
            # arrays and the candidate-start bitset.
            return self._find_matches_columnar(pattern, kernels, n)
        # A zero truth byte for the first element proves no attempt can
        # start there, so the uninstrumented scan jumps straight to the
        # next candidate start with one C-level find.  Instrumented or
        # budgeted scans take the stepwise path: each rejected start
        # must be charged exactly as the row path charges it.
        first_truth = truths[0] if truths is not None else None
        start = 0
        while start < n:
            if budget is not None and budget.step():
                break
            if fast and first_truth is not None and not first_truth[start]:
                next_start = first_truth.find(1, start + 1)
                if next_start < 0:
                    break
                start = next_start
            match = self._attempt(
                rows, pattern, start, instrumentation, budget, truths
            )
            if match is None:
                start += 1
            else:
                matches.append(match)
                start = start + 1 if self._overlapping else match.end + 1
                if budget is not None and budget.add_match():
                    break
        return matches

    def _find_matches_columnar(
        self, pattern: CompiledPattern, kernels, n: int
    ) -> list[Match]:
        """Uninstrumented scan over fully-lowered truth arrays.

        Byte-identical to the stepwise scan: the candidate bitset only
        skips starts whose attempt provably fails inside the pattern's
        leading prefix, and each surviving attempt replays the exact
        greedy/maximal-run semantics of :meth:`_attempt` on truth bytes.
        Failed attempts allocate nothing.
        """
        spec = pattern.spec
        stars = tuple(element.star for element in spec)
        steps = tuple(zip(kernels.truth, stars))
        candidates = kernels.start_candidates(stars)
        names = spec.names
        overlapping = self._overlapping
        matches: list[Match] = []
        start = 0
        while start < n:
            if not candidates[start]:
                start = candidates.find(1, start + 1)
                if start < 0:
                    break
            i = start
            bounds = []
            for truth, star in steps:
                if i >= n or not truth[i]:
                    bounds = None
                    break
                first = i
                i += 1
                if star:
                    stop = truth.find(0, i)
                    i = n if stop < 0 else stop
                bounds.append((first, i - 1))
            if bounds is None:
                start += 1
            else:
                matches.append(
                    Match(
                        start,
                        i - 1,
                        tuple(Span(a, b) for a, b in bounds),
                        names,
                    )
                )
                start = start + 1 if overlapping else i
        return matches

    def _attempt(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        start: int,
        instrumentation: Optional[Instrumentation],
        budget: Optional[Budget] = None,
        truths=None,
    ) -> Optional[Match]:
        n = len(rows)
        i = start
        spans: list[Span] = []
        bindings: dict[str, tuple[int, int]] = {}
        evaluators = pattern.evaluators
        record = instrumentation.record if instrumentation is not None else None
        for j, element in enumerate(pattern.spec, start=1):
            evaluator = evaluators[j - 1]
            truth = truths[j - 1] if truths is not None else None
            if i >= n:
                return None
            # Inlined test_element: record, then truth-array lookup,
            # compiled closure, or interpreted — in that order.  The
            # truth byte equals what the evaluator would return at this
            # position, so control flow is unchanged.
            if record is not None:
                record(i, j)
            if truth is not None:
                satisfied = truth[i]
            elif evaluator is not None:
                satisfied = evaluator(rows, i, bindings)
            else:
                satisfied = element.predicate.test(EvalContext(rows, i, bindings))
            if not satisfied:
                return None
            first = i
            i += 1
            if element.star:
                # Greedy: extend the run while tuples keep satisfying the
                # predicate.  The failing test is charged here; the tuple
                # that ends the run is re-tested by the next element.
                if record is None and budget is None and truth is not None:
                    # Vectorized run scan: the run ends at the first zero
                    # truth byte (or end of input) — identical to
                    # stepping, minus the per-tuple dispatch.
                    stop = truth.find(0, i)
                    i = n if stop < 0 else stop
                elif record is None and budget is None and evaluator is not None:
                    # Specialized uninstrumented compiled run — the
                    # tightest loop the fast path allows.
                    while i < n and evaluator(rows, i, bindings):
                        i += 1
                else:
                    while i < n:
                        if record is not None:
                            record(i, j)
                        if truth is not None:
                            satisfied = truth[i]
                        elif evaluator is not None:
                            satisfied = evaluator(rows, i, bindings)
                        else:
                            satisfied = element.predicate.test(
                                EvalContext(rows, i, bindings)
                            )
                        if not satisfied:
                            break
                        i += 1
                        if budget is not None and budget.step():
                            return None
            span = Span(first, i - 1)
            spans.append(span)
            bindings[element.name] = (span.start, span.end)
        return Match(start, i - 1, tuple(spans), pattern.spec.names)
