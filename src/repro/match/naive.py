"""The naive restart-on-mismatch matcher — the paper's baseline.

For every candidate start position the naive matcher attempts a full
greedy match; on any failure it abandons the attempt and restarts one
position to the right.  Star elements consume a *maximal* run of one or
more satisfying tuples (SQL-TS semantics: the tuple that ends a star run
is then tested against the next pattern element, without re-consuming
input).  Matches are left-maximal and, by default, non-overlapping: after
a success the scan resumes just past the match.

This is deliberately the same match semantics as the OPS runtimes — the
whole point of the reproduction is that OPS returns *identical matches
with far fewer predicate tests* — and the differential test-suite holds
the matchers to byte-identical outputs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.match.base import Instrumentation, Match, Span
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import EvalContext
from repro.resilience import Budget


class NaiveMatcher:
    """Baseline matcher: restart at start+1 after every failed attempt.

    ``overlapping=True`` restarts at start+1 even after a *successful*
    match, yielding all (possibly overlapping) occurrences; the default
    reproduces the paper's left-maximal non-overlapping semantics.
    """

    def __init__(self, overlapping: bool = False):
        self._overlapping = overlapping

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
    ) -> list[Match]:
        matches: list[Match] = []
        n = len(rows)
        start = 0
        while start < n:
            if budget is not None and budget.step():
                break
            match = self._attempt(rows, pattern, start, instrumentation, budget)
            if match is None:
                start += 1
            else:
                matches.append(match)
                start = start + 1 if self._overlapping else match.end + 1
                if budget is not None and budget.add_match():
                    break
        return matches

    def _attempt(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        start: int,
        instrumentation: Optional[Instrumentation],
        budget: Optional[Budget] = None,
    ) -> Optional[Match]:
        n = len(rows)
        i = start
        spans: list[Span] = []
        bindings: dict[str, tuple[int, int]] = {}
        evaluators = pattern.evaluators
        record = instrumentation.record if instrumentation is not None else None
        for j, element in enumerate(pattern.spec, start=1):
            evaluator = evaluators[j - 1]
            if i >= n:
                return None
            # Inlined test_element: record, then compiled or interpreted.
            if record is not None:
                record(i, j)
            if evaluator is not None:
                satisfied = evaluator(rows, i, bindings)
            else:
                satisfied = element.predicate.test(EvalContext(rows, i, bindings))
            if not satisfied:
                return None
            first = i
            i += 1
            if element.star:
                # Greedy: extend the run while tuples keep satisfying the
                # predicate.  The failing test is charged here; the tuple
                # that ends the run is re-tested by the next element.
                if record is None and budget is None and evaluator is not None:
                    # Specialized uninstrumented compiled run — the
                    # tightest loop the fast path allows.
                    while i < n and evaluator(rows, i, bindings):
                        i += 1
                else:
                    while i < n:
                        if record is not None:
                            record(i, j)
                        if evaluator is not None:
                            satisfied = evaluator(rows, i, bindings)
                        else:
                            satisfied = element.predicate.test(
                                EvalContext(rows, i, bindings)
                            )
                        if not satisfied:
                            break
                        i += 1
                        if budget is not None and budget.step():
                            return None
            span = Span(first, i - 1)
            spans.append(span)
            bindings[element.name] = (span.start, span.end)
        return Match(start, i - 1, tuple(spans), pattern.spec.names)
