"""The unified OPS runtime with star support (paper Section 5).

The runtime keeps, per match attempt, the cumulative count array of the
paper: ``counts[t]`` is the number of input tuples consumed by pattern
elements 1..t of the current attempt (``counts[0] = 0``).  For star-free
patterns ``counts[t] = t`` and every formula below collapses to the
Section 4 arithmetic, so this matcher subsumes
:class:`~repro.match.ops.OpsMatcher` (the test suite checks they agree).

Transition rules (Section 5, "our search algorithm is generalized"):

- input satisfies the element: consume it; a plain element then advances
  the pattern cursor, a star element stays (greedy);
- input fails a star element that has already consumed at least one tuple
  in this attempt: the star run ends; advance the pattern cursor and
  re-test the *same* input against the next element;
- input fails otherwise: a genuine mismatch at position ``j`` — apply the
  compiled ``shift``/``next``:

    * ``next(j) = 0`` (i.e. ``shift(j) = j``): no shorter shift can work
      and ``phi[j,1] = 0`` proves the failed tuple cannot start a match
      either; restart the attempt at the following input position;
    * otherwise the attempt restarts ``shift(j)`` *elements* later, i.e.
      ``counts[shift(j)]`` input positions later, elements
      ``1 .. next(j)-1`` of the new attempt are inherited as verified
      (their consumption rebased from the old alignment), and checking
      resumes at element ``next(j)`` with the input cursor at
      ``attempt_start + counts[shift(j) + next(j) - 1]`` — the paper's
      ``i - count(j-1) + count(shift(j)+next(j)-1)`` expressed from the
      attempt origin.  The star-free special case ``next = j - shift + 1``
      additionally counts the failed tuple itself as verified
      (``phi = 1`` proved it satisfies element ``j - shift``), which is
      what makes the formula land on ``i + 1``.

After a success the attempt restarts fresh immediately after the match
(left-maximal, non-overlapping semantics, identical to the naive
baseline's).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.match.base import Instrumentation, Match, Span
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import EvalContext
from repro.resilience import Budget


class OpsStarMatcher:
    """Optimized Pattern Search with the Section 5 count bookkeeping."""

    #: Accepts per-cluster truth arrays (see :mod:`repro.engine.columnar`).
    supports_kernels = True

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
        kernels=None,
    ) -> list[Match]:
        runtime = _Run(rows, pattern, instrumentation, budget, kernels=kernels)
        return runtime.scan()


class _Run:
    """Mutable state of one left-to-right scan."""

    def __init__(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation],
        budget: Optional[Budget] = None,
        kernels=None,
    ):
        self.rows = rows
        self.pattern = pattern
        self.instrumentation = instrumentation
        # Hot-path accessors hoisted once per scan: the bound record
        # method (or None) and the per-element compiled evaluators.
        self.record = instrumentation.record if instrumentation is not None else None
        self.budget = budget
        self.elements = pattern.spec.elements
        self.evaluators = pattern.evaluators
        # Per-element truth arrays from the columnar backend; entry
        # ``j - 1`` replaces the evaluator call when present (see
        # :mod:`repro.engine.columnar`).
        self.truths = kernels.truth if kernels is not None else None
        # Candidate attempt-start bitset (prefix conjunction of truth
        # arrays); a zero byte proves a fresh attempt at that position
        # dies inside the leading prefix, so the uninstrumented scan may
        # hop straight to the next one byte.
        self.start_candidates = (
            kernels.start_candidates(tuple(e.star for e in self.elements))
            if kernels is not None
            else None
        )
        self.names = pattern.spec.names
        self.shift = pattern.shift_next.shift
        self.next_ = pattern.shift_next.next_
        self.m = pattern.m
        # Residual (non-symbolic) conditions may reference the *binding*
        # of a starred element; an opaque predicate without the flag is
        # treated as residual — the conservative direction.
        self.leading_star = bool(self.elements) and self.elements[0].star
        self.residuals = tuple(
            getattr(element.predicate, "has_residual", True)
            for element in self.elements
        )
        self.matches: list[Match] = []
        self._reset_attempt(0)

    def capture_state(self) -> dict[str, object]:
        """The in-flight attempt as plain data (streaming snapshots).

        Covers everything :meth:`process` mutates except ``matches``,
        which the snapshotting layer owns (it knows which matches were
        already emitted downstream).  The result contains only built-in
        types, so it serializes with any codec.
        """
        return {
            "attempt_start": self.attempt_start,
            "i": self.i,
            "j": self.j,
            "current_consumed": self.current_consumed,
            "counts": list(self.counts),
            "spans": [(span.start, span.end) for span in self.spans],
            "bindings": {name: tuple(span) for name, span in self.bindings.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate :meth:`capture_state` output into this run."""
        self.attempt_start = int(state["attempt_start"])
        self.i = int(state["i"])
        self.j = int(state["j"])
        self.current_consumed = int(state["current_consumed"])
        self.counts = [int(count) for count in state["counts"]]
        self.spans = [Span(start, end) for start, end in state["spans"]]
        self.bindings = {
            name: (int(span[0]), int(span[1]))
            for name, span in dict(state["bindings"]).items()
        }

    def _reset_attempt(self, start: int) -> None:
        self.attempt_start = start
        self.i = start
        self.j = 1
        self.current_consumed = 0
        self.counts = [0] * (self.m + 1)
        self.spans: list[Span] = []
        self.bindings: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------

    def scan(self) -> list[Match]:
        self.process(finished=True)
        return self.matches

    def process(self, finished: bool, lookahead: int = 0) -> None:
        """Advance the scan as far as the available input allows.

        ``finished=False`` (the streaming case) suspends instead of
        concluding end-of-input: a predicate may peek ``lookahead`` rows
        ahead (``.next`` navigation), so the current tuple is only tested
        once ``i + lookahead`` rows exist — or the stream has finished,
        at which point off-end navigation legitimately evaluates False.
        """
        # Scan-invariant state hoisted into locals: every name below is a
        # plain fast-local inside the loop instead of a ``self`` attribute
        # read per iteration.  ``i``/``j``/``bindings`` mutate through the
        # helper methods, so they are re-read after every helper call.
        rows = self.rows
        elements = self.elements
        evaluators = self.evaluators
        record = self.record
        budget = self.budget
        truths = self.truths
        # Star runs may be advanced with one C-level find only when no
        # observer counts the per-tuple tests: instrumentation and
        # budgets charge each consumed tuple, and a streaming scan
        # (finished=False) must suspend tuple-by-tuple at the window
        # edge.
        fast_star = record is None and budget is None and finished
        candidates = self.start_candidates if fast_star else None
        m = self.m
        available = len(rows)
        while True:
            if budget is not None and budget.step():
                return
            j = self.j
            if j > m:
                self._record_match()
                continue
            element = elements[j - 1]
            i = self.i
            if (
                candidates is not None
                and j == 1
                and self.current_consumed == 0
                and i < available
                and not candidates[i]
            ):
                # A fresh attempt here fails inside the prefix; a fail
                # at element 1 restarts one position later (shift(1)=1),
                # so hopping to the next candidate start replays exactly
                # that restart chain, minus the per-position dispatch.
                next_start = candidates.find(1, i + 1)
                self._reset_attempt(
                    available if next_start < 0 else next_start
                )
                continue
            if i >= available or (not finished and i + lookahead >= available):
                if finished and i >= available:
                    # End of input: only a pending final star run can
                    # still complete the pattern.
                    if (
                        element.star
                        and self.current_consumed > 0
                        and j == m
                    ):
                        self._complete_element()
                        self._record_match()
                return
            # Inlined test_element: record, then dispatch to the truth
            # array (columnar), the compiled evaluator, or the
            # interpreted predicate.
            if record is not None:
                record(i, j)
            truth = truths[j - 1] if truths is not None else None
            if truth is not None:
                satisfied = truth[i]
            else:
                evaluator = evaluators[j - 1]
                if evaluator is not None:
                    satisfied = evaluator(rows, i, self.bindings)
                else:
                    satisfied = element.predicate.test(
                        EvalContext(rows, i, self.bindings)
                    )
            if satisfied:
                if element.star and fast_star and truth is not None:
                    # Consume the whole remaining run at once: it ends
                    # at the first zero truth byte (or end of input),
                    # exactly where tuple-by-tuple stepping would stop.
                    stop = truth.find(0, i + 1)
                    if stop < 0 or stop > available:
                        stop = available
                    self.i = stop
                    self.current_consumed += stop - i
                    continue
                self.i = i + 1
                self.current_consumed += 1
                if not element.star:
                    self._complete_element()
            elif element.star and self.current_consumed > 0:
                # The star run ends here; the same input tuple is re-tested
                # against the next element on the following iteration.
                self._complete_element()
            else:
                self._mismatch()

    # ------------------------------------------------------------------

    def _complete_element(self) -> None:
        j = self.j
        self.counts[j] = self.counts[j - 1] + self.current_consumed
        span = Span(
            self.attempt_start + self.counts[j - 1],
            self.attempt_start + self.counts[j] - 1,
        )
        self.spans.append(span)
        self.bindings[self.names[j - 1]] = (span.start, span.end)
        self.j += 1
        self.current_consumed = 0

    def _record_match(self) -> None:
        end = self.attempt_start + self.counts[self.m] - 1
        self.matches.append(
            Match(self.attempt_start, end, tuple(self.spans), self.names)
        )
        self._reset_attempt(end + 1)
        if self.budget is not None:
            self.budget.add_match()

    def _mismatch(self) -> None:
        """Apply the compiled shift/next after a genuine failure at j."""
        j = self.j
        # The shift/next tables reason element-to-element, so they can
        # clear *alignments*, never the input positions interior to a
        # star run.  For runs of elements >= 2 that is still sound: the
        # failure graph's start nodes quantify over every tuple the old
        # element consumed, and residual-bearing predicates keep those
        # nodes U-valued (un-skippable).  The one hole is the *leading*
        # star's run: no graph node represents restarting inside it —
        # skipping its interior is justified only because such a restart
        # replays the exact same alignment, and that argument breaks
        # when the failed element's condition is a residual (it may
        # reference the star's binding, which a shorter run re-binds).
        # In that case fall back to the naive restart one position in.
        if (
            j >= 2
            and self.leading_star
            and self.counts[1] >= 2
            and self.residuals[j - 1]
        ):
            if self.instrumentation is not None:
                self.instrumentation.record_skip(1)
            self._reset_attempt(self.attempt_start + 1)
            return
        nx = self.next_[j]
        if nx == 0:
            # shift(j) = j: the failed tuple provably cannot start a match.
            if self.instrumentation is not None:
                self.instrumentation.record_skip(
                    self.i + 1 - self.attempt_start
                )
            self._reset_attempt(self.i + 1)
            return
        sh = self.shift[j]
        consumed_by_shift = self.counts[sh]
        if self.instrumentation is not None:
            self.instrumentation.record_skip(consumed_by_shift)
        new_start = self.attempt_start + consumed_by_shift
        new_counts = [0] * (self.m + 1)
        new_spans: list[Span] = []
        new_bindings: dict[str, tuple[int, int]] = {}
        for t in range(1, nx):
            boundary = sh + t
            if boundary <= j - 1:
                new_counts[t] = self.counts[boundary] - consumed_by_shift
            else:
                # boundary == j (star-free next = j - shift + 1 case):
                # phi = 1 verified the failed tuple against element j-shift,
                # so it counts as consumed by the new attempt.
                new_counts[t] = self.counts[j - 1] - consumed_by_shift + 1
            span = Span(
                new_start + new_counts[t - 1],
                new_start + new_counts[t] - 1,
            )
            new_spans.append(span)
            new_bindings[self.names[t - 1]] = (span.start, span.end)
        self.attempt_start = new_start
        self.i = new_start + new_counts[nx - 1]
        self.j = nx
        self.current_consumed = 0
        self.counts = new_counts
        self.spans = new_spans
        self.bindings = new_bindings
