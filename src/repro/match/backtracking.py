"""Backtracking evaluation of the declarative star semantics.

The paper formalizes star semantics "using recursive Datalog programs"
[11]: a starred element matches *some* run of one or more satisfying
tuples.  A naive evaluator of that declarative reading must *search* over
run boundaries — this matcher does so depth-first, trying the maximal run
first (so its answers coincide with the greedy matchers whenever the
greedy commit succeeds) and re-testing everything downstream of each
alternative boundary.

Two uses:

- it is the fairest stand-in for the paper's "naive execution" on star
  queries: the greedy :class:`~repro.match.naive.NaiveMatcher` already
  embeds the maximal-run *commit* (a star's failing tuple moves the
  pattern forward, never back), which is itself an optimization the
  declarative semantics does not grant for free;
- on patterns whose adjacent predicates are not mutually exclusive, it
  finds matches the greedy commit abandons, making the semantic gap
  between "maximal-run" and "some-run" star interpretations observable
  (tests pin both behaviours down).

Cost: where a greedy attempt is linear in the run lengths, a failed
backtracking attempt multiplies each star run length by the cost of
everything after it — the super-linear blow-up the OPS speedups in
Section 7 are measured against.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.match.base import Instrumentation, Match, Span, test_element
from repro.pattern.compiler import CompiledPattern
from repro.resilience import Budget


class BacktrackingMatcher:
    """Depth-first search over star-run boundaries, maximal-first."""

    #: Accepts per-cluster truth arrays (see :mod:`repro.engine.columnar`).
    supports_kernels = True

    def find_matches(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        instrumentation: Optional[Instrumentation] = None,
        budget: Optional[Budget] = None,
        kernels=None,
    ) -> list[Match]:
        matches: list[Match] = []
        n = len(rows)
        # Elements with a truth array swap in a positional lookup for
        # their evaluator; every test still flows through test_element,
        # so instrumentation and budget accounting are untouched.
        evaluators = pattern.evaluators
        if kernels is not None:
            evaluators = tuple(
                _truth_evaluator(truth) if truth is not None else evaluator
                for truth, evaluator in zip(kernels.truth, evaluators)
            )
        start = 0
        while start < n:
            if budget is not None and budget.step():
                break
            spans = self._search(
                rows, pattern, evaluators, 1, start, {}, instrumentation, budget
            )
            if spans is None:
                start += 1
            else:
                match = Match(start, spans[-1].end, tuple(spans), pattern.spec.names)
                matches.append(match)
                start = match.end + 1
                if budget is not None and budget.add_match():
                    break
        return matches

    def _search(
        self,
        rows: Sequence[Mapping[str, object]],
        pattern: CompiledPattern,
        evaluators,
        j: int,
        i: int,
        bindings: dict[str, tuple[int, int]],
        instrumentation: Optional[Instrumentation],
        budget: Optional[Budget] = None,
    ) -> Optional[list[Span]]:
        """Match elements j..m starting at input i; None on failure."""
        if budget is not None and budget.step():
            # Abandoning the search mid-attempt is safe: the caller
            # returns whatever complete matches were already recorded.
            return None
        if j > pattern.m:
            return []
        element = pattern.spec.elements[j - 1]
        evaluator = evaluators[j - 1]
        n = len(rows)
        if i >= n:
            return None
        if not test_element(
            element.predicate, rows, i, bindings, j, instrumentation, evaluator
        ):
            return None
        if not element.star:
            extended = dict(bindings)
            extended[element.name] = (i, i)
            rest = self._search(
                rows, pattern, evaluators, j + 1, i + 1, extended,
                instrumentation, budget
            )
            return None if rest is None else [Span(i, i), *rest]
        # Starred: discover the maximal satisfying run, then try every
        # boundary from longest to shortest, re-searching downstream.
        end = i
        while end + 1 < n and test_element(
            element.predicate, rows, end + 1, bindings, j, instrumentation, evaluator
        ):
            end += 1
        for last in range(end, i - 1, -1):
            extended = dict(bindings)
            extended[element.name] = (i, last)
            rest = self._search(
                rows, pattern, evaluators, j + 1, last + 1, extended,
                instrumentation, budget
            )
            if rest is not None:
                return [Span(i, last), *rest]
            if budget is not None and budget.tripped is not None:
                return None
        return None


def _truth_evaluator(truth: bytes):
    """An evaluator-shaped view of one element's truth array."""

    def evaluate(rows, index, bindings):
        return bool(truth[index])

    return evaluate
