"""shift/next computation for star-free patterns (paper Section 4.2).

From theta and phi we derive the matrix ``S`` describing whether the
pattern, known satisfied up to (and excluding) position ``j``, can still
be satisfied after being shifted right by ``k`` positions:

    S[j, k] = theta[k+1, 1] AND theta[k+2, 2] AND ... AND theta[j-1, j-k-1]
              AND phi[j, j-k]                                (1 <= k < j)

using Kleene three-valued conjunction.  Then

    shift(j) = j                     if every S[j, k] = 0
             = min { k : S[j,k] != 0 }  otherwise

    next(j)  = 0                     if shift(j) = j
             = j - shift(j) + 1      if S[j, shift(j)] = 1
             = min( { t : 1 <= t < j - shift(j), theta[shift(j)+t, t] = U }
                    union { j - shift(j) }  if phi[j, j-shift(j)] = U )
                                     otherwise.

The third case's set is provably non-empty: ``S[j, shift(j)] = U`` means at
least one conjunct is ``U``, and each conjunct contributes its index to the
set.  We assert that instead of silently falling back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, UNKNOWN


def build_s_matrix(theta: TriangularMatrix, phi: TriangularMatrix) -> TriangularMatrix:
    """The shifted-pattern compatibility matrix S (defined for j > k)."""
    if theta.size != phi.size:
        raise PlanningError("theta and phi must have the same size")
    m = theta.size
    s = TriangularMatrix(m, include_diagonal=False)
    for j in range(2, m + 1):
        for k in range(1, j):
            value = phi[j, j - k]
            # theta[k+i, i] for i = 1 .. j-k-1 (equivalently rows k+1..j-1).
            for i in range(1, j - k):
                value = value & theta[k + i, i]
                if value is FALSE:
                    break
            s[j, k] = value
    return s


@dataclass(frozen=True)
class ShiftNext:
    """The compiled shift/next arrays, 1-indexed by pattern position.

    ``shift[0]`` and ``next_[0]`` are unused padding so ``shift[j]`` reads
    exactly like the paper's ``shift(j)``.
    """

    shift: tuple[int, ...]
    next_: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shift) != len(self.next_):
            raise PlanningError("shift and next arrays must have equal length")

    @property
    def m(self) -> int:
        return len(self.shift) - 1


def compute_shift_next(
    theta: TriangularMatrix, phi: TriangularMatrix
) -> tuple[ShiftNext, TriangularMatrix]:
    """Compute (shift, next) for a star-free pattern; returns S as well."""
    s = build_s_matrix(theta, phi)
    m = theta.size
    shift = [0] * (m + 1)
    next_ = [0] * (m + 1)
    for j in range(1, m + 1):
        shift[j] = _shift_of(s, j)
        next_[j] = _next_of(theta, phi, s, j, shift[j])
    return ShiftNext(tuple(shift), tuple(next_)), s


def _shift_of(s: TriangularMatrix, j: int) -> int:
    for k in range(1, j):
        if s[j, k] is not FALSE:
            return k
    return j


def _next_of(
    theta: TriangularMatrix,
    phi: TriangularMatrix,
    s: TriangularMatrix,
    j: int,
    shift: int,
) -> int:
    if shift == j:
        return 0
    if s[j, shift] is TRUE:
        return j - shift + 1
    candidates = [
        t for t in range(1, j - shift) if theta[shift + t, t] is UNKNOWN
    ]
    if phi[j, j - shift] is UNKNOWN:
        candidates.append(j - shift)
    if not candidates:
        raise PlanningError(
            f"S[{j},{shift}] is U but no U conjunct found; matrices inconsistent"
        )
    return min(candidates)
