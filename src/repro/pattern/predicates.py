"""Element predicates: runtime conditions coupled with symbolic forms.

Every pattern element carries an :class:`ElementPredicate` — a conjunction
of runtime-evaluable :class:`Condition` objects.  Each condition *may* also
expose a symbolic form (GSW atoms over canonical variables); the OPS
compile-time analysis reasons over those, and any condition without a
symbolic form (a *residual*, e.g. a cross-element reference such as
``Z.previous.price < 0.5 * X.price``) conservatively downgrades the
implication matrices toward ``U``.

Canonical variables
-------------------
When two pattern elements are evaluated against the *same* input tuple
(which is exactly the situation the theta/phi matrices describe), their
attribute references resolve identically, so we name them canonically:

- ``price@0``  — attribute of the current tuple,
- ``price@-1`` — attribute of the previous tuple in the sequence,
- ``price@0/price@-1`` — the Section 6 ratio variable, produced when a
  comparison has the multiplicative form ``X op C * Y`` and the attribute
  is declared positive (see :class:`AttributeDomains`).

Boundary semantics: a condition that references ``previous`` (or ``next``)
evaluates to False on the first (last) tuple of a cluster, where the
neighbour does not exist.  The matrices stay sound because they are only
ever applied to inputs that already satisfied some element at position
>= 2, i.e. inputs whose ``previous`` exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.constraints.atoms import AnyAtom, Op, atom, cat_atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.dnf import Disjunction
from repro.constraints.terms import Domain, Variable, ratio_variable
from repro.errors import ConstraintError


# ----------------------------------------------------------------------
# Attribute references and linear terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Attr:
    """A reference to an attribute of the current tuple or a neighbour.

    ``offset`` is 0 for the current tuple, -1 for ``previous``, +1 for
    ``next``.
    """

    name: str
    offset: int = 0

    @property
    def previous(self) -> "Attr":
        return Attr(self.name, self.offset - 1)

    @property
    def next(self) -> "Attr":
        return Attr(self.name, self.offset + 1)

    def variable(self) -> Variable:
        return Variable(f"{self.name}@{self.offset}")

    def categorical_variable(self) -> Variable:
        return Variable(f"{self.name}@{self.offset}", Domain.CATEGORICAL)

    def __mul__(self, factor: float) -> "LinearTerm":
        return LinearTerm(float(factor), self, 0.0)

    __rmul__ = __mul__

    def __add__(self, constant: float) -> "LinearTerm":
        return LinearTerm(1.0, self, float(constant))

    def __sub__(self, constant: float) -> "LinearTerm":
        return LinearTerm(1.0, self, -float(constant))

    def __str__(self) -> str:
        suffix = {0: "", -1: ".previous", 1: ".next"}.get(self.offset, f".offset({self.offset})")
        return f"t{suffix}.{self.name}"


def col(name: str) -> Attr:
    """Shorthand for an attribute of the current tuple."""
    return Attr(name, 0)


@dataclass(frozen=True)
class LinearTerm:
    """``coefficient * attr + constant`` — one side of a comparison.

    ``attr`` may be None, in which case the term is the bare constant.
    """

    coefficient: float
    attr: Optional[Attr]
    constant: float

    @classmethod
    def of(cls, value: Union["LinearTerm", Attr, float, int]) -> "LinearTerm":
        if isinstance(value, LinearTerm):
            return value
        if isinstance(value, Attr):
            return cls(1.0, value, 0.0)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(0.0, None, float(value))
        raise ConstraintError(f"cannot interpret comparison operand: {value!r}")

    def value(self, resolve: Callable[[Attr], float]) -> float:
        base = 0.0 if self.attr is None else self.coefficient * resolve(self.attr)
        return base + self.constant

    def __add__(self, constant: float) -> "LinearTerm":
        return LinearTerm(self.coefficient, self.attr, self.constant + float(constant))

    def __sub__(self, constant: float) -> "LinearTerm":
        return LinearTerm(self.coefficient, self.attr, self.constant - float(constant))

    def __mul__(self, factor: float) -> "LinearTerm":
        return LinearTerm(
            self.coefficient * float(factor), self.attr, self.constant * float(factor)
        )

    __rmul__ = __mul__

    def __str__(self) -> str:
        if self.attr is None:
            return f"{self.constant:g}"
        parts = [] if self.coefficient == 1.0 else [f"{self.coefficient:g}*"]
        parts.append(str(self.attr))
        if self.constant:
            parts.append(f" {'+' if self.constant > 0 else '-'} {abs(self.constant):g}")
        return "".join(parts)


# ----------------------------------------------------------------------
# Evaluation context
# ----------------------------------------------------------------------


class EvalContext:
    """Everything a condition may consult while testing one input tuple.

    ``rows`` is the sorted cluster; ``index`` the 0-based position of the
    tuple under test.  ``bindings`` maps pattern-element names to
    ``(start, end)`` input spans of the current match attempt — residual
    (cross-element) conditions use them; plain conditions ignore them.
    """

    __slots__ = ("rows", "index", "bindings")

    def __init__(
        self,
        rows: Sequence[Mapping[str, object]],
        index: int,
        bindings: Optional[Mapping[str, tuple[int, int]]] = None,
    ):
        self.rows = rows
        self.index = index
        self.bindings = bindings if bindings is not None else {}

    def attr_value(self, attr: Attr) -> object:
        """Resolve an attribute reference; raises LookupError off either end."""
        position = self.index + attr.offset
        if position < 0 or position >= len(self.rows):
            raise LookupError(f"no tuple at sequence offset {attr.offset}")
        return self.rows[position][attr.name]


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------


class Condition:
    """A single runtime-evaluable conjunct of an element predicate."""

    def evaluate(self, ctx: EvalContext) -> bool:
        raise NotImplementedError

    def symbolic_atoms(self, domains: "AttributeDomains") -> Optional[list[AnyAtom]]:
        """The condition as GSW atoms over canonical variables, or None.

        None means the condition is a *residual*: the runtime still
        enforces it, but the implication analysis must treat the element
        conservatively.
        """
        return None


@dataclass(frozen=True)
class ComparisonCondition(Condition):
    """``left op right`` where each side is a linear term over one attribute."""

    left: LinearTerm
    op: Op
    right: LinearTerm

    def evaluate(self, ctx: EvalContext) -> bool:
        try:
            left = self.left.value(ctx.attr_value)  # type: ignore[arg-type]
            right = self.right.value(ctx.attr_value)  # type: ignore[arg-type]
        except LookupError:
            return False
        return self.op.holds(left, right)

    def symbolic_atoms(self, domains: "AttributeDomains") -> Optional[list[AnyAtom]]:
        left, op, right = self.left, self.op, self.right
        # Put the (unique) attribute on the left for single-attribute forms.
        if left.attr is None and right.attr is None:
            # Ground comparison: fold into a tautology or contradiction atom.
            dummy = Variable("__ground__")
            if op.holds(left.constant, right.constant):
                return [atom(dummy, "<=", dummy, 0.0)]
            return [atom(dummy, "<", dummy, 0.0)]
        if left.attr is None:
            left, right = right, left
            op = op.flipped
        x = left.attr
        assert x is not None
        if right.attr is None:
            # a*X + b op c  ->  X op (c - b) / a  (flip on negative a)
            if left.coefficient == 0:
                return None
            bound = (right.constant - left.constant) / left.coefficient
            effective = op if left.coefficient > 0 else op.flipped
            return [atom(x.variable(), effective, bound)]
        y = right.attr
        if left.coefficient == right.coefficient and left.coefficient != 0:
            # a*X + b1 op a*Y + b2  ->  X op Y + (b2 - b1)/a  (flip on a < 0)
            offset = (right.constant - left.constant) / left.coefficient
            effective = op if left.coefficient > 0 else op.flipped
            return [atom(x.variable(), effective, y.variable(), offset)]
        if left.constant == 0 and right.constant == 0 and left.coefficient != 0:
            # a*X op b*Y  ->  X op (b/a)*Y: the Section 6 multiplicative form.
            ratio = right.coefficient / left.coefficient
            effective = op if left.coefficient > 0 else op.flipped
            if ratio > 0 and domains.is_positive(x.name) and domains.is_positive(y.name):
                return [atom(ratio_variable(x.variable(), y.variable()), effective, ratio)]
            return None
        return None

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class StringEqualityCondition(Condition):
    """``attr = 'constant'`` or ``attr != 'constant'`` on a string column."""

    attr: Attr
    op: Op
    value: str

    def __post_init__(self) -> None:
        if self.op not in (Op.EQ, Op.NE):
            raise ConstraintError("string conditions support = and != only")

    def evaluate(self, ctx: EvalContext) -> bool:
        try:
            actual = ctx.attr_value(self.attr)
        except LookupError:
            return False
        if self.op is Op.EQ:
            return actual == self.value
        return actual != self.value

    def symbolic_atoms(self, domains: "AttributeDomains") -> Optional[list[AnyAtom]]:
        return [cat_atom(self.attr.categorical_variable(), self.op, self.value)]

    def __str__(self) -> str:
        return f"{self.attr} {self.op.value} '{self.value}'"


class OrCondition(Condition):
    """A disjunction of condition branches (Section 8 extension).

    Each branch is itself a conjunction of conditions.  The condition
    holds when *some* branch holds.  If every branch is fully
    symbolizable the whole disjunct contributes a multi-disjunct DNF to
    the element's symbolic predicate (see
    :meth:`ElementPredicate.__init__`), letting the theta/phi analysis
    reason about OR patterns through :mod:`repro.constraints.dnf`;
    otherwise it degrades to a residual like any other opaque condition.
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Iterable[Iterable[Condition]]):
        self.branches: tuple[tuple[Condition, ...], ...] = tuple(
            tuple(branch) for branch in branches
        )
        if not self.branches:
            raise ConstraintError("OrCondition needs at least one branch")

    def evaluate(self, ctx: EvalContext) -> bool:
        return any(
            all(condition.evaluate(ctx) for condition in branch)
            for branch in self.branches
        )

    def symbolic_branches(
        self, domains: "AttributeDomains"
    ) -> Optional[list[list[AnyAtom]]]:
        """Per-branch atom lists, or None if any branch is opaque."""
        result: list[list[AnyAtom]] = []
        for branch in self.branches:
            atoms: list[AnyAtom] = []
            for condition in branch:
                extracted = condition.symbolic_atoms(domains)
                if extracted is None:
                    return None
                atoms.extend(extracted)
            result.append(atoms)
        return result

    def __str__(self) -> str:
        rendered = [
            "(" + " AND ".join(str(c) for c in branch) + ")" for branch in self.branches
        ]
        return "(" + " OR ".join(rendered) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrCondition):
            return NotImplemented
        return self.branches == other.branches

    def __hash__(self) -> int:
        return hash(self.branches)


@dataclass(frozen=True)
class ResidualCondition(Condition):
    """An opaque condition evaluated by a callable (cross-element references).

    The SQL-TS layer wraps binding-dependent WHERE conjuncts in these; the
    matrix analysis sees them only through ``has_residual``.

    ``fast``, when present, is a pre-lowered form of the same condition
    with the direct ``(rows, index, bindings) -> bool`` signature used by
    :mod:`repro.pattern.codegen`; builders that can compile their
    condition (the SQL-TS analyzer, via :mod:`repro.sqlts.codegen`)
    attach it so the compiled fast path covers residuals too.  It must be
    observationally identical to ``func`` and is therefore excluded from
    equality.
    """

    func: Callable[[EvalContext], bool]
    description: str = "<residual>"
    fast: Optional[
        Callable[[Sequence[Mapping[str, object]], int, Mapping[str, tuple[int, int]]], bool]
    ] = field(default=None, compare=False)

    def evaluate(self, ctx: EvalContext) -> bool:
        return bool(self.func(ctx))

    def __str__(self) -> str:
        return self.description


# ----------------------------------------------------------------------
# Attribute domains (positivity declarations for the Section 6 rewrite)
# ----------------------------------------------------------------------


class AttributeDomains:
    """Which attributes are known positive (enables the ratio rewrite)."""

    __slots__ = ("_positive",)

    def __init__(self, positive: Iterable[str] = ()):
        self._positive = frozenset(positive)

    def is_positive(self, attribute: str) -> bool:
        return attribute in self._positive

    def fingerprint(self) -> tuple[str, ...]:
        """Hashable identity for plan-cache keys: two domains with the
        same fingerprint compile every query identically."""
        return tuple(sorted(self._positive))

    @classmethod
    def none(cls) -> "AttributeDomains":
        return cls()

    @classmethod
    def prices(cls) -> "AttributeDomains":
        """The domain declaration used throughout the paper's examples."""
        return cls({"price"})


# ----------------------------------------------------------------------
# Element predicates
# ----------------------------------------------------------------------


class ElementPredicate:
    """The conjunction of conditions attached to one pattern element.

    ``symbolic`` is the DNF of the analyzable sub-conjunction (a single
    disjunct unless the Section 8 disjunction extension is used);
    ``has_residual`` records whether any condition escaped symbolization,
    in which case the analysis must not claim the element fully implied.
    """

    __slots__ = ("conditions", "symbolic", "has_residual", "label")

    def __init__(
        self,
        conditions: Iterable[Condition],
        domains: Optional[AttributeDomains] = None,
        label: str = "",
    ):
        self.conditions: tuple[Condition, ...] = tuple(conditions)
        self.label = label
        domains = domains if domains is not None else AttributeDomains.none()
        atoms: list[AnyAtom] = []
        disjunctive: list[list[list[AnyAtom]]] = []
        residual = False
        for condition in self.conditions:
            if isinstance(condition, OrCondition):
                branches = condition.symbolic_branches(domains)
                if branches is None:
                    residual = True
                else:
                    disjunctive.append(branches)
                continue
            extracted = condition.symbolic_atoms(domains)
            if extracted is None:
                residual = True
            else:
                atoms.extend(extracted)
        # Distribute: (common atoms) AND (OR ...) AND (OR ...) -> DNF.
        symbolic = Disjunction.of(Conjunction(atoms))
        for branches in disjunctive:
            symbolic = symbolic & Disjunction(
                [Conjunction(branch) for branch in branches]
            )
        self.symbolic = symbolic
        self.has_residual = residual

    def test(self, ctx: EvalContext) -> bool:
        """Evaluate the full predicate on one input tuple."""
        return all(condition.evaluate(ctx) for condition in self.conditions)

    def satisfiable(self) -> bool:
        """Is the symbolic part consistent?  (False means the element can
        never match — useful to reject impossible queries early.)"""
        return self.symbolic.satisfiable()

    def is_tautology(self) -> bool:
        """Provably always-true (requires no residuals)."""
        return not self.has_residual and self.symbolic.is_tautology()

    def __repr__(self) -> str:
        name = self.label or "p"
        body = " AND ".join(str(c) for c in self.conditions) or "TRUE"
        return f"{name}({body})"


def comparison(
    left: Union[LinearTerm, Attr, float, int],
    op: Union[Op, str],
    right: Union[LinearTerm, Attr, float, int],
) -> ComparisonCondition:
    """Build a comparison condition from flexible operand spellings."""
    if isinstance(op, str):
        op = Op(op)
    return ComparisonCondition(LinearTerm.of(left), op, LinearTerm.of(right))


def predicate(
    *conditions: Condition,
    domains: Optional[AttributeDomains] = None,
    label: str = "",
) -> ElementPredicate:
    """Build an :class:`ElementPredicate` from conditions."""
    return ElementPredicate(conditions, domains=domains, label=label)


def true_predicate(label: str = "") -> ElementPredicate:
    """The always-true predicate (an unconstrained pattern variable)."""
    return ElementPredicate((), label=label)
