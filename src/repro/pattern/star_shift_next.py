"""shift/next for star patterns (paper Section 5.1).

Given the failure graph ``G_P^j``:

- ``sigma(j)`` is the set of shifts ``s`` such that the node
  ``(s+1, 1)`` exists and has a path to the last row of ``G_P^j``:
  the pattern shifted by ``s`` can still succeed along some alignment.

      shift(j) = min(sigma(j))            if sigma(j) is non-empty
               = j - 1                    if sigma(j) empty, phi[j,1] != 0
               = j                        otherwise

- ``next(j)`` is read off a walk from node ``(shift(j)+1, 1)``: while the
  current node is *deterministic* — it has value 1, exactly one outgoing
  arc, and that arc's end-node has value 1 — follow the arc.  The first
  non-deterministic node's column is ``next(j)``; reaching the last row
  yields ``next(j) = j - shift(j)``.

  We tighten the paper's walk in two ways, both of which can only shorten
  ``next`` (extra re-checks), never lengthen it (skipped checks):

  1. the *current* node's value must be 1 before its column is skipped,
     guarding the corner case of a U-valued start node with a single
     1-successor;
  2. the single arc must be the **diagonal** one.  The runtime's input
     re-positioning formula ``i - count(j-1) + count(shift+next-1)``
     (Section 5) silently assumes that new element ``t`` inherits exactly
     the input consumed by old element ``shift+t`` — an element-to-element
     alignment that only diagonal moves preserve.  A single non-diagonal
     arc (possible when a sibling target node is 0-valued) would let the
     verified region end mid-star, where that count arithmetic no longer
     describes the alignment.  Restricting the walk to diagonal arcs keeps
     the formula exact; differential tests against the naive matcher
     confirm equivalence.

Failures at ``j = 1`` have no graph; they use ``shift(1) = 1``,
``next(1) = 0`` exactly as in the star-free case.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.logic.tribool import FALSE, TRUE
from repro.pattern.shift_next import ShiftNext
from repro.pattern.star_graph import FailureGraph, ImplicationGraph


def star_shift(graph: ImplicationGraph, j: int) -> tuple[int, FailureGraph | None]:
    """shift(j) for a star pattern, along with the failure graph used."""
    if j == 1:
        return 1, None
    failure = graph.failure_graph(j)
    reaching = failure.nodes_reaching_last_row()
    for s in range(1, j - 1):
        if (s + 1, 1) in reaching:
            return s, failure
    # No theta start node reaches the last row; fall back on phi[j, 1].
    phi_j1 = failure.values.get((j, 1))
    if phi_j1 is not None and phi_j1 is not FALSE:
        return j - 1, failure
    return j, failure


def star_next(
    failure: FailureGraph | None,
    j: int,
    shift: int,
    stars: tuple[bool, ...] = (),
) -> int:
    """next(j) for a star pattern via the deterministic-node walk.

    ``stars`` is the 0-based star-flag tuple of the pattern; when
    provided, a walk that reaches a 1-valued last-row node whose column
    aligns a *non-star* element returns ``j - shift + 1``: the phi entry
    proved the failed tuple satisfies that element, and a non-star
    element consumes exactly one tuple, so checking resumes one element
    (and one input position) further — the star-free ``S = 1`` case of
    Section 4 recovered inside the star machinery.
    """
    if shift == j:
        return 0
    if failure is None:
        raise PlanningError("a failure graph is required when shift(j) < j")
    node = (shift + 1, 1)
    if node not in failure.values:
        raise PlanningError(
            f"shift({j}) = {shift} selected but start node {node} is absent"
        )
    while True:
        row, column = node
        if row == failure.j:
            aligned = j - shift
            if (
                failure.values[node] is TRUE
                and stars
                and not stars[aligned - 1]
            ):
                return aligned + 1
            return aligned
        if failure.values[node] is not TRUE:
            return column
        successors = failure.arcs[node]
        if len(successors) != 1:
            return column
        successor = successors[0]
        if successor != (row + 1, column + 1):
            # Only diagonal moves preserve the element-to-element
            # alignment the runtime count formula relies on (see module
            # docstring); stop the walk before a non-diagonal arc.
            return column
        if failure.values[successor] is not TRUE:
            # Determinism demands a 1-valued end node; a U successor
            # stops the walk at the current column.
            return column
        node = successor


def compute_star_shift_next(graph: ImplicationGraph) -> ShiftNext:
    """All (shift(j), next(j)) pairs for a star pattern, 1-indexed."""
    m = graph.m
    stars = tuple(graph.star(position) for position in range(1, m + 1))
    shift = [0] * (m + 1)
    next_ = [0] * (m + 1)
    for j in range(1, m + 1):
        s, failure = star_shift(graph, j)
        shift[j] = s
        next_[j] = star_next(failure, j, s, stars)
    return ShiftNext(tuple(shift), tuple(next_))
