"""Implication graphs for star patterns (paper Section 5).

For patterns containing starred elements, the simple S-matrix argument no
longer works: a starred element can absorb a variable number of input
tuples, so "shift the pattern by k" no longer aligns elements one-to-one.
The paper models the simultaneous progress of the original pattern (row
index ``j``) and the pattern shifted back by ``j - k`` (column index
``k``) as a graph over the theta matrix entries:

- nodes are the strictly-lower-triangular positions ``(j, k)``, ``j > k``,
  valued by ``theta[j, k]``;
- arcs encode the legal simultaneous cursor moves, which depend on whether
  the row/column elements are starred (and, for star/star nodes, on the
  theta value):

  =====================  =============================================
  row starred, col starred, theta = U   arcs right, down, and diagonal
  row starred, col starred, theta = 1   arcs down and diagonal
  row starred, col plain                arcs right and diagonal
  row plain,  col starred               arcs down and diagonal
  row plain,  col plain                 arc diagonal only
  =====================  =============================================

  ("right" = ``(j, k+1)``, "down" = ``(j+1, k)``, "diagonal" =
  ``(j+1, k+1)``.)

- nodes valued 0 are removed outright (all incident arcs dropped): a
  contradiction at any alignment kills every path through it.

The *failure graph* ``G_P^j`` specializes the picture to "the pattern
failed at element j": rows beyond ``j`` are dropped and row ``j``'s values
are replaced by row ``j`` of phi (the knowledge that ``p_j`` did NOT hold).
shift/next are then read off the failure graph by
:mod:`repro.pattern.star_shift_next`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import PlanningError
from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, Tribool, UNKNOWN

Node = tuple[int, int]


@dataclass(frozen=True)
class FailureGraph:
    """``G_P^j``: the implication graph specialized to a failure at j.

    ``values`` holds only the surviving (non-zero) nodes; ``arcs`` maps
    each surviving node to its surviving successors, in deterministic
    (row, column) order.
    """

    j: int
    values: Mapping[Node, Tribool]
    arcs: Mapping[Node, tuple[Node, ...]]

    def last_row_nodes(self) -> list[Node]:
        return [node for node in self.values if node[0] == self.j]

    def nodes_reaching_last_row(self) -> set[Node]:
        """All nodes with a (possibly empty) path to a last-row node.

        Computed by reverse traversal from the last row, as the paper
        recommends over transitive closure: linear in the number of arcs.
        """
        reverse: dict[Node, list[Node]] = {node: [] for node in self.values}
        for source, targets in self.arcs.items():
            for target in targets:
                reverse[target].append(source)
        frontier = self.last_row_nodes()
        reached = set(frontier)
        while frontier:
            node = frontier.pop()
            for predecessor in reverse[node]:
                if predecessor not in reached:
                    reached.add(predecessor)
                    frontier.append(predecessor)
        return reached


class ImplicationGraph:
    """The pattern-level graph ``G_P`` plus a factory for failure graphs."""

    def __init__(
        self,
        theta: TriangularMatrix,
        phi: TriangularMatrix,
        stars: Sequence[bool],
        equivalent: frozenset[Node] = frozenset(),
    ):
        """``equivalent`` holds pairs (j, k), j > k, whose predicates are
        provably equivalent.  For two *starred* equivalent elements the
        maximal-run semantics forces their runs to end on the same tuple,
        so the paper's rule-2 "down" arc (original advances while the
        shifted star continues) is impossible and only the diagonal arc
        remains — a strictly-sound refinement that makes such nodes
        deterministic and unlocks long ``next`` skips on patterns with
        repeated star predicates (e.g. alternating rise/fall staircases).
        """
        if theta.size != phi.size:
            raise PlanningError("theta and phi must have the same size")
        if len(stars) != theta.size:
            raise PlanningError("stars must list one flag per pattern element")
        self._theta = theta
        self._phi = phi
        # 1-based star flags (index 0 unused) to mirror the paper's indices.
        self._stars = (False,) + tuple(bool(s) for s in stars)
        self._m = theta.size
        self._equivalent = equivalent

    @property
    def m(self) -> int:
        return self._m

    def star(self, position: int) -> bool:
        return self._stars[position]

    def base_values(self) -> dict[Node, Tribool]:
        """The node values of ``G_P`` (theta without the diagonal)."""
        return {
            (j, k): self._theta[j, k]
            for j in range(2, self._m + 1)
            for k in range(1, j)
        }

    def _arc_targets(self, node: Node, value: Tribool) -> list[Node]:
        """Raw arc targets from a node per the table in the module docstring.

        Bounds are not checked here; the failure-graph builder filters
        targets against its surviving node set.
        """
        j, k = node
        right = (j, k + 1)
        down = (j + 1, k)
        diagonal = (j + 1, k + 1)
        row_star = self._stars[j]
        col_star = self._stars[k]
        if row_star and col_star:
            if value is UNKNOWN:
                return [right, down, diagonal]
            # theta = 1: every tuple satisfying p_j satisfies p_k, so the
            # shifted star cannot end while the original star continues.
            if (j, k) in self._equivalent:
                # Equivalent predicates: the runs end on the same tuple,
                # so the original cannot advance alone either.
                return [diagonal]
            return [down, diagonal]
        if row_star:
            return [right, diagonal]
        if col_star:
            return [down, diagonal]
        return [diagonal]

    def failure_graph(self, j: int) -> FailureGraph:
        """Build ``G_P^j`` for a failure at pattern position ``j`` (j >= 2)."""
        if not 2 <= j <= self._m:
            raise PlanningError(f"failure graphs exist for 2 <= j <= m, got {j}")
        values: dict[Node, Tribool] = {}
        for row in range(2, j + 1):
            for column in range(1, row):
                value = self._phi[j, column] if row == j else self._theta[row, column]
                if value is not FALSE:
                    values[(row, column)] = value
        arcs: dict[Node, tuple[Node, ...]] = {}
        for node, value in values.items():
            if node[0] == j:
                arcs[node] = ()  # last row: terminal
                continue
            targets = [
                target
                for target in self._arc_targets(node, value)
                if target[1] < target[0] and target[0] <= j and target in values
            ]
            arcs[node] = tuple(sorted(targets))
        return FailureGraph(j=j, values=values, arcs=arcs)

    def render(self, j: int | None = None) -> str:
        """ASCII rendering of G_P (or G_P^j) for debugging and docs."""
        if j is None:
            values = self.base_values()
            rows = range(2, self._m + 1)
        else:
            graph = self.failure_graph(j)
            values = dict(graph.values)
            rows = range(2, j + 1)
        lines = []
        for row in rows:
            cells = []
            for column in range(1, row):
                value = values.get((row, column))
                cells.append(value.name if value is not None else ".")
            lines.append(f"row {row}: " + " ".join(cells))
        return "\n".join(lines)
