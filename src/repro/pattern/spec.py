"""Pattern specifications: the ordered element list of a sequence query.

A :class:`PatternSpec` is the FROM-clause pattern of an SQL-TS query after
semantic analysis: each :class:`PatternElement` has a name (the tuple
variable), a star flag, and an :class:`~repro.pattern.predicates.ElementPredicate`
collecting the WHERE conjuncts assigned to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import PlanningError
from repro.pattern.predicates import ElementPredicate


@dataclass(frozen=True)
class PatternElement:
    """One tuple variable of the pattern: name, star flag, predicate.

    A starred element matches a *maximal run of one or more* consecutive
    tuples satisfying the predicate (the paper's ``*Y`` — "one or more,
    not zero or more!").
    """

    name: str
    predicate: ElementPredicate
    star: bool = False

    def __str__(self) -> str:
        return ("*" if self.star else "") + self.name


class PatternSpec:
    """An ordered, non-empty sequence of pattern elements.

    Element positions are 1-based throughout the compiler, mirroring the
    paper's notation (``p_1 ... p_m``).
    """

    __slots__ = ("_elements",)

    def __init__(self, elements: Iterable[PatternElement]):
        self._elements = tuple(elements)
        if not self._elements:
            raise PlanningError("a pattern needs at least one element")
        names = [e.name for e in self._elements]
        if len(set(names)) != len(names):
            raise PlanningError(f"duplicate pattern variable names: {names}")

    @property
    def elements(self) -> tuple[PatternElement, ...]:
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[PatternElement]:
        return iter(self._elements)

    def element(self, j: int) -> PatternElement:
        """The j-th element, 1-based as in the paper."""
        if not 1 <= j <= len(self._elements):
            raise IndexError(f"pattern position {j} out of range 1..{len(self._elements)}")
        return self._elements[j - 1]

    @property
    def has_star(self) -> bool:
        return any(e.star for e in self._elements)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(e.name for e in self._elements)

    def __repr__(self) -> str:
        return "PatternSpec(" + ", ".join(str(e) for e in self._elements) + ")"
