"""Compiled predicate evaluation: lowering predicates to closures.

The paper's whole contribution is minimizing *how many* predicate tests a
pattern search performs; this module minimizes what each test *costs*.
The interpreted path (:meth:`~repro.pattern.predicates.ElementPredicate.test`)
allocates a fresh :class:`~repro.pattern.predicates.EvalContext` and walks
the condition objects through dynamic dispatch for every (tuple, element)
pair.  :func:`lower_predicate` instead specializes each element predicate
once, at pattern-compile time, into a plain Python closure

    evaluator(rows, index, bindings) -> bool

with attribute names, sequence offsets, comparison operators, and linear
coefficients pre-bound as cell variables — no context allocation, no
``isinstance`` dispatch, no :class:`~repro.pattern.predicates.Attr`
traffic on the hot path.

Semantics contract (held by the differential test-suite, which runs the
interpreted evaluator as the oracle):

- off-end navigation and missing row columns make a condition **False**,
  exactly like ``EvalContext.attr_value`` raising ``LookupError``;
- arithmetic on non-numeric values raises the same ``TypeError`` the
  interpreted ``LinearTerm.value`` raises — the lowered code performs the
  identical ``coefficient * value + constant`` computation rather than
  shortcutting it, so type errors surface on the same inputs;
- conditions are evaluated in declaration order with the same
  short-circuiting as ``all()`` / ``any()``.

Coverage and fallback: comparisons, string equalities, and Section 8
disjunctions always lower.  A residual condition lowers only when its
builder attached a pre-lowered fast form (the SQL-TS analyzer does this
for every WHERE residual via :mod:`repro.sqlts.codegen`); an opaque
residual — e.g. a hand-written lambda — makes :func:`lower_predicate`
return ``None`` and the matcher falls back to the interpreted path for
that element.  Fallback is per-element, never per-query.
"""

from __future__ import annotations

import operator
from typing import Callable, Mapping, Optional, Sequence

from repro.constraints.atoms import Op
from repro.pattern.predicates import (
    ComparisonCondition,
    Condition,
    ElementPredicate,
    OrCondition,
    ResidualCondition,
    StringEqualityCondition,
)

#: The compiled evaluator signature shared with the interpreted
#: ``test_element`` call sites: (rows, index, bindings) -> bool.
CompiledEvaluator = Callable[
    [Sequence[Mapping[str, object]], int, Mapping[str, tuple[int, int]]], bool
]

_OP_FUNCS = {
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}


def lower_predicate_batch(predicate: ElementPredicate):
    """Lower an element predicate to a batch-kernel program, or None.

    The columnar counterpart of :func:`lower_predicate`: instead of a
    per-(tuple, element) closure, the result is a data-only
    :class:`~repro.pattern.kernels.ElementKernel` the columnar backend
    (:mod:`repro.engine.columnar`) evaluates over whole column slices,
    emitting a per-position truth array.  Coverage is the closure
    coverage minus residuals — a residual reads per-attempt bindings and
    can never be evaluated positionally — and fallback stays per-element:
    ``None`` here simply means the matchers keep calling the closure (or
    the interpreted predicate) for this element.
    """
    from repro.pattern.kernels import plan_element

    return plan_element(predicate)


def lower_predicate(predicate: ElementPredicate) -> Optional[CompiledEvaluator]:
    """Lower a full element predicate, or None when it must fall back."""
    conditions = predicate.conditions
    if (
        len(conditions) == 2
        and isinstance(conditions[0], ComparisonCondition)
        and isinstance(conditions[1], ComparisonCondition)
    ):
        # Band predicates (lo < t.price AND t.price < hi over the same
        # cells) are common enough to deserve a fused closure that
        # fetches each input cell once for both comparisons.
        fused = _fuse_comparisons(conditions[0], conditions[1])
        if fused is not None:
            return fused
    evaluators = []
    for condition in conditions:
        lowered = lower_condition(condition)
        if lowered is None:
            return None
        evaluators.append(lowered)
    if not evaluators:
        return _always_true
    if len(evaluators) == 1:
        return evaluators[0]
    evaluator_tuple = tuple(evaluators)

    def evaluate(rows, index, bindings):
        for conjunct in evaluator_tuple:
            if not conjunct(rows, index, bindings):
                return False
        return True

    return evaluate


def lower_condition(condition: Condition) -> Optional[CompiledEvaluator]:
    """Lower one condition, or None for forms codegen does not cover."""
    if isinstance(condition, ComparisonCondition):
        return _lower_comparison(condition)
    if isinstance(condition, StringEqualityCondition):
        return _lower_string_equality(condition)
    if isinstance(condition, OrCondition):
        return _lower_disjunction(condition)
    if isinstance(condition, ResidualCondition):
        # The SQL-TS analyzer attaches a pre-lowered closure to every
        # WHERE residual; residuals built from opaque callables have
        # none and force the interpreted path.
        return condition.fast
    return None


def _always_true(rows, index, bindings):
    return True


def _lower_comparison(condition: ComparisonCondition) -> CompiledEvaluator:
    left, right = condition.left, condition.right
    holds = _OP_FUNCS[condition.op]
    if left.attr is None and right.attr is None:
        # Ground comparison: the answer is input-independent.
        result = condition.op.holds(left.constant, right.constant)
        return lambda rows, index, bindings: result
    if right.attr is None:
        name, off = left.attr.name, left.attr.offset  # type: ignore[union-attr]
        a, b = left.coefficient, left.constant
        c = right.constant

        def evaluate(rows, index, bindings):
            position = index + off
            if position < 0 or position >= len(rows):
                return False
            try:
                value = rows[position][name]
            except KeyError:
                return False
            return holds(a * value + b, c)

        return evaluate
    if left.attr is None:
        c = left.constant
        name, off = right.attr.name, right.attr.offset
        a, b = right.coefficient, right.constant

        def evaluate(rows, index, bindings):
            position = index + off
            if position < 0 or position >= len(rows):
                return False
            try:
                value = rows[position][name]
            except KeyError:
                return False
            return holds(c, a * value + b)

        return evaluate
    left_name, left_off = left.attr.name, left.attr.offset
    left_a, left_b = left.coefficient, left.constant
    right_name, right_off = right.attr.name, right.attr.offset
    right_a, right_b = right.coefficient, right.constant

    def evaluate(rows, index, bindings):
        n = len(rows)
        left_pos = index + left_off
        if left_pos < 0 or left_pos >= n:
            return False
        try:
            left_value = rows[left_pos][left_name]
        except KeyError:
            return False
        # Complete the left term before touching the right one so a
        # non-numeric left value raises exactly where the interpreted
        # LinearTerm.value would.
        lhs = left_a * left_value + left_b
        right_pos = index + right_off
        if right_pos < 0 or right_pos >= n:
            return False
        try:
            right_value = rows[right_pos][right_name]
        except KeyError:
            return False
        return holds(lhs, right_a * right_value + right_b)

    return evaluate


def _fuse_comparisons(
    first: ComparisonCondition, second: ComparisonCondition
) -> Optional[CompiledEvaluator]:
    """Fuse two attr-vs-attr comparisons over the same pair of cells.

    Both conditions must read exactly the cells (name, offset) that the
    first condition reads; the fused closure then fetches each cell once
    and applies both comparisons.  Evaluation order is preserved — first
    condition fully, short-circuit, then the second — so bounds misses,
    missing columns, and non-numeric ``TypeError``s surface exactly as
    the condition-at-a-time path (re-reading a dict cell has no
    observable effect, so the reuse is invisible).
    """
    if first.left.attr is None or first.right.attr is None:
        return None
    if second.left.attr is None or second.right.attr is None:
        return None
    cell_a = (first.left.attr.name, first.left.attr.offset)
    cell_b = (first.right.attr.name, first.right.attr.offset)
    cells = {cell_a, cell_b}
    second_left = (second.left.attr.name, second.left.attr.offset)
    second_right = (second.right.attr.name, second.right.attr.offset)
    if second_left not in cells or second_right not in cells:
        return None
    name_a, off_a = cell_a
    name_b, off_b = cell_b
    holds_1 = _OP_FUNCS[first.op]
    holds_2 = _OP_FUNCS[second.op]
    la_1, lb_1 = first.left.coefficient, first.left.constant
    ra_1, rb_1 = first.right.coefficient, first.right.constant
    la_2, lb_2 = second.left.coefficient, second.left.constant
    ra_2, rb_2 = second.right.coefficient, second.right.constant
    left_2_is_a = second_left == cell_a
    right_2_is_a = second_right == cell_a

    def evaluate(rows, index, bindings):
        n = len(rows)
        pos_a = index + off_a
        if pos_a < 0 or pos_a >= n:
            return False
        try:
            value_a = rows[pos_a][name_a]
        except KeyError:
            return False
        lhs_1 = la_1 * value_a + lb_1
        pos_b = index + off_b
        if pos_b < 0 or pos_b >= n:
            return False
        try:
            value_b = rows[pos_b][name_b]
        except KeyError:
            return False
        if not holds_1(lhs_1, ra_1 * value_b + rb_1):
            return False
        lhs_2 = la_2 * (value_a if left_2_is_a else value_b) + lb_2
        rhs_2 = ra_2 * (value_a if right_2_is_a else value_b) + rb_2
        return holds_2(lhs_2, rhs_2)

    # Marker the flight recorder reads to attribute band fusion per
    # element in query profiles; no effect on evaluation.
    evaluate.band_fused = True
    return evaluate


def _lower_string_equality(condition: StringEqualityCondition) -> CompiledEvaluator:
    name, off = condition.attr.name, condition.attr.offset
    expected = condition.value
    equals = condition.op is Op.EQ

    def evaluate(rows, index, bindings):
        position = index + off
        if position < 0 or position >= len(rows):
            return False
        try:
            actual = rows[position][name]
        except KeyError:
            return False
        return (actual == expected) if equals else (actual != expected)

    return evaluate


def _lower_disjunction(condition: OrCondition) -> Optional[CompiledEvaluator]:
    branches = []
    for branch in condition.branches:
        lowered_branch = []
        for leaf in branch:
            lowered = lower_condition(leaf)
            if lowered is None:
                return None
            lowered_branch.append(lowered)
        branches.append(tuple(lowered_branch))
    branch_tuple = tuple(branches)

    def evaluate(rows, index, bindings):
        for branch in branch_tuple:
            for leaf in branch:
                if not leaf(rows, index, bindings):
                    break
            else:
                return True
        return False

    return evaluate
