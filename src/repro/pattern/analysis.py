"""Building the theta and phi precondition matrices (paper Section 4.2).

For a pattern ``p_1 ... p_m`` the matrices capture all pairwise logical
relations between elements *when evaluated on the same input tuple*:

    theta[j, k] = 1  if p_j => p_k   and p_j is not identically false
                  0  if p_j => NOT p_k
                  U  otherwise

    phi[j, k]   = 1  if NOT p_j => p_k
                  0  if NOT p_j => NOT p_k   and p_j is not identically true
                  U  otherwise

Both are defined for ``j >= k``.  The decision procedures come from the
GSW solver via each element's symbolic predicate; *residual* conditions
(those without a symbolic form) restrict which definite values may be
claimed:

- an element with residuals can never be proven *implied* (no ``1`` in its
  theta column / the relevant phi direction), because the prover cannot
  see the whole predicate;
- contradictions (``0`` in theta) remain provable from the symbolic parts
  alone, since conjoining invisible extra conditions cannot make an
  unsatisfiable conjunction satisfiable.

All imprecision therefore collapses to ``U``, which the OPS runtime treats
as "must re-check" — soundness is preserved, only the speedup shrinks.
"""

from __future__ import annotations

from typing import Sequence

from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, UNKNOWN, Tribool
from repro.pattern.predicates import ElementPredicate
from repro.pattern.spec import PatternSpec


def _theta_entry(pj: ElementPredicate, pk: ElementPredicate) -> Tribool:
    """theta value for one ordered pair (see module docstring)."""
    if pj is pk:
        # p => p always holds; identically-false elements get 0 so the
        # ambiguity the paper guards against cannot arise.
        return TRUE if pj.symbolic.satisfiable() else FALSE
    if not pj.symbolic.conjunction_satisfiable_with(pk.symbolic):
        # The symbolic parts already contradict: p_j AND p_k is unsat no
        # matter what the residuals add.  (This also covers p_j unsat,
        # matching the paper's exclusion of identically-false premises
        # from the 1 case.)
        return FALSE
    if not pk.has_residual and pj.symbolic.implies(pk.symbolic):
        return TRUE
    return UNKNOWN


def _phi_entry(pj: ElementPredicate, pk: ElementPredicate) -> Tribool:
    """phi value for one ordered pair (see module docstring)."""
    if pj is pk:
        # NOT p => NOT p always holds -> 0, unless p is a tautology, in
        # which case NOT p is unsatisfiable and vacuously implies p -> 1.
        return TRUE if pj.is_tautology() else FALSE
    if (
        not pj.has_residual
        and not pk.has_residual
        and pj.symbolic.negation_implies(pk.symbolic)
    ):
        return TRUE
    if (
        not pj.has_residual
        and not pj.is_tautology()
        and pk.symbolic.implies(pj.symbolic)
    ):
        # NOT p_j => NOT p_k is the contrapositive of p_k => p_j.  The
        # premise's residuals (p_k's) only strengthen p_k, so proving the
        # implication from p_k's symbolic part alone is sound; p_j must be
        # residual-free for its side to be exactly the symbolic form.
        return FALSE
    return UNKNOWN


def build_theta(pattern: PatternSpec | Sequence[ElementPredicate]) -> TriangularMatrix:
    """The positive precondition matrix theta (lower-triangular, with diagonal)."""
    predicates = _predicates_of(pattern)
    m = len(predicates)
    theta = TriangularMatrix(m, include_diagonal=True)
    for j in range(1, m + 1):
        for k in range(1, j + 1):
            theta[j, k] = _theta_entry(predicates[j - 1], predicates[k - 1])
    return theta


def build_phi(pattern: PatternSpec | Sequence[ElementPredicate]) -> TriangularMatrix:
    """The negative precondition matrix phi (lower-triangular, with diagonal)."""
    predicates = _predicates_of(pattern)
    m = len(predicates)
    phi = TriangularMatrix(m, include_diagonal=True)
    for j in range(1, m + 1):
        for k in range(1, j + 1):
            phi[j, k] = _phi_entry(predicates[j - 1], predicates[k - 1])
    return phi


def _predicates_of(
    pattern: PatternSpec | Sequence[ElementPredicate],
) -> list[ElementPredicate]:
    if isinstance(pattern, PatternSpec):
        return [e.predicate for e in pattern]
    return list(pattern)
