"""Batch-kernel plans: lowering element predicates to column programs.

:mod:`repro.pattern.codegen` lowers each element predicate to a closure
evaluated once per (tuple, element) pair.  This module lowers the *same*
predicates one level further, to small symbolic **kernel programs** that
a columnar backend (:mod:`repro.engine.columnar`) can evaluate over a
whole column slice per call, producing a per-position truth array the
matchers consume instead of calling the closure.

The split is deliberate:

- **stage 1 (here, per query)** — walk the condition objects once at
  pattern-compile time and emit data-only programs
  (:class:`CompareConst`, :class:`ComparePair`, :class:`StringEquality`,
  :class:`Ground`, :class:`Disjunction`) naming the columns, sequence
  offsets, linear coefficients, and comparison operators involved.  The
  programs are frozen and hashable, so identical element predicates
  (Example 10 repeats its down/up shapes across seven starred elements)
  deduplicate to one shared kernel;
- **stage 2 (columnar, per cluster)** — bind the programs to actual
  column data and materialize truth bytes.

Coverage mirrors codegen exactly, minus residuals: a residual condition
closes over per-attempt *bindings*, which vary across match attempts,
so it can never be batch-evaluated over positions.  Any element whose
predicate contains a residual (or an unknown condition type) gets no
kernel and stays on the per-row evaluator — fallback is per-element,
never per-query, exactly like codegen's contract.

Semantics note: a truth array has no evaluation *order*, so an element
lowers only when every one of its conditions does, and the columnar
backend falls back to the row evaluator for the whole element whenever
materialization raises — preserving the row path's short-circuit and
``TypeError`` surfacing behaviour (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constraints.atoms import Op
from repro.pattern.predicates import (
    ComparisonCondition,
    Condition,
    ElementPredicate,
    OrCondition,
    StringEqualityCondition,
)
from repro.pattern.spec import PatternSpec


@dataclass(frozen=True)
class Ground:
    """An input-independent comparison: constant truth at every position."""

    result: bool


@dataclass(frozen=True)
class CompareConst:
    """``op(a * column[i + off] + b, const)`` — one attr vs a constant.

    ``const_on_left`` flips the operand order (``op(const, a*v + b)``),
    matching the two attr-vs-constant closures codegen emits.
    """

    name: str
    off: int
    a: float
    b: float
    op: Op
    const: float
    const_on_left: bool = False


@dataclass(frozen=True)
class ComparePair:
    """``op(a1*left[i+off1] + b1, a2*right[i+off2] + b2)`` — attr vs attr."""

    left_name: str
    left_off: int
    left_a: float
    left_b: float
    right_name: str
    right_off: int
    right_a: float
    right_b: float
    op: Op


@dataclass(frozen=True)
class StringEquality:
    """``column[i + off] == value`` (or ``!=``) — never raises, any kind."""

    name: str
    off: int
    value: str
    equals: bool


@dataclass(frozen=True)
class Disjunction:
    """OR of AND-branches, each branch a tuple of leaf programs."""

    branches: tuple[tuple[object, ...], ...]


@dataclass(frozen=True)
class ElementKernel:
    """The full conjunction program for one pattern element.

    ``steps`` are the per-condition programs in declaration order (order
    is informational only — a truth array is order-free).  ``band_fused``
    marks the two-comparison shape codegen fuses into one closure, so
    profiles can attribute fusion identically on both paths.
    """

    steps: tuple[object, ...]
    band_fused: bool = False

    @property
    def columns(self) -> frozenset[str]:
        """Every column name any step of this kernel reads."""
        names: set[str] = set()
        _collect_columns(self.steps, names)
        return frozenset(names)


@dataclass(frozen=True)
class KernelPlan:
    """Per-element kernels for one compiled pattern (None = row fallback)."""

    elements: tuple[Optional[ElementKernel], ...]

    @property
    def lowered(self) -> int:
        """How many elements have a batch kernel."""
        return sum(1 for kernel in self.elements if kernel is not None)

    @property
    def columns(self) -> frozenset[str]:
        names: set[str] = set()
        for kernel in self.elements:
            if kernel is not None:
                names.update(kernel.columns)
        return frozenset(names)


def _collect_columns(steps, names: set[str]) -> None:
    for step in steps:
        if isinstance(step, (CompareConst, StringEquality)):
            names.add(step.name)
        elif isinstance(step, ComparePair):
            names.add(step.left_name)
            names.add(step.right_name)
        elif isinstance(step, Disjunction):
            for branch in step.branches:
                _collect_columns(branch, names)


def plan_kernels(spec: PatternSpec) -> KernelPlan:
    """Stage-1 lowering for a whole pattern: one entry per element."""
    return KernelPlan(
        elements=tuple(plan_element(e.predicate) for e in spec)
    )


def plan_element(predicate: ElementPredicate) -> Optional[ElementKernel]:
    """Lower one element predicate to a kernel, or None to fall back."""
    steps: list[object] = []
    for condition in predicate.conditions:
        step = _plan_condition(condition)
        if step is None:
            return None
        steps.append(step)
    return ElementKernel(
        steps=tuple(steps), band_fused=_is_band_fused(predicate.conditions)
    )


def _plan_condition(condition: Condition) -> Optional[object]:
    if isinstance(condition, ComparisonCondition):
        return _plan_comparison(condition)
    if isinstance(condition, StringEqualityCondition):
        return StringEquality(
            name=condition.attr.name,
            off=condition.attr.offset,
            value=condition.value,
            equals=condition.op is Op.EQ,
        )
    if isinstance(condition, OrCondition):
        branches: list[tuple[object, ...]] = []
        for branch in condition.branches:
            lowered_branch: list[object] = []
            for leaf in branch:
                lowered = _plan_condition(leaf)
                if lowered is None:
                    return None
                lowered_branch.append(lowered)
            branches.append(tuple(lowered_branch))
        return Disjunction(branches=tuple(branches))
    # Residuals (binding-dependent) and unknown condition types never
    # batch-lower; the element stays on the row evaluator.
    return None


def _plan_comparison(condition: ComparisonCondition) -> object:
    left, right = condition.left, condition.right
    if left.attr is None and right.attr is None:
        return Ground(result=condition.op.holds(left.constant, right.constant))
    if right.attr is None:
        return CompareConst(
            name=left.attr.name,
            off=left.attr.offset,
            a=left.coefficient,
            b=left.constant,
            op=condition.op,
            const=right.constant,
            const_on_left=False,
        )
    if left.attr is None:
        return CompareConst(
            name=right.attr.name,
            off=right.attr.offset,
            a=right.coefficient,
            b=right.constant,
            op=condition.op,
            const=left.constant,
            const_on_left=True,
        )
    return ComparePair(
        left_name=left.attr.name,
        left_off=left.attr.offset,
        left_a=left.coefficient,
        left_b=left.constant,
        right_name=right.attr.name,
        right_off=right.attr.offset,
        right_a=right.coefficient,
        right_b=right.constant,
        op=condition.op,
    )


def _is_band_fused(conditions) -> bool:
    """Mirror codegen's band-fusion eligibility test exactly.

    Two attr-vs-attr comparisons over the same pair of (name, offset)
    cells — codegen fuses their closure; kernels mark the element so
    both paths report the same ``band_fused`` attribution.
    """
    if len(conditions) != 2:
        return False
    first, second = conditions
    if not (
        isinstance(first, ComparisonCondition)
        and isinstance(second, ComparisonCondition)
    ):
        return False
    if first.left.attr is None or first.right.attr is None:
        return False
    if second.left.attr is None or second.right.attr is None:
        return False
    cells = {
        (first.left.attr.name, first.left.attr.offset),
        (first.right.attr.name, first.right.attr.offset),
    }
    return (
        (second.left.attr.name, second.left.attr.offset) in cells
        and (second.right.attr.name, second.right.attr.offset) in cells
    )
