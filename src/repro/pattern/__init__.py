"""Pattern representation and the OPS compile-time analysis.

This subpackage turns a sequential pattern — an ordered list of predicate
elements, some of which may be starred (repeating) — into a
:class:`~repro.pattern.compiler.CompiledPattern` that carries everything
the OPS runtime needs:

- the three-valued precondition matrices **theta** and **phi**
  (:mod:`repro.pattern.analysis`, paper Section 4.2);
- for star-free patterns, the **S** matrix and the ``shift``/``next``
  arrays (:mod:`repro.pattern.shift_next`, Section 4);
- for patterns with stars, the **implication graphs** ``G_P`` / ``G_P^j``
  and the generalized ``shift``/``next``
  (:mod:`repro.pattern.star_graph`, :mod:`repro.pattern.star_shift_next`,
  Section 5).
"""

from repro.pattern.spec import PatternElement, PatternSpec
from repro.pattern.predicates import (
    AttributeDomains,
    ElementPredicate,
    comparison,
    predicate,
    true_predicate,
)
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.shift_next import build_s_matrix, compute_shift_next
from repro.pattern.star_graph import ImplicationGraph
from repro.pattern.star_shift_next import compute_star_shift_next
from repro.pattern.compiler import CompiledPattern, compile_pattern

__all__ = [
    "PatternElement",
    "PatternSpec",
    "ElementPredicate",
    "AttributeDomains",
    "predicate",
    "comparison",
    "true_predicate",
    "build_theta",
    "build_phi",
    "build_s_matrix",
    "compute_shift_next",
    "ImplicationGraph",
    "compute_star_shift_next",
    "CompiledPattern",
    "compile_pattern",
]
