"""A compact builder DSL for programmatic pattern construction.

The SQL-TS text form is the primary interface, but library users
composing patterns in code (benchmarks, screeners, streaming alerts)
want something terser than assembling ``ComparisonCondition`` objects.
This module provides named condition builders over a price-like
attribute and a fluent :class:`PatternBuilder`::

    from repro.pattern.dsl import PatternBuilder, rises, falls, below

    pattern = (
        PatternBuilder(attribute="price")
        .element("X")                      # unconstrained anchor
        .star("D", falls())                # one-or-more falling tuples
        .element("R", rises(), below(30))  # reversal day under 30
        .compile()
    )

All builders return plain :class:`~repro.pattern.predicates.Condition`
objects, so they mix freely with hand-built ones.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.constraints.atoms import Op
from repro.pattern.compiler import CompiledPattern, compile_pattern
from repro.pattern.predicates import (
    Attr,
    AttributeDomains,
    ComparisonCondition,
    Condition,
    ElementPredicate,
    LinearTerm,
    col,
    comparison,
)
from repro.pattern.spec import PatternElement, PatternSpec

_DEFAULT_ATTRIBUTE = "price"


def _attr(attribute: str = _DEFAULT_ATTRIBUTE) -> Attr:
    return col(attribute)


def rises(attribute: str = _DEFAULT_ATTRIBUTE) -> Condition:
    """value > previous value"""
    a = _attr(attribute)
    return comparison(a, ">", a.previous)


def falls(attribute: str = _DEFAULT_ATTRIBUTE) -> Condition:
    """value < previous value"""
    a = _attr(attribute)
    return comparison(a, "<", a.previous)


def below(bound: float, attribute: str = _DEFAULT_ATTRIBUTE) -> Condition:
    """value < bound"""
    return comparison(_attr(attribute), "<", bound)


def above(bound: float, attribute: str = _DEFAULT_ATTRIBUTE) -> Condition:
    """value > bound"""
    return comparison(_attr(attribute), ">", bound)


def between(
    low: float, high: float, attribute: str = _DEFAULT_ATTRIBUTE
) -> tuple[Condition, Condition]:
    """low < value < high (two conditions — unpack with ``*``)."""
    a = _attr(attribute)
    return comparison(low, "<", a), comparison(a, "<", high)


def pct_change(
    op: Union[Op, str], ratio: float, attribute: str = _DEFAULT_ATTRIBUTE
) -> Condition:
    """value op ratio * previous value — e.g. ``pct_change("<", 0.98)``
    is the paper's ">2% drop" and ``pct_change(">", 1.02)`` its rise."""
    a = _attr(attribute)
    return comparison(a, op, ratio * a.previous)


def equals(value: float, attribute: str = _DEFAULT_ATTRIBUTE) -> Condition:
    """value = constant (the Example 3 / KMP-able shape)."""
    return comparison(_attr(attribute), "=", value)


class PatternBuilder:
    """Fluent construction of a :class:`PatternSpec` / compiled plan."""

    def __init__(
        self,
        attribute: str = _DEFAULT_ATTRIBUTE,
        domains: Optional[AttributeDomains] = None,
    ):
        self._attribute = attribute
        # Pattern attributes are prices in every paper workload; declare
        # the chosen attribute positive unless told otherwise.
        self._domains = (
            domains if domains is not None else AttributeDomains({attribute})
        )
        self._elements: list[PatternElement] = []

    def element(self, name: str, *conditions: Condition) -> "PatternBuilder":
        """Append a plain (single-tuple) element."""
        return self._append(name, conditions, star=False)

    def star(self, name: str, *conditions: Condition) -> "PatternBuilder":
        """Append a starred (one-or-more, maximal run) element."""
        return self._append(name, conditions, star=True)

    def _append(self, name, conditions, star) -> "PatternBuilder":
        predicate = ElementPredicate(
            conditions, domains=self._domains, label=name
        )
        self._elements.append(PatternElement(name, predicate, star=star))
        return self

    def spec(self) -> PatternSpec:
        return PatternSpec(self._elements)

    def compile(self, use_equivalence: bool = True) -> CompiledPattern:
        return compile_pattern(self.spec(), use_equivalence=use_equivalence)
