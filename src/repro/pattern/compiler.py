"""End-to-end pattern compilation: PatternSpec -> CompiledPattern.

This is the "query compilation" step of the paper (end of Section 4.2):
build theta and phi from the element predicates, then derive shift/next —
through the S matrix for star-free patterns (Section 4) or through the
implication graphs for patterns with stars (Section 5).  The result is
immutable and reusable across any number of input sequences, "computed
once as part of the query compilation, and then used repeatedly to search
the database, and its time-varying content".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Optional

from repro.logic.matrix import TriangularMatrix
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.shift_next import ShiftNext, compute_shift_next
from repro.pattern.spec import PatternSpec
from repro.pattern.star_graph import ImplicationGraph
from repro.pattern.star_shift_next import compute_star_shift_next


@dataclass(frozen=True)
class CompiledPattern:
    """A pattern together with everything OPS precomputes about it.

    ``s_matrix`` is populated only for star-free patterns; ``graph`` only
    when the pattern has stars (it is how shift/next were derived).
    """

    spec: PatternSpec
    theta: TriangularMatrix
    phi: TriangularMatrix
    shift_next: ShiftNext
    s_matrix: Optional[TriangularMatrix]
    graph: Optional[ImplicationGraph]
    #: True for plans built by :func:`degraded_pattern` after an OPS
    #: compilation failure: shift/next are placeholders, only safe for
    #: restart-based matchers (naive / backtracking).
    degraded: bool = False
    #: False pins every element to the interpreted evaluator — the
    #: differential-testing oracle (see ``docs/performance.md``).
    use_codegen: bool = True

    @property
    def m(self) -> int:
        return len(self.spec)

    @cached_property
    def evaluators(self) -> tuple[Optional[Callable], ...]:
        """Per-element compiled evaluators, lazily lowered and cached.

        Entry ``j - 1`` is either a ``(rows, index, bindings) -> bool``
        closure (see :mod:`repro.pattern.codegen`) or ``None``, in which
        case matchers fall back to the interpreted ``predicate.test`` for
        that element.  With ``use_codegen=False`` every entry is None.
        """
        if not self.use_codegen:
            return (None,) * self.m
        from repro.pattern.codegen import lower_predicate

        return tuple(lower_predicate(e.predicate) for e in self.spec)

    @cached_property
    def kernel_plan(self):
        """Per-element batch-kernel programs, lazily lowered and cached.

        Stage 1 of the columnar lowering (:mod:`repro.pattern.kernels`):
        entry ``j - 1`` is a symbolic :class:`~repro.pattern.kernels.
        ElementKernel` or None where the element must stay on the
        per-row evaluator (residuals, opaque conditions).  With
        ``use_codegen=False`` — the interpreted differential oracle —
        nothing lowers, keeping the oracle path entirely kernel-free.
        """
        from repro.pattern.codegen import lower_predicate_batch
        from repro.pattern.kernels import KernelPlan

        if not self.use_codegen:
            return KernelPlan(elements=(None,) * self.m)
        return KernelPlan(
            elements=tuple(lower_predicate_batch(e.predicate) for e in self.spec)
        )

    @property
    def has_star(self) -> bool:
        return self.spec.has_star

    def shift(self, j: int) -> int:
        return self.shift_next.shift[j]

    def next(self, j: int) -> int:
        return self.shift_next.next_[j]

    def stars(self) -> tuple[bool, ...]:
        """0-based star flags, one per element."""
        return tuple(e.star for e in self.spec)

    def describe(self) -> str:
        """A human-readable compilation report (used by examples/docs)."""
        lines = [f"pattern: {self.spec!r}", "theta:"]
        lines += ["  " + " ".join(row) for row in self.theta.to_rows()]
        lines.append("phi:")
        lines += ["  " + " ".join(row) for row in self.phi.to_rows()]
        if self.s_matrix is not None:
            lines.append("S:")
            lines += ["  " + (" ".join(row) or "-") for row in self.s_matrix.to_rows()]
        m = self.m
        lines.append("shift: " + " ".join(str(self.shift(j)) for j in range(1, m + 1)))
        lines.append("next:  " + " ".join(str(self.next(j)) for j in range(1, m + 1)))
        return "\n".join(lines)


def compile_pattern(
    spec: PatternSpec, use_equivalence: bool = True, codegen: bool = True
) -> CompiledPattern:
    """Run the full OPS compile-time analysis on a pattern.

    ``use_equivalence=False`` disables the equivalent-star-pair graph
    refinement (see :class:`~repro.pattern.star_graph.ImplicationGraph`),
    giving the paper's literal rule set — kept switchable for the
    ablation benchmarks.  ``codegen=False`` disables the compiled
    predicate fast path, pinning the plan to the interpreted evaluators
    (the differential-testing oracle).
    """
    theta = build_theta(spec)
    phi = build_phi(spec)
    if spec.has_star:
        equivalent = (
            _equivalent_pairs(spec, theta) if use_equivalence else frozenset()
        )
        graph = ImplicationGraph(theta, phi, [e.star for e in spec], equivalent)
        shift_next = compute_star_shift_next(graph)
        return CompiledPattern(
            spec=spec,
            theta=theta,
            phi=phi,
            shift_next=shift_next,
            s_matrix=None,
            graph=graph,
            use_codegen=codegen,
        )
    shift_next, s_matrix = compute_shift_next(theta, phi)
    return CompiledPattern(
        spec=spec,
        theta=theta,
        phi=phi,
        shift_next=shift_next,
        s_matrix=s_matrix,
        graph=None,
        use_codegen=codegen,
    )


def degraded_pattern(spec: PatternSpec, codegen: bool = True) -> CompiledPattern:
    """A fallback plan for patterns OPS analysis cannot compile.

    theta/phi are left all-UNKNOWN and shift/next are the no-skip
    placeholders (``shift = j``, ``next = 0``), which restart-based
    matchers (:class:`~repro.match.naive.NaiveMatcher`,
    :class:`~repro.match.backtracking.BacktrackingMatcher`) never read.
    The plan is tagged ``degraded=True`` so the executor refuses to hand
    it to an OPS runtime, whose skip arithmetic would be unsound with
    placeholder arrays.
    """
    m = len(spec)
    return CompiledPattern(
        spec=spec,
        theta=TriangularMatrix(m),
        phi=TriangularMatrix(m),
        shift_next=ShiftNext(
            shift=(0, *range(1, m + 1)), next_=(0,) * (m + 1)
        ),
        s_matrix=None,
        graph=None,
        degraded=True,
        use_codegen=codegen,
    )


def _equivalent_pairs(spec: PatternSpec, theta) -> frozenset[tuple[int, int]]:
    """Starred pairs (j, k), j > k, whose predicates are provably equivalent.

    Equivalence requires theta[j, k] = 1 (p_j => p_k with p_j satisfiable),
    the reverse implication, and both predicates residual-free (a residual
    hides part of the predicate, so equivalence cannot be claimed).
    """
    from repro.logic.tribool import TRUE

    elements = spec.elements
    pairs = set()
    for j in range(2, len(elements) + 1):
        pj = elements[j - 1]
        if not pj.star or pj.predicate.has_residual:
            continue
        for k in range(1, j):
            pk = elements[k - 1]
            if not pk.star or pk.predicate.has_residual:
                continue
            if theta[j, k] is TRUE and pk.predicate.symbolic.implies(
                pj.predicate.symbolic
            ):
                pairs.add((j, k))
    return frozenset(pairs)
