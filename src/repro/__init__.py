"""repro — SQL-TS and the OPS sequence-query optimizer.

A from-scratch reproduction of *Optimization of Sequence Queries in
Database Systems* (Sadri, Zaniolo, Zarkesh, Adibi — PODS 2001): the
SQL-TS language for sequential pattern queries over sorted relations, and
the Optimized Pattern Search (OPS) algorithm, a generalization of
Knuth–Morris–Pratt to patterns of arbitrary predicates, including
repeating (starred) elements.

Quickstart::

    from repro import Catalog, Executor, AttributeDomains
    from repro.data import quote_table

    catalog = Catalog()
    catalog.register(quote_table())
    executor = Executor(catalog, domains=AttributeDomains.prices())
    result = executor.execute('''
        SELECT X.name, X.date AS spike_day
        FROM quote
          CLUSTER BY name
          SEQUENCE BY date
          AS (X, Y, Z)
        WHERE Y.price > 1.15 * X.price
          AND Z.price < 0.80 * Y.price
    ''')
    print(result.pretty())

Layers (each usable on its own):

- :mod:`repro.sqlts`       — the SQL-TS parser and semantic analyzer;
- :mod:`repro.pattern`     — patterns, theta/phi analysis, shift/next;
- :mod:`repro.constraints` — the GSW implication/satisfiability solver;
- :mod:`repro.match`       — naive / backtracking / KMP / OPS runtimes;
- :mod:`repro.engine`      — tables, clustering, UDAs, the executor;
- :mod:`repro.recovery`    — checkpoint/restore for streaming queries;
- :mod:`repro.data`        — deterministic synthetic datasets;
- :mod:`repro.bench`       — the experiment harness.
"""

from repro.engine.catalog import Catalog
from repro.engine.executor import ExecutionReport, Executor, StreamingQuery, execute
from repro.engine.result import Result
from repro.engine.session import Session
from repro.engine.table import Column, Schema, Table
from repro.errors import (
    CheckpointCorrupt,
    ConstraintError,
    ExecutionError,
    LimitExceeded,
    PlanningError,
    RecoveryError,
    ReproError,
    SchemaError,
    SemanticError,
    SqlTsSyntaxError,
    StatementError,
    StreamStateError,
    TransientSourceError,
)
from repro.match.base import Instrumentation, Match, Span
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import CompiledPattern, compile_pattern
from repro.pattern.predicates import AttributeDomains
from repro.pattern.spec import PatternElement, PatternSpec
from repro.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    MatcherSnapshot,
    RecoveringStreamRunner,
    RetryPolicy,
    pattern_fingerprint,
)
from repro.resilience import (
    Budget,
    Diagnostics,
    ErrorPolicy,
    QuarantinedRow,
    ResourceLimits,
)
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Executor",
    "ExecutionReport",
    "execute",
    "Result",
    "Session",
    "Table",
    "Schema",
    "Column",
    "Instrumentation",
    "Match",
    "Span",
    "CompiledPattern",
    "compile_pattern",
    "PatternSpec",
    "PatternElement",
    "AttributeDomains",
    "parse_query",
    "analyze",
    "ErrorPolicy",
    "ResourceLimits",
    "Diagnostics",
    "QuarantinedRow",
    "Budget",
    "ReproError",
    "SqlTsSyntaxError",
    "SemanticError",
    "PlanningError",
    "ExecutionError",
    "SchemaError",
    "ConstraintError",
    "LimitExceeded",
    "StatementError",
    "StreamStateError",
    "TransientSourceError",
    "RecoveryError",
    "CheckpointCorrupt",
    "OpsStreamMatcher",
    "StreamingQuery",
    "CheckpointStore",
    "CheckpointPolicy",
    "RetryPolicy",
    "RecoveringStreamRunner",
    "MatcherSnapshot",
    "pattern_fingerprint",
    "__version__",
]
