"""Series with double-bottom occurrences planted at known positions.

For verifying the Example 10 pipeline end to end: the background walk
stays strictly inside the ±2% band (so the query's ``*Y`` element — a
>2% drop — can never fire on noise), and complete relaxed double-bottom
templates are spliced in at chosen positions.  The generator returns the
ground truth, so tests can assert the query finds *exactly* the planted
occurrences — a precision/recall experiment the paper's real-data setup
cannot offer.
"""

from __future__ import annotations

import random

#: Day-over-day ratios of one relaxed double bottom, matching Example 10:
#: drop >2%, flat run, rise >2%, flat run, drop >2%, flat run, rise >2%,
#: then a settling day inside the band.
_TEMPLATE_RATIOS = (
    0.965,          # *Y: the first drop
    0.998, 1.001,   # *Z: flat
    1.032,          # *T: rise
    1.004, 0.997,   # *U: flat
    0.960,          # *V: the second drop
    1.001, 1.010,   # *W: flat
    1.031,          # *R: rise
    1.002,          # S: settles inside the band
)

#: Length of one planted occurrence in rows.
TEMPLATE_LENGTH = len(_TEMPLATE_RATIOS)


def plant_double_bottoms(
    n: int,
    positions: list[int],
    start: float = 100.0,
    noise: float = 0.008,
    seed: int = 0,
) -> tuple[list[float], list[int]]:
    """A length-``n`` series with double bottoms starting at ``positions``.

    ``positions`` index the anchor day (the query's X tuple); the pattern
    body occupies the following ``TEMPLATE_LENGTH`` rows.  Positions must
    leave room and not overlap (validated).  Returns
    ``(prices, anchor_positions)``.

    Background moves are drawn uniformly within ``±noise`` (default 0.8%,
    safely inside the 2% band), so every >2% move in the series belongs
    to a planted template.
    """
    if noise >= 0.019:
        raise ValueError("noise must stay strictly inside the 2% band")
    ordered = sorted(positions)
    for position in ordered:
        if position < 1 or position + TEMPLATE_LENGTH + 1 > n:
            raise ValueError(f"position {position} does not fit in n={n}")
    for earlier, later in zip(ordered, ordered[1:]):
        if later <= earlier + TEMPLATE_LENGTH + 1:
            raise ValueError(
                f"positions {earlier} and {later} overlap "
                f"(need {TEMPLATE_LENGTH + 1} rows apart)"
            )
    rng = random.Random(seed)
    prices: list[float] = []
    value = start
    index = 0
    plant_iter = iter(ordered)
    next_plant = next(plant_iter, None)
    while index < n:
        if next_plant is not None and index == next_plant + 1:
            # The anchor (position) was emitted by the background branch;
            # now splice the template body.
            for ratio in _TEMPLATE_RATIOS:
                value = round(value * ratio, 4)
                prices.append(value)
                index += 1
            next_plant = next(plant_iter, None)
            continue
        value = round(value * (1.0 + rng.uniform(-noise, noise)), 4)
        prices.append(value)
        index += 1
    return prices, ordered
