"""Synthetic daily weather observations per station.

The paper's introduction motivates SQL-TS with patterns "ranging from
very simple ones, such as finding three consecutive sunny days" to
meteorological event extraction [9].  This generator produces a
multi-station daily table::

    weather(station, date, sky, temp, rain)

- ``sky``  — 'sunny' | 'cloudy' | 'rain' (a 3-state Markov chain, so
  weather persists the way real weather does);
- ``temp`` — daily mean, seasonal sine plus noise plus a sky effect;
- ``rain`` — millimetres, positive only on rain days.

Deterministic under its seed, like every generator in ``repro.data``.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from typing import Sequence

from repro.engine.table import Schema, Table

WEATHER_SCHEMA = Schema(
    [
        ("station", "str"),
        ("date", "date"),
        ("sky", "str"),
        ("temp", "float"),
        ("rain", "float"),
    ]
)

DEFAULT_STATIONS = ("LAX", "SEA", "DEN", "MIA")

#: sky state transition probabilities (rows sum to 1).
_TRANSITIONS = {
    "sunny": (("sunny", 0.70), ("cloudy", 0.22), ("rain", 0.08)),
    "cloudy": (("sunny", 0.30), ("cloudy", 0.45), ("rain", 0.25)),
    "rain": (("sunny", 0.20), ("cloudy", 0.45), ("rain", 0.35)),
}

_SKY_TEMP_EFFECT = {"sunny": 2.5, "cloudy": 0.0, "rain": -2.0}


def _next_sky(rng: random.Random, current: str) -> str:
    roll = rng.random()
    cumulative = 0.0
    for state, probability in _TRANSITIONS[current]:
        cumulative += probability
        if roll < cumulative:
            return state
    return _TRANSITIONS[current][-1][0]


def synthetic_weather(
    stations: Sequence[str] = DEFAULT_STATIONS,
    days: int = 365,
    start_date: _dt.date = _dt.date(2000, 1, 1),
    seed: int = 42,
) -> list[dict[str, object]]:
    """Daily observations for several stations over ``days`` days."""
    rows: list[dict[str, object]] = []
    for index, station in enumerate(stations):
        rng = random.Random(seed * 100 + index)
        base_temp = 8.0 + 4.0 * index  # stations differ in climate
        sky = "cloudy"
        for offset in range(days):
            day = start_date + _dt.timedelta(days=offset)
            sky = _next_sky(rng, sky)
            seasonal = 10.0 * math.sin(2 * math.pi * (offset - 80) / 365.25)
            temp = round(
                base_temp + seasonal + _SKY_TEMP_EFFECT[sky] + rng.gauss(0, 1.8), 1
            )
            rain = round(rng.uniform(1.0, 25.0), 1) if sky == "rain" else 0.0
            rows.append(
                {
                    "station": station,
                    "date": day,
                    "sky": sky,
                    "temp": temp,
                    "rain": rain,
                }
            )
    return rows


def weather_table(
    stations: Sequence[str] = DEFAULT_STATIONS,
    days: int = 365,
    start_date: _dt.date = _dt.date(2000, 1, 1),
    seed: int = 42,
    name: str = "weather",
) -> Table:
    """The observations as an engine table."""
    table = Table(name, WEATHER_SCHEMA)
    table.insert_many(synthetic_weather(stations, days, start_date, seed))
    return table
