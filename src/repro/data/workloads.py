"""Canned SQL-TS workloads: every example query from the paper.

Each constant is the query text exactly as the paper's example poses it
(modulo whitespace); the benchmark harness and the test suite execute
them through the full parser → analyzer → OPS pipeline.
"""

from __future__ import annotations

# Example 1: two-day spike-and-drop.
EXAMPLE_1 = """
SELECT X.name
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (X, Y, Z)
WHERE Y.price > 1.15 * X.price
  AND Z.price < 0.80 * Y.price
"""

# Example 2: maximal periods in which the price fell more than 50%.
EXAMPLE_2 = """
SELECT X.name, X.date AS start_date, Z.previous.date AS end_date
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (X, *Y, Z)
WHERE Y.price < Y.previous.price
  AND Z.previous.price < 0.5 * X.price
"""

# Example 3: three consecutive closes at 10, 11, 15 (the KMP-able case).
EXAMPLE_3 = """
SELECT X.name
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (X, Y, Z)
WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15
"""

# Example 4: two successive drops into 40..50, then two increases, the
# first staying under 52 (the running example for theta/phi/S).
EXAMPLE_4 = """
SELECT X.date AS start_date, X.price, U.date AS end_date, U.price
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (X, Y, Z, T, U)
WHERE X.name='IBM'
  AND Y.price < X.price
  AND Z.price < Y.price
  AND 40 < Z.price
  AND Z.price < 50
  AND T.price > Z.price
  AND T.price < 52
  AND T.price < U.price
"""

# Example 8: rise, fall, rise — all starred.
EXAMPLE_8 = """
SELECT X.name, FIRST(X).date AS sdate, LAST(Z).date AS edate
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (*X, *Y, *Z)
WHERE X.price > X.previous.price
  AND Y.price < Y.previous.price
  AND Z.price > Z.previous.price
"""

# Example 9: the four-period 30-40 range pattern (star-case running example).
EXAMPLE_9 = """
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price
FROM quote
  CLUSTER BY name,
  SEQUENCE BY date
  AS (*X, Y, *Z, *T, U, *V, S)
WHERE X.name='IBM'
  AND X.price > X.previous.price
  AND 30 < Y.price
  AND Y.price < 40
  AND Z.price < Z.previous.price
  AND T.price > T.previous.price
  AND 35 < U.price
  AND U.price < 40
  AND V.price < V.previous.price
  AND S.price < 30
"""

# Example 10: the relaxed double-bottom on the DJIA (Section 7 headline).
EXAMPLE_10 = """
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price
FROM djia
  SEQUENCE BY date
  AS (X, *Y, *Z, *T, *U, *V, *W, *R, S)
WHERE X.price >= 0.98 * X.previous.price
  AND Y.price < 0.98 * Y.previous.price
  AND 0.98 * Z.previous.price < Z.price
  AND Z.price < 1.02 * Z.previous.price
  AND T.price > 1.02 * T.previous.price
  AND 0.98 * U.previous.price < U.price
  AND U.price < 1.02 * U.previous.price
  AND V.price < 0.98 * V.previous.price
  AND 0.98 * W.previous.price < W.price
  AND W.price < 1.02 * W.previous.price
  AND R.price > 1.02 * R.previous.price
  AND S.price <= 1.02 * S.previous.price
"""

ALL_EXAMPLES = {
    "example_1": EXAMPLE_1,
    "example_2": EXAMPLE_2,
    "example_3": EXAMPLE_3,
    "example_4": EXAMPLE_4,
    "example_8": EXAMPLE_8,
    "example_9": EXAMPLE_9,
    "example_10": EXAMPLE_10,
}

#: The Figure 5 input sequence (paper Section 4.2.1).
FIGURE5_SEQUENCE = (55, 50, 45, 57, 54, 50, 47, 49, 45, 42, 55, 57, 59, 60, 57)

#: The Section 5 counter example sequence.
STAR_COUNTER_SEQUENCE = (20, 21, 23, 24, 22, 20, 18, 15, 14, 18, 21)
