"""Seeded random-walk price generators.

:func:`geometric_walk` produces a geometric random walk — the standard
null model for index/stock closes — with optional fat-tail "shock" days.
All generators take an explicit seed and are deterministic, so tests and
benchmarks are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Sequence


def geometric_walk(
    n: int,
    start: float = 100.0,
    drift: float = 0.0003,
    volatility: float = 0.01,
    shock_probability: float = 0.01,
    shock_scale: float = 3.0,
    seed: int = 0,
) -> list[float]:
    """A geometric random walk of ``n`` prices.

    Daily log-return ~ Normal(drift, volatility), with probability
    ``shock_probability`` scaled by ``shock_scale`` (fat tails — real
    indexes have far more >2% days than a plain Gaussian walk, and the
    paper's relaxed double-bottom query is all about >2% moves).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = random.Random(seed)
    prices: list[float] = []
    price = start
    for _ in range(n):
        sigma = volatility * (shock_scale if rng.random() < shock_probability else 1.0)
        price *= math.exp(rng.gauss(drift, sigma))
        prices.append(round(price, 2))
    return prices


def regime_switching_walk(
    n: int,
    start: float = 100.0,
    drift: float = 0.0003,
    calm_volatility: float = 0.006,
    turbulent_volatility: float = 0.022,
    calm_persistence: float = 0.995,
    turbulent_persistence: float = 0.94,
    seed: int = 0,
) -> list[float]:
    """A two-regime geometric walk with volatility clustering.

    Real index series alternate long calm stretches (months below the
    paper's 2% band — the runs the relaxed flat-star elements consume)
    with turbulent bursts of consecutive >2% days.  A two-state Markov
    regime switch reproduces that clustering, which i.i.d. shocks cannot:
    the persistence parameters are the probabilities of *staying* in the
    current regime each day.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    for name, p in (
        ("calm_persistence", calm_persistence),
        ("turbulent_persistence", turbulent_persistence),
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be a probability, got {p}")
    rng = random.Random(seed)
    prices: list[float] = []
    price = start
    turbulent = False
    for _ in range(n):
        stay = turbulent_persistence if turbulent else calm_persistence
        if rng.random() >= stay:
            turbulent = not turbulent
        sigma = turbulent_volatility if turbulent else calm_volatility
        price *= math.exp(rng.gauss(drift, sigma))
        prices.append(round(price, 2))
    return prices


def sawtooth(
    n: int,
    start: float = 50.0,
    floor: float = 8.0,
    min_run: int = 8,
    max_run: int = 25,
    min_step: float = 0.5,
    max_step: float = 1.5,
    seed: int = 1,
) -> list[float]:
    """Alternating monotone rise/fall runs of random length.

    The workload behind the complex-pattern sweep: long strictly-monotone
    runs make restart-at-start+1 baselines quadratic in the run length
    while OPS stays linear.  The price never goes below ``floor``.
    """
    if min_run < 1 or max_run < min_run:
        raise ValueError("need 1 <= min_run <= max_run")
    rng = random.Random(seed)
    prices: list[float] = []
    price = start
    direction = 1
    remaining = 0
    for _ in range(n):
        if remaining <= 0:
            direction = -direction
            remaining = rng.randint(min_run, max_run)
        price = max(floor, price + direction * rng.uniform(min_step, max_step))
        prices.append(round(price, 2))
        remaining -= 1
    return prices


def runs_histogram(prices: Sequence[float], band: float = 0.0) -> dict[str, int]:
    """Counts of up/down/flat day-over-day moves, with a relative band.

    A move within ``±band`` (relative) counts as flat — the paper's
    "relaxed" treatment with ``band = 0.02``.  Used by tests to check the
    synthetic series has realistic move statistics.
    """
    counts = {"up": 0, "down": 0, "flat": 0}
    for previous, current in zip(prices, prices[1:]):
        if current > previous * (1.0 + band):
            counts["up"] += 1
        elif current < previous * (1.0 - band):
            counts["down"] += 1
        else:
            counts["flat"] += 1
    return counts
