"""Synthetic datasets standing in for the paper's inputs.

The paper evaluates on 25 years of DJIA daily closes and on stock quote
tables.  Neither is shippable here, so this subpackage generates
deterministic, seeded substitutes whose *shape statistics* (daily return
volatility, frequency of >2% moves, run lengths of rises/falls) drive the
OPS-vs-naive comparison exactly as the real data would — see DESIGN.md
for the substitution argument.
"""

from repro.data.random_walk import (
    geometric_walk,
    regime_switching_walk,
    runs_histogram,
    sawtooth,
)
from repro.data.djia import synthetic_djia, djia_table
from repro.data.quotes import quote_table, synthetic_quotes
from repro.data.weather import synthetic_weather, weather_table
from repro.data.planted import plant_double_bottoms

__all__ = [
    "geometric_walk",
    "regime_switching_walk",
    "sawtooth",
    "runs_histogram",
    "synthetic_djia",
    "djia_table",
    "quote_table",
    "synthetic_quotes",
    "synthetic_weather",
    "weather_table",
    "plant_double_bottoms",
]
