"""A deterministic synthetic substitute for 25 years of DJIA daily closes.

The paper's Section 7 experiment searches "the recorded closing value of
the DJIA (Dow Jones Industrial Average) index for the last 25 years" for
relaxed double-bottom patterns.  That historical series is not available
offline, so :func:`synthetic_djia` generates a seeded geometric random
walk over the same calendar span (1976-01-02 through 2000-12-29, business
days only, ~6260 observations) with volatility and fat-tail parameters
chosen so that the >2% move frequency — the statistic the relaxed
double-bottom predicate keys on — is in the historical ballpark (a few
percent of days).

Determinism: the default seed is fixed, so every test, example, and
benchmark sees the identical series.
"""

from __future__ import annotations

import datetime as _dt

from repro.data.random_walk import regime_switching_walk
from repro.engine.table import Schema, Table

#: Calendar span mirroring "the last 25 years" from the paper's vantage.
START_DATE = _dt.date(1976, 1, 2)
END_DATE = _dt.date(2000, 12, 29)
DEFAULT_SEED = 20010521  # PODS 2001 started May 21, 2001


def business_days(start: _dt.date, end: _dt.date) -> list[_dt.date]:
    """All Monday–Friday dates in [start, end] (holidays not modelled)."""
    days = []
    current = start
    one = _dt.timedelta(days=1)
    while current <= end:
        if current.weekday() < 5:
            days.append(current)
        current += one
    return days


def synthetic_djia(seed: int = DEFAULT_SEED) -> list[tuple[_dt.date, float]]:
    """The synthetic 25-year index: (date, close) pairs, ~6260 rows.

    Starts near the DJIA's 1976 level (~850) and drifts upward the way
    the index did over that span.  Volatility is regime-switching (calm
    ~0.6%, turbulent ~2.2% daily) so that, like the real index, >2% moves
    cluster into bursts separated by long calm stretches — the run-length
    statistics the relaxed double-bottom workload is sensitive to.
    """
    days = business_days(START_DATE, END_DATE)
    closes = regime_switching_walk(
        n=len(days),
        start=852.0,
        drift=0.00040,
        calm_volatility=0.006,
        turbulent_volatility=0.022,
        calm_persistence=0.995,
        turbulent_persistence=0.94,
        seed=seed,
    )
    return list(zip(days, closes))


DJIA_SCHEMA = Schema([("date", "date"), ("price", "float")])


def djia_table(seed: int = DEFAULT_SEED, name: str = "djia") -> Table:
    """The synthetic series as an engine table (columns: date, price)."""
    table = Table(name, DJIA_SCHEMA)
    table.insert_many(
        {"date": day, "price": close} for day, close in synthetic_djia(seed)
    )
    return table
