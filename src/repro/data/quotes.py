"""Multi-stock quote tables (the paper's CREATE TABLE quote).

    CREATE TABLE quote (name Varchar(8), date Date, price Integer)

:func:`synthetic_quotes` generates per-stock random walks;
:func:`quote_table` wraps them in an engine table.  Rows are emitted
interleaved across stocks and shuffled within a small window, so CLUSTER
BY / SEQUENCE BY actually have work to do (the paper's Figure 1 point:
cluster groups are "not necessarily ordered").
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Sequence

from repro.data.random_walk import geometric_walk
from repro.engine.table import Schema, Table

QUOTE_SCHEMA = Schema([("name", "str"), ("date", "date"), ("price", "float")])

DEFAULT_TICKERS = ("IBM", "INTC", "MSFT", "GE", "XOM", "KO", "MRK", "PG")


def synthetic_quotes(
    tickers: Sequence[str] = DEFAULT_TICKERS,
    days: int = 500,
    start_date: _dt.date = _dt.date(1999, 1, 4),
    seed: int = 7,
) -> list[dict[str, object]]:
    """Quote rows for several stocks, shuffled within a 5-day window."""
    rng = random.Random(seed)
    dates: list[_dt.date] = []
    current = start_date
    one = _dt.timedelta(days=1)
    while len(dates) < days:
        if current.weekday() < 5:
            dates.append(current)
        current += one
    rows: list[dict[str, object]] = []
    for index, ticker in enumerate(tickers):
        start_price = 20.0 + 15.0 * index + rng.random() * 10.0
        prices = geometric_walk(
            n=days,
            start=start_price,
            drift=0.0002,
            volatility=0.015,
            shock_probability=0.015,
            shock_scale=3.0,
            seed=seed * 1000 + index,
        )
        rows.extend(
            {"name": ticker, "date": day, "price": price}
            for day, price in zip(dates, prices)
        )
    # Shuffle lightly so clusters arrive unordered (Figure 1).
    for i in range(0, len(rows) - 5, 5):
        window = rows[i : i + 5]
        rng.shuffle(window)
        rows[i : i + 5] = window
    return rows


def quote_table(
    tickers: Sequence[str] = DEFAULT_TICKERS,
    days: int = 500,
    start_date: _dt.date = _dt.date(1999, 1, 4),
    seed: int = 7,
    name: str = "quote",
) -> Table:
    """The quote rows as an engine table."""
    table = Table(name, QUOTE_SCHEMA)
    table.insert_many(synthetic_quotes(tickers, days, start_date, seed))
    return table
