"""Hand-written lexer for SQL-TS.

Produces a flat token list for the recursive-descent parser.  SQL
conventions apply: keywords are case-insensitive, strings use single
quotes with ``''`` as the escape for a literal quote, and both ``<>`` and
``!=`` spell inequality.
"""

from __future__ import annotations

from repro.errors import SqlTsSyntaxError
from repro.sqlts.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPERATORS = "<>=+-/"
_PUNCT = "(),."


class Lexer:
    """Tokenizes one SQL-TS statement."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, "", self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            word = self._read_while(lambda c: c.isalnum() or c == "_")
            upper = word.upper()
            if upper in KEYWORDS:
                return Token(TokenType.KEYWORD, upper, line, column)
            return Token(TokenType.IDENT, word, line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return Token(TokenType.NUMBER, self._read_number(), line, column)
        if ch == "'":
            return Token(TokenType.STRING, self._read_string(), line, column)
        two = self._text[self._pos : self._pos + 2]
        if two in _TWO_CHAR_OPERATORS:
            self._advance(2)
            return Token(TokenType.OPERATOR, "!=" if two == "<>" else two, line, column)
        if ch == "*":
            self._advance()
            return Token(TokenType.STAR, "*", line, column)
        if ch in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line, column)
        if ch in _PUNCT:
            self._advance()
            return Token(TokenType.PUNCT, ch, line, column)
        raise SqlTsSyntaxError(f"unexpected character {ch!r}", line, column)

    def _read_while(self, keep) -> str:
        start = self._pos
        while self._pos < len(self._text) and keep(self._peek()):
            self._advance()
        return self._text[start : self._pos]

    def _read_number(self) -> str:
        start = self._pos
        self._read_while(str.isdigit)
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            self._read_while(str.isdigit)
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            self._read_while(str.isdigit)
        return self._text[start : self._pos]

    def _read_string(self) -> str:
        line, column = self._line, self._column
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise SqlTsSyntaxError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":  # escaped quote
                    self._advance()
                    pieces.append("'")
                else:
                    return "".join(pieces)
            else:
                pieces.append(ch)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize one SQL-TS statement."""
    return Lexer(text).tokenize()
