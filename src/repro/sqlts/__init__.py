"""The SQL-TS language front-end (paper Section 2).

SQL-TS — the Simple Query Language for Time Series — extends SQL's FROM
clause with:

- ``CLUSTER BY`` attributes: each cluster is processed as a separate
  stream;
- ``SEQUENCE BY`` attributes: the traversal order within a cluster;
- an ``AS (X, *Y, Z)`` pattern of tuple variables, where a ``*`` marks a
  repeating (one-or-more, maximal) element;
- ``previous`` / ``next`` navigation on tuple variables and
  ``FIRST()`` / ``LAST()`` accessors for starred variables.

This subpackage provides the lexer, recursive-descent parser, AST, and
the semantic analyzer that assigns WHERE conjuncts to pattern elements
and produces a :class:`~repro.pattern.spec.PatternSpec` ready for the OPS
compiler.
"""

from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import AnalyzedQuery, analyze

__all__ = ["parse_query", "analyze", "AnalyzedQuery"]
