"""Token definitions for the SQL-TS lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"  # comparison and arithmetic operators
    PUNCT = "punct"  # ( ) , .
    STAR = "star"  # '*' — multiplication or pattern star, parser decides
    EOF = "eof"


#: Reserved words, matched case-insensitively and normalized to upper case.
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "CLUSTER",
        "SEQUENCE",
        "BY",
        "AS",
        "AND",
        "OR",
        "NOT",
        "FIRST",
        "LAST",
    }
)

#: Navigation attributes on tuple variables (case-insensitive).
NAVIGATION = frozenset({"PREVIOUS", "NEXT"})


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def __str__(self) -> str:
        return f"{self.type.value}:{self.value!r}@{self.line}:{self.column}"
