"""Semantic analysis: from a parsed SQL-TS query to a PatternSpec.

The analyzer performs the paper's (implicit) query-compilation front half:

1. **Validation** — pattern variables are unique; every WHERE/SELECT
   reference names a declared variable; ``FIRST``/``LAST`` are only
   applied to starred variables that are already bound when the condition
   runs.

2. **Cluster-filter hoisting** — a conjunct whose attribute references
   are all CLUSTER BY attributes (constant within a cluster, e.g.
   ``X.name = 'IBM'`` under ``CLUSTER BY name``) is hoisted out of the
   pattern and applied once per cluster.  This reproduces the paper's
   treatment of Example 4/9, whose theta/phi matrices ignore the
   ``name = 'IBM'`` selection.

3. **Conjunct assignment** — each remaining WHERE conjunct is attached to
   the *latest* pattern variable it mentions (the element whose matching
   triggers its evaluation).

4. **Symbolization** — each conjunct is translated, when possible, into a
   :class:`~repro.pattern.predicates.ComparisonCondition` over the
   current tuple and fixed sequence offsets, which is what feeds the
   theta/phi analysis.  A reference to an earlier variable ``W`` from
   element ``V``'s condition becomes a fixed negative offset exactly when
   every element from ``W`` through ``V`` is star-free (otherwise the
   distance is variable and the conjunct stays a *residual*: enforced at
   runtime through the element bindings, treated as ``U`` at compile
   time).  OR/NOT conjuncts likewise stay residuals at this surface level
   (the DNF reasoning of :mod:`repro.constraints.dnf` is available to
   programmatic pattern builders).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constraints.atoms import Op
from repro.errors import SemanticError
from repro.pattern.predicates import (
    Attr,
    AttributeDomains,
    ComparisonCondition,
    Condition,
    EvalContext,
    ElementPredicate,
    LinearTerm,
    ResidualCondition,
    StringEqualityCondition,
)
from repro.pattern.spec import PatternElement, PatternSpec
from repro.sqlts import ast
from repro.sqlts.codegen import lower_residual
from repro.sqlts.expressions import evaluate_condition


@dataclass(frozen=True)
class AnalyzedQuery:
    """The result of semantic analysis, ready for pattern compilation."""

    query: ast.Query
    spec: PatternSpec
    cluster_filter: tuple[ast.Cond, ...]
    stars: dict[str, bool]

    @property
    def select(self) -> tuple[ast.SelectItem, ...]:
        return self.query.select

    @property
    def table(self) -> str:
        return self.query.table

    @property
    def cluster_by(self) -> tuple[str, ...]:
        return self.query.cluster_by

    @property
    def sequence_by(self) -> tuple[str, ...]:
        return self.query.sequence_by


def analyze(query: ast.Query, domains: Optional[AttributeDomains] = None) -> AnalyzedQuery:
    """Run semantic analysis on a parsed query."""
    domains = domains if domains is not None else AttributeDomains.none()
    positions: dict[str, int] = {}
    stars: dict[str, bool] = {}
    for index, var in enumerate(query.pattern, start=1):
        if var.name in positions:
            raise SemanticError(f"duplicate pattern variable {var.name!r}")
        positions[var.name] = index
        stars[var.name] = var.star

    _validate_references(query, positions, stars)

    cluster_filter: list[ast.Cond] = []
    assigned: dict[str, list[ast.Cond]] = {name: [] for name in positions}
    # Normalize NOT away first, so e.g. NOT (a OR b) splits into two
    # analyzable conjuncts instead of one opaque residual.
    where = _push_negation(query.where) if query.where is not None else None
    for conjunct in ast.conjuncts(where):
        mentioned = _vars_in_condition(conjunct)
        if not mentioned:
            raise SemanticError(f"condition references no pattern variable: {conjunct}")
        if _is_cluster_invariant(conjunct, query.cluster_by):
            cluster_filter.append(conjunct)
            continue
        latest = max(mentioned, key=positions.__getitem__)
        assigned[latest].append(conjunct)

    elements = []
    for var in query.pattern:
        conditions = [
            _convert_conjunct(conjunct, var.name, positions, stars, domains)
            for conjunct in assigned[var.name]
        ]
        predicate = ElementPredicate(conditions, domains=domains, label=var.name)
        elements.append(PatternElement(var.name, predicate, star=var.star))
    spec = PatternSpec(elements)
    return AnalyzedQuery(
        query=query,
        spec=spec,
        cluster_filter=tuple(cluster_filter),
        stars=stars,
    )


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _validate_references(
    query: ast.Query, positions: dict[str, int], stars: dict[str, bool]
) -> None:
    for item in query.select:
        for path in _paths_in_expr(item.expr):
            _check_path(path, positions, stars)
    for conjunct in ast.conjuncts(query.where):
        for path in _paths_in_condition(conjunct):
            _check_path(path, positions, stars)


def _check_path(path: ast.VarPath, positions: dict[str, int], stars: dict[str, bool]) -> None:
    if path.var not in positions:
        raise SemanticError(f"unknown pattern variable {path.var!r} in {path}")
    if path.accessor and not stars[path.var]:
        raise SemanticError(
            f"{path.accessor.upper()}() applies to starred variables only: {path}"
        )


# ----------------------------------------------------------------------
# Condition traversal helpers
# ----------------------------------------------------------------------


def _paths_in_expr(expr: ast.Expr) -> list[ast.VarPath]:
    if isinstance(expr, ast.VarPath):
        return [expr]
    if isinstance(expr, ast.BinOp):
        return _paths_in_expr(expr.left) + _paths_in_expr(expr.right)
    if isinstance(expr, ast.Neg):
        return _paths_in_expr(expr.operand)
    return []


def _paths_in_condition(condition: ast.Cond) -> list[ast.VarPath]:
    if isinstance(condition, ast.Comparison):
        return _paths_in_expr(condition.left) + _paths_in_expr(condition.right)
    if isinstance(condition, (ast.And, ast.Or)):
        return _paths_in_condition(condition.left) + _paths_in_condition(condition.right)
    if isinstance(condition, ast.Not):
        return _paths_in_condition(condition.operand)
    raise SemanticError(f"unsupported condition node: {condition!r}")


def _vars_in_condition(condition: ast.Cond) -> set[str]:
    return {path.var for path in _paths_in_condition(condition)}


def _is_cluster_invariant(condition: ast.Cond, cluster_by: tuple[str, ...]) -> bool:
    """True when every reference is a bare CLUSTER BY attribute."""
    paths = _paths_in_condition(condition)
    return bool(cluster_by) and all(
        not path.navigation and path.accessor is None and path.attr in cluster_by
        for path in paths
    )


# ----------------------------------------------------------------------
# Conjunct -> Condition conversion
# ----------------------------------------------------------------------


def _convert_conjunct(
    conjunct: ast.Cond,
    element_var: str,
    positions: dict[str, int],
    stars: dict[str, bool],
    domains: AttributeDomains,
) -> Condition:
    conjunct = _push_negation(conjunct)
    if isinstance(conjunct, ast.Comparison):
        converted = _convert_comparison(conjunct, element_var, positions, stars)
        if converted is not None:
            return converted
    if isinstance(conjunct, ast.Or):
        disjunctive = _convert_disjunction(conjunct, element_var, positions, stars)
        if disjunctive is not None:
            return disjunctive
    return _residual(conjunct, element_var)


_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _push_negation(condition: ast.Cond) -> ast.Cond:
    """Eliminate NOT by De Morgan / operator negation where possible.

    ``NOT (a < b)`` becomes ``a >= b``; ``NOT (p AND q)`` becomes
    ``NOT p OR NOT q`` and so on, recursively — so negated conditions
    reach the symbolizer in positive form and stay analyzable.
    """
    if isinstance(condition, ast.Not):
        inner = _push_negation(condition.operand)
        if isinstance(inner, ast.Comparison):
            return ast.Comparison(_NEGATED_OP[inner.op], inner.left, inner.right)
        if isinstance(inner, ast.And):
            return ast.Or(
                _push_negation(ast.Not(inner.left)),
                _push_negation(ast.Not(inner.right)),
            )
        if isinstance(inner, ast.Or):
            return ast.And(
                _push_negation(ast.Not(inner.left)),
                _push_negation(ast.Not(inner.right)),
            )
        if isinstance(inner, ast.Not):
            return _push_negation(inner.operand)
        return ast.Not(inner)
    if isinstance(condition, ast.And):
        return ast.And(_push_negation(condition.left), _push_negation(condition.right))
    if isinstance(condition, ast.Or):
        return ast.Or(_push_negation(condition.left), _push_negation(condition.right))
    return condition


def _convert_disjunction(
    conjunct: ast.Or,
    element_var: str,
    positions: dict[str, int],
    stars: dict[str, bool],
) -> Optional[Condition]:
    """Translate an OR conjunct into an analyzable OrCondition.

    The Section 8 disjunction extension: each OR branch is a conjunction
    of comparisons; when every leaf symbolizes over the current tuple,
    the whole conjunct contributes a DNF to the element predicate and the
    theta/phi analysis reasons about it.  Any untranslatable leaf makes
    the caller fall back to a residual (still enforced at runtime).
    """
    from repro.pattern.predicates import OrCondition

    branches: list[list[Condition]] = []
    for disjunct in _flatten_or(conjunct):
        branch: list[Condition] = []
        for leaf in ast.conjuncts(disjunct):
            if not isinstance(leaf, ast.Comparison):
                return None
            converted = _convert_comparison(leaf, element_var, positions, stars)
            if converted is None:
                return None
            branch.append(converted)
        branches.append(branch)
    return OrCondition(branches)


def _flatten_or(condition: ast.Cond) -> list[ast.Cond]:
    if isinstance(condition, ast.Or):
        return _flatten_or(condition.left) + _flatten_or(condition.right)
    return [condition]


def _convert_comparison(
    comparison: ast.Comparison,
    element_var: str,
    positions: dict[str, int],
    stars: dict[str, bool],
) -> Optional[Condition]:
    op = Op(comparison.op)
    # String equality against an attribute resolvable to a fixed offset.
    for lhs, rhs, effective in (
        (comparison.left, comparison.right, op),
        (comparison.right, comparison.left, op),
    ):
        if isinstance(rhs, ast.StringLit) and isinstance(lhs, ast.VarPath):
            attr = _fixed_offset_attr(lhs, element_var, positions, stars)
            if attr is not None and effective in (Op.EQ, Op.NE):
                return StringEqualityCondition(attr, effective, rhs.value)
            return None
    left = _linear_term(comparison.left, element_var, positions, stars)
    right = _linear_term(comparison.right, element_var, positions, stars)
    if left is None or right is None:
        return None
    return ComparisonCondition(left, op, right)


def _fixed_offset_attr(
    path: ast.VarPath,
    element_var: str,
    positions: dict[str, int],
    stars: dict[str, bool],
) -> Optional[Attr]:
    """Resolve a path to a fixed sequence offset from the current tuple.

    Returns None when the distance is variable (stars in between, starred
    endpoints, or FIRST/LAST accessors) — the caller falls back to a
    residual condition.
    """
    if path.accessor is not None:
        return None
    offset = sum(-1 if step == "previous" else 1 for step in path.navigation)
    if path.var == element_var:
        return Attr(path.attr, offset)
    v = positions[element_var]
    q = positions[path.var]
    if q > v:
        raise SemanticError(
            f"condition on {element_var!r} references the later variable {path.var!r}"
        )
    if stars[path.var] or stars[element_var]:
        return None
    if any(stars[name] for name, pos in positions.items() if q < pos < v):
        return None
    return Attr(path.attr, offset - (v - q))


def _linear_term(
    expr: ast.Expr,
    element_var: str,
    positions: dict[str, int],
    stars: dict[str, bool],
) -> Optional[LinearTerm]:
    """Fold an expression into ``coefficient * attr + constant`` if possible."""
    if isinstance(expr, ast.NumberLit):
        return LinearTerm(0.0, None, expr.value)
    if isinstance(expr, ast.VarPath):
        attr = _fixed_offset_attr(expr, element_var, positions, stars)
        return None if attr is None else LinearTerm(1.0, attr, 0.0)
    if isinstance(expr, ast.Neg):
        inner = _linear_term(expr.operand, element_var, positions, stars)
        if inner is None:
            return None
        return LinearTerm(-inner.coefficient, inner.attr, -inner.constant)
    if isinstance(expr, ast.BinOp):
        left = _linear_term(expr.left, element_var, positions, stars)
        right = _linear_term(expr.right, element_var, positions, stars)
        if left is None or right is None:
            return None
        if expr.op in ("+", "-"):
            sign = 1.0 if expr.op == "+" else -1.0
            if left.attr is not None and right.attr is not None:
                return None  # two attributes on one side: not linear-in-one
            if left.attr is not None:
                return LinearTerm(
                    left.coefficient, left.attr, left.constant + sign * right.constant
                )
            return LinearTerm(
                sign * right.coefficient, right.attr, left.constant + sign * right.constant
            )
        if expr.op == "*":
            if left.attr is not None and right.attr is not None:
                return None
            if left.attr is None:
                scale, term = left.constant, right
            else:
                scale, term = right.constant, left
            return LinearTerm(term.coefficient * scale, term.attr, term.constant * scale)
        if expr.op == "/":
            if right.attr is not None or right.constant == 0:
                return None
            return LinearTerm(
                left.coefficient / right.constant, left.attr, left.constant / right.constant
            )
    return None


def _residual(conjunct: ast.Cond, element_var: str) -> ResidualCondition:
    """Wrap a conjunct for generic runtime evaluation via bindings.

    The current element is temporarily bound to the tuple under test, so
    references to it (bare or via previous/next) resolve against the
    cursor position, while earlier elements resolve through their spans.
    A pre-lowered fast form (see :mod:`repro.sqlts.codegen`) is attached
    so the compiled evaluation path covers the residual too.
    """

    def evaluate(ctx: EvalContext) -> bool:
        bindings = dict(ctx.bindings)
        bindings[element_var] = (ctx.index, ctx.index)
        return evaluate_condition(conjunct, ctx.rows, bindings, {})

    return ResidualCondition(
        evaluate,
        description=str(conjunct),
        fast=lower_residual(conjunct, element_var),
    )
