"""Lowering WHERE residuals to closures (the SQL-TS half of codegen).

The semantic analyzer turns every WHERE conjunct it cannot express as a
fixed-offset comparison into a
:class:`~repro.pattern.predicates.ResidualCondition` that re-walks the
condition AST through :func:`repro.sqlts.expressions.evaluate_condition`
on every predicate test.  :func:`lower_residual` compiles the same AST
once, at analysis time, into a closure

    evaluate(rows, index, bindings) -> bool

with variable spans, navigation offsets, and arithmetic operators
resolved ahead of time.  The closure is attached to the residual's
``fast`` slot and picked up by :mod:`repro.pattern.codegen`.

The contract is exact observational equivalence with the interpreted
walk, including its error behavior:

- off-end navigation makes a comparison **False** (``_OffEnd``);
- an unbound pattern variable, an unknown attribute, arithmetic on
  non-numeric values, and division by zero raise the same
  :class:`~repro.errors.ExecutionError` with the same message — the
  lowered code calls the interpreter's own ``_require_number`` /
  ``_compare`` helpers rather than reimplementing them;
- the current element is bound to the tuple under test, mirroring
  ``semantic._residual``.

Any AST node outside the supported fragment makes the lowering return
``None``; the residual then simply has no fast form and the element falls
back to interpreted evaluation.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.sqlts import ast
from repro.sqlts.expressions import _compare, _OffEnd, _require_number

#: (rows, index, bindings) -> bool, matching the pattern-codegen signature.
LoweredResidual = Callable[
    [Sequence[Mapping[str, object]], int, Mapping[str, tuple[int, int]]], bool
]

#: (rows, index, bindings) -> value; raises _OffEnd on off-end navigation.
_LoweredExpr = Callable[
    [Sequence[Mapping[str, object]], int, Mapping[str, tuple[int, int]]], object
]


def lower_residual(
    condition: ast.Cond, element_var: str
) -> Optional[LoweredResidual]:
    """Compile a residual WHERE conjunct, or None if any node is foreign."""
    try:
        return _lower_cond(condition, element_var)
    except _Unsupported:
        return None


class _Unsupported(Exception):
    """Internal: the condition contains a node codegen does not cover."""


def _lower_cond(condition: ast.Cond, element_var: str) -> LoweredResidual:
    if isinstance(condition, ast.Comparison):
        left = _lower_expr(condition.left, element_var)
        right = _lower_expr(condition.right, element_var)
        op = condition.op

        def evaluate(rows, index, bindings):
            try:
                left_value = left(rows, index, bindings)
                right_value = right(rows, index, bindings)
            except _OffEnd:
                return False
            return _compare(op, left_value, right_value)

        return evaluate
    if isinstance(condition, ast.And):
        first = _lower_cond(condition.left, element_var)
        second = _lower_cond(condition.right, element_var)
        return lambda rows, index, bindings: (
            first(rows, index, bindings) and second(rows, index, bindings)
        )
    if isinstance(condition, ast.Or):
        first = _lower_cond(condition.left, element_var)
        second = _lower_cond(condition.right, element_var)
        return lambda rows, index, bindings: (
            first(rows, index, bindings) or second(rows, index, bindings)
        )
    if isinstance(condition, ast.Not):
        inner = _lower_cond(condition.operand, element_var)
        return lambda rows, index, bindings: not inner(rows, index, bindings)
    raise _Unsupported(condition)


def _lower_expr(expr: ast.Expr, element_var: str) -> _LoweredExpr:
    if isinstance(expr, (ast.NumberLit, ast.StringLit)):
        value = expr.value
        return lambda rows, index, bindings: value
    if isinstance(expr, ast.VarPath):
        return _lower_var_path(expr, element_var)
    if isinstance(expr, ast.Neg):
        operand = _lower_expr(expr.operand, element_var)
        return lambda rows, index, bindings: -_require_number(
            operand(rows, index, bindings)
        )
    if isinstance(expr, ast.BinOp):
        return _lower_binop(expr, element_var)
    raise _Unsupported(expr)


def _lower_var_path(path: ast.VarPath, element_var: str) -> _LoweredExpr:
    var, attr = path.var, path.attr
    offset = sum(-1 if step == "previous" else 1 for step in path.navigation)
    use_last = path.accessor == "last"
    current = var == element_var

    def evaluate(rows, index, bindings):
        if current:
            # semantic._residual binds the element under test to
            # (index, index), so every accessor resolves to the cursor.
            base = index
        else:
            try:
                span = bindings[var]
            except KeyError:
                raise ExecutionError(
                    f"pattern variable {var!r} is not bound"
                ) from None
            base = span[1] if use_last else span[0]
        position = base + offset
        if position < 0 or position >= len(rows):
            raise _OffEnd()
        row = rows[position]
        if attr not in row:
            raise ExecutionError(f"unknown attribute {attr!r}")
        return row[attr]

    return evaluate


def _lower_binop(expr: ast.BinOp, element_var: str) -> _LoweredExpr:
    left = _lower_expr(expr.left, element_var)
    right = _lower_expr(expr.right, element_var)
    op = expr.op
    if op == "+":
        return lambda rows, index, bindings: _require_number(
            left(rows, index, bindings)
        ) + _require_number(right(rows, index, bindings))
    if op == "-":
        return lambda rows, index, bindings: _require_number(
            left(rows, index, bindings)
        ) - _require_number(right(rows, index, bindings))
    if op == "*":
        return lambda rows, index, bindings: _require_number(
            left(rows, index, bindings)
        ) * _require_number(right(rows, index, bindings))
    if op == "/":

        def divide(rows, index, bindings):
            numerator = _require_number(left(rows, index, bindings))
            denominator = _require_number(right(rows, index, bindings))
            if denominator == 0:
                raise ExecutionError("division by zero in expression")
            return numerator / denominator

        return divide
    raise _Unsupported(expr)
