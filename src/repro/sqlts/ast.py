"""AST node definitions for SQL-TS queries.

The tree mirrors the paper's surface syntax: a query has a SELECT list,
one source table, optional CLUSTER BY / SEQUENCE BY attribute lists, an
AS pattern of (possibly starred) tuple variables, and a WHERE condition.

Expression nodes are deliberately small — numbers, strings, column paths
with navigation, arithmetic, comparisons, and boolean connectives — which
is the fragment SQL-TS queries in the paper use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    value: float

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class StringLit:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class VarPath:
    """A tuple-variable attribute reference with optional navigation.

    ``var`` is the pattern variable; ``accessor`` is None, "first", or
    "last" (for ``FIRST(X).attr`` / ``LAST(X).attr``); ``navigation`` is a
    tuple of "previous"/"next" steps applied left to right; ``attr`` is
    the final attribute name.  Examples::

        X.price                  VarPath("X", None, (), "price")
        Z.previous.date          VarPath("Z", None, ("previous",), "date")
        FIRST(X).date            VarPath("X", "first", (), "date")
        X.NEXT.price             VarPath("X", None, ("next",), "price")
    """

    var: str
    accessor: Optional[str]
    navigation: tuple[str, ...]
    attr: str

    def __str__(self) -> str:
        base = f"{self.accessor.upper()}({self.var})" if self.accessor else self.var
        steps = "".join(f".{step}" for step in self.navigation)
        return f"{base}{steps}.{self.attr}"


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: ``left op right`` with op one of ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Neg:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(-{self.operand})"


Expr = Union[NumberLit, StringLit, VarPath, BinOp, Neg]


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op one of ``= != < <= > >=``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And:
    left: "Cond"
    right: "Cond"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or:
    left: "Cond"
    right: "Cond"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "Cond"

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


Cond = Union[Comparison, And, Or, Not]


def conjuncts(condition: Optional[Cond]) -> list[Cond]:
    """Flatten top-level ANDs into a conjunct list (None -> empty)."""
    if condition is None:
        return []
    if isinstance(condition, And):
        return conjuncts(condition.left) + conjuncts(condition.right)
    return [condition]


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, VarPath):
            return str(self.expr)
        return f"col{position}"


@dataclass(frozen=True)
class PatternVar:
    """One AS-clause entry: a tuple variable, possibly starred."""

    name: str
    star: bool = False

    def __str__(self) -> str:
        return ("*" if self.star else "") + self.name


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    table: str
    cluster_by: tuple[str, ...]
    sequence_by: tuple[str, ...]
    pattern: tuple[PatternVar, ...]
    where: Optional[Cond]

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(item.expr) for item in self.select)]
        parts.append(f"FROM {self.table}")
        if self.cluster_by:
            parts.append("CLUSTER BY " + ", ".join(self.cluster_by))
        if self.sequence_by:
            parts.append("SEQUENCE BY " + ", ".join(self.sequence_by))
        parts.append("AS (" + ", ".join(str(v) for v in self.pattern) + ")")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        return "\n".join(parts)
