"""DDL and DML statements: CREATE TABLE and INSERT.

The paper's Section 2 opens with

    CREATE TABLE quote ( name Varchar(8), date Date, price Integer )

so the substrate accepts that statement class (plus INSERT ... VALUES) in
addition to SQL-TS queries, making :class:`repro.engine.session.Session`
a self-contained miniature sequence database.

SQL type names map onto the engine's four storage types:

    VARCHAR(n) / CHAR(n) / TEXT           -> str
    DATE                                   -> date
    INTEGER / INT / SMALLINT / BIGINT      -> int
    REAL / FLOAT / DOUBLE / NUMERIC / DECIMAL -> float

Note the deliberate deviation for ``price Integer``: the engine stores
prices as they arrive — INSERT accepts both int and float literals for
numeric columns, with ints widening to float where declared.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SqlTsSyntaxError
from repro.sqlts.lexer import tokenize
from repro.sqlts.tokens import Token, TokenType

#: SQL type name (upper-cased) -> engine storage type.
TYPE_MAP = {
    "VARCHAR": "str",
    "CHAR": "str",
    "TEXT": "str",
    "STRING": "str",
    "DATE": "date",
    "INTEGER": "int",
    "INT": "int",
    "SMALLINT": "int",
    "BIGINT": "int",
    "REAL": "float",
    "FLOAT": "float",
    "DOUBLE": "float",
    "NUMERIC": "float",
    "DECIMAL": "float",
}


@dataclass(frozen=True)
class CreateTable:
    """A parsed CREATE TABLE statement."""

    name: str
    columns: tuple[tuple[str, str], ...]  # (column, engine type)


@dataclass(frozen=True)
class Insert:
    """A parsed INSERT ... VALUES statement (possibly multi-row)."""

    table: str
    columns: Optional[tuple[str, ...]]
    rows: tuple[tuple[object, ...], ...]


Statement = Union[CreateTable, Insert]


class _DdlParser:
    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> SqlTsSyntaxError:
        token = self._peek()
        return SqlTsSyntaxError(
            f"{message} (found {token.value!r})", token.line, token.column
        )

    def _expect_word(self, word: str) -> None:
        token = self._peek()
        if token.type not in (TokenType.IDENT, TokenType.KEYWORD) or (
            token.value.upper() != word
        ):
            raise self._error(f"expected {word}")
        self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected an identifier")
        return self._advance().value

    def _expect_punct(self, symbol: str) -> None:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != symbol:
            raise self._error(f"expected {symbol!r}")
        self._advance()

    def _accept_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_eof(self) -> None:
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # ------------------------------------------------------------------

    def parse_create_table(self) -> CreateTable:
        self._expect_word("CREATE")
        self._expect_word("TABLE")
        name = self._expect_ident()
        self._expect_punct("(")
        columns: list[tuple[str, str]] = []
        while True:
            column = self._expect_ident()
            type_token = self._peek()
            if type_token.type is not TokenType.IDENT:
                raise self._error("expected a column type")
            self._advance()
            type_name = type_token.value.upper()
            if type_name not in TYPE_MAP:
                raise SqlTsSyntaxError(
                    f"unknown column type {type_token.value!r}",
                    type_token.line,
                    type_token.column,
                )
            if self._accept_punct("("):  # VARCHAR(8) etc. — size ignored
                if self._peek().type is not TokenType.NUMBER:
                    raise self._error("expected a type size")
                self._advance()
                self._expect_punct(")")
            columns.append((column, TYPE_MAP[type_name]))
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        self._expect_eof()
        return CreateTable(name, tuple(columns))

    def parse_insert(self) -> Insert:
        self._expect_word("INSERT")
        self._expect_word("INTO")
        table = self._expect_ident()
        columns: Optional[tuple[str, ...]] = None
        if self._accept_punct("("):
            names = [self._expect_ident()]
            while self._accept_punct(","):
                names.append(self._expect_ident())
            self._expect_punct(")")
            columns = tuple(names)
        self._expect_word("VALUES")
        rows = [self._parse_row()]
        while self._accept_punct(","):
            rows.append(self._parse_row())
        self._expect_eof()
        return Insert(table, columns, tuple(rows))

    def _parse_row(self) -> tuple[object, ...]:
        self._expect_punct("(")
        values = [self._parse_literal()]
        while self._accept_punct(","):
            values.append(self._parse_literal())
        self._expect_punct(")")
        return tuple(values)

    def _parse_literal(self) -> object:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return float(text) if any(c in text for c in ".eE") else int(text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            inner = self._parse_literal()
            if not isinstance(inner, (int, float)):
                raise self._error("expected a number after '-'")
            return -inner
        raise self._error("expected a literal value")


def statement_kind(text: str) -> str:
    """Classify a statement: 'create', 'insert', or 'query'."""
    for token in tokenize(text):
        if token.type is TokenType.EOF:
            break
        word = token.value.upper()
        if word == "CREATE":
            return "create"
        if word == "INSERT":
            return "insert"
        return "query"
    raise SqlTsSyntaxError("empty statement")


def parse_create_table(text: str) -> CreateTable:
    return _DdlParser(text).parse_create_table()


def parse_insert(text: str) -> Insert:
    return _DdlParser(text).parse_insert()


def coerce_value(value: object, type_name: str) -> object:
    """Adapt a literal to a column type (ISO strings become dates, ints
    widen to floats); raises ValueError on impossible conversions."""
    if type_name == "date" and isinstance(value, str):
        return _dt.date.fromisoformat(value)
    if type_name == "float" and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if type_name == "int" and isinstance(value, float) and value.is_integer():
        return int(value)
    return value
