"""Runtime evaluation of SQL-TS expressions.

Two evaluation situations share this module:

- **WHERE residuals** — conditions the semantic analyzer could not express
  over the current tuple and its neighbour (cross-element references such
  as ``Z.previous.price < 0.5 * X.price``).  They are evaluated against an
  :class:`~repro.pattern.predicates.EvalContext` whose ``bindings`` hold
  the spans of the pattern elements matched so far.

- **SELECT items** — evaluated after a match completes, when every
  pattern variable is bound.

Variable resolution rules (Section 2 semantics):

- a bare non-starred variable denotes its single matched tuple;
- a bare *starred* variable denotes the **first** tuple of its run (the
  paper writes ``SELECT X.name`` with ``*X`` in Example 8 — ``name`` is
  cluster-constant so any representative works; first is the convention);
- ``FIRST(X)`` / ``LAST(X)`` denote the run's endpoints;
- ``previous`` / ``next`` navigate one tuple at a time through the whole
  cluster sequence — across element boundaries, exactly like the paper's
  "two additional fields that refer to the previous and the next tuple in
  the sequence".  Navigating off either end of the cluster makes a WHERE
  condition false and a SELECT item NULL (None).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.sqlts import ast


class _OffEnd(Exception):
    """Internal: navigation walked off the cluster."""


def _base_index(
    path: ast.VarPath,
    bindings: Mapping[str, tuple[int, int]],
    stars: Mapping[str, bool],
) -> int:
    """The 0-based cluster index the path's variable resolves to."""
    try:
        span = bindings[path.var]
    except KeyError:
        raise ExecutionError(f"pattern variable {path.var!r} is not bound") from None
    if path.accessor == "last":
        return span[1]
    if path.accessor == "first":
        return span[0]
    # Bare variable: the single tuple, or the first of a starred run.
    return span[0]


def _navigate(index: int, navigation: tuple[str, ...], n: int) -> int:
    for step in navigation:
        index = index - 1 if step == "previous" else index + 1
    if index < 0 or index >= n:
        raise _OffEnd()
    return index


def evaluate_expr(
    expr: ast.Expr,
    rows: Sequence[Mapping[str, object]],
    bindings: Mapping[str, tuple[int, int]],
    stars: Mapping[str, bool],
) -> Optional[object]:
    """Evaluate an expression; None signals an off-end navigation (NULL)."""
    try:
        return _eval(expr, rows, bindings, stars)
    except _OffEnd:
        return None


def _eval(
    expr: ast.Expr,
    rows: Sequence[Mapping[str, object]],
    bindings: Mapping[str, tuple[int, int]],
    stars: Mapping[str, bool],
) -> object:
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.StringLit):
        return expr.value
    if isinstance(expr, ast.VarPath):
        index = _navigate(
            _base_index(expr, bindings, stars), expr.navigation, len(rows)
        )
        row = rows[index]
        if expr.attr not in row:
            raise ExecutionError(f"unknown attribute {expr.attr!r}")
        return row[expr.attr]
    if isinstance(expr, ast.Neg):
        value = _eval(expr.operand, rows, bindings, stars)
        return -_require_number(value)
    if isinstance(expr, ast.BinOp):
        left = _require_number(_eval(expr.left, rows, bindings, stars))
        right = _require_number(_eval(expr.right, rows, bindings, stars))
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise ExecutionError("division by zero in expression")
            return left / right
        raise ExecutionError(f"unknown arithmetic operator {expr.op!r}")
    raise ExecutionError(f"cannot evaluate expression node {expr!r}")


def _require_number(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"arithmetic on non-numeric value {value!r}")
    return float(value)


def evaluate_condition(
    condition: ast.Cond,
    rows: Sequence[Mapping[str, object]],
    bindings: Mapping[str, tuple[int, int]],
    stars: Mapping[str, bool],
) -> bool:
    """Three-valued-free boolean evaluation: off-end navigation is False."""
    if isinstance(condition, ast.Comparison):
        try:
            left = _eval(condition.left, rows, bindings, stars)
            right = _eval(condition.right, rows, bindings, stars)
        except _OffEnd:
            return False
        return _compare(condition.op, left, right)
    if isinstance(condition, ast.And):
        return evaluate_condition(condition.left, rows, bindings, stars) and (
            evaluate_condition(condition.right, rows, bindings, stars)
        )
    if isinstance(condition, ast.Or):
        return evaluate_condition(condition.left, rows, bindings, stars) or (
            evaluate_condition(condition.right, rows, bindings, stars)
        )
    if isinstance(condition, ast.Not):
        return not evaluate_condition(condition.operand, rows, bindings, stars)
    raise ExecutionError(f"cannot evaluate condition node {condition!r}")


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError as exc:
        raise ExecutionError(f"incomparable values {left!r} and {right!r}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")
