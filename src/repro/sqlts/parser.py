"""Recursive-descent parser for SQL-TS.

Grammar (keywords case-insensitive)::

    query       := SELECT select_list FROM ident
                   [CLUSTER BY ident_list] [,]
                   [SEQUENCE BY ident_list]
                   AS '(' pattern_list ')'
                   [WHERE condition]
    select_list := select_item (',' select_item)*
    select_item := expr [AS ident]
    pattern_list:= ['*'] ident (',' ['*'] ident)*
    condition   := disjunct (OR disjunct)*
    disjunct    := negation (AND negation)*
    negation    := [NOT] (comparison | '(' condition ')')
    comparison  := expr relop expr
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := NUMBER | STRING | path | '(' expr ')' | '-' factor
    path        := (FIRST|LAST) '(' ident ')' steps | ident steps
    steps       := ('.' (PREVIOUS | NEXT | ident))+     -- last step = attr

The dotted-path rule follows the paper: intermediate steps named
``previous``/``next`` (case-insensitive) are navigation, the final step is
the attribute name.  The SQL3 arrow spelling ``Z.previous -> date``
mentioned in the paper is accepted as the dot form only.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SqlTsSyntaxError
from repro.sqlts import ast
from repro.sqlts.lexer import tokenize
from repro.sqlts.tokens import NAVIGATION, Token, TokenType

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> SqlTsSyntaxError:
        token = self._peek()
        return SqlTsSyntaxError(f"{message} (found {token.value!r})", token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != symbol:
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected an identifier")
        return self._advance().value

    def _accept_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == symbol:
            self._advance()
            return True
        return False

    # -- grammar --------------------------------------------------------

    def parse(self) -> ast.Query:
        self._expect_keyword("SELECT")
        select = self._select_list()
        self._expect_keyword("FROM")
        table = self._expect_ident()
        cluster_by: tuple[str, ...] = ()
        sequence_by: tuple[str, ...] = ()
        if self._peek().is_keyword("CLUSTER"):
            self._advance()
            self._expect_keyword("BY")
            cluster_by = self._ident_list()
            self._accept_punct(",")  # the paper writes "CLUSTER BY name,"
        if self._peek().is_keyword("SEQUENCE"):
            self._advance()
            self._expect_keyword("BY")
            sequence_by = self._ident_list()
        self._expect_keyword("AS")
        self._expect_punct("(")
        pattern = self._pattern_list()
        self._expect_punct(")")
        where: Optional[ast.Cond] = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._condition()
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return ast.Query(
            select=select,
            table=table,
            cluster_by=cluster_by,
            sequence_by=sequence_by,
            pattern=pattern,
            where=where,
        )

    def _select_list(self) -> tuple[ast.SelectItem, ...]:
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self._peek().is_keyword("AS"):
            # Lookahead: 'AS (' starts the pattern clause, not an alias.
            following = self._peek(1)
            if not (following.type is TokenType.PUNCT and following.value == "("):
                self._advance()
                alias = self._expect_ident()
        return ast.SelectItem(expr, alias)

    def _ident_list(self) -> tuple[str, ...]:
        names = [self._expect_ident()]
        while True:
            # A comma is ambiguous between "more idents" and the paper's
            # trailing comma before SEQUENCE BY; look ahead for an ident.
            if (
                self._peek().type is TokenType.PUNCT
                and self._peek().value == ","
                and self._peek(1).type is TokenType.IDENT
            ):
                self._advance()
                names.append(self._expect_ident())
            else:
                return tuple(names)

    def _pattern_list(self) -> tuple[ast.PatternVar, ...]:
        entries = [self._pattern_var()]
        while self._accept_punct(","):
            entries.append(self._pattern_var())
        return tuple(entries)

    def _pattern_var(self) -> ast.PatternVar:
        star = False
        if self._peek().type is TokenType.STAR:
            self._advance()
            star = True
        return ast.PatternVar(self._expect_ident(), star)

    # -- conditions -----------------------------------------------------

    def _condition(self) -> ast.Cond:
        left = self._conjunction()
        while self._peek().is_keyword("OR"):
            self._advance()
            left = ast.Or(left, self._conjunction())
        return left

    def _conjunction(self) -> ast.Cond:
        left = self._negation()
        while self._peek().is_keyword("AND"):
            self._advance()
            left = ast.And(left, self._negation())
        return left

    def _negation(self) -> ast.Cond:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return ast.Not(self._negation())
        return self._primary_condition()

    def _primary_condition(self) -> ast.Cond:
        # A '(' may open either a parenthesized condition or a
        # parenthesized arithmetic expression; parse speculatively.
        if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
            checkpoint = self._index
            self._advance()
            try:
                inner = self._condition()
                self._expect_punct(")")
                return inner
            except SqlTsSyntaxError:
                self._index = checkpoint
        left = self._expr()
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.value not in _COMPARISON_OPS:
            raise self._error("expected a comparison operator")
        op = self._advance().value
        right = self._expr()
        return ast.Comparison(op, left, right)

    # -- expressions ----------------------------------------------------

    def _expr(self) -> ast.Expr:
        left = self._term()
        while (
            self._peek().type is TokenType.OPERATOR and self._peek().value in ("+", "-")
        ):
            op = self._advance().value
            left = ast.BinOp(op, left, self._term())
        return left

    def _term(self) -> ast.Expr:
        left = self._factor()
        while (
            self._peek().type is TokenType.STAR
            or (self._peek().type is TokenType.OPERATOR and self._peek().value == "/")
        ):
            op = self._advance().value
            left = ast.BinOp(op, left, self._factor())
        return left

    def _factor(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLit(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(token.value)
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            return ast.Neg(self._factor())
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            inner = self._expr()
            self._expect_punct(")")
            return inner
        if token.is_keyword("FIRST") or token.is_keyword("LAST"):
            return self._accessor_path()
        if token.type is TokenType.IDENT:
            return self._var_path()
        raise self._error("expected an expression")

    def _accessor_path(self) -> ast.VarPath:
        accessor = self._advance().value.lower()
        self._expect_punct("(")
        var = self._expect_ident()
        self._expect_punct(")")
        navigation, attr = self._path_steps()
        return ast.VarPath(var, accessor, navigation, attr)

    def _var_path(self) -> ast.VarPath:
        var = self._expect_ident()
        navigation, attr = self._path_steps()
        return ast.VarPath(var, None, navigation, attr)

    def _path_steps(self) -> tuple[tuple[str, ...], str]:
        """Parse ``('.' step)+``: navigation steps then the attribute."""
        steps: list[str] = []
        if not self._accept_punct("."):
            raise self._error("expected '.' and an attribute name")
        while True:
            token = self._peek()
            if token.type is not TokenType.IDENT:
                raise self._error("expected an attribute or navigation name")
            name = self._advance().value
            if name.upper() in NAVIGATION and self._accept_punct("."):
                steps.append(name.lower())
                continue
            return tuple(steps), name


def parse_query(text: str) -> ast.Query:
    """Parse one SQL-TS statement into its AST."""
    return Parser(text).parse()
