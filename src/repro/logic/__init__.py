"""Three-valued (Kleene) logic and triangular logic matrices.

The OPS optimizer (Sadri & Zaniolo, PODS 2001, Section 4.2) reasons about
pattern-element implications with the truth values ``1`` (true), ``0``
(false), and ``U`` (unknown).  This subpackage provides:

- :class:`~repro.logic.tribool.Tribool` — the three truth values with
  Kleene conjunction/disjunction/negation;
- :class:`~repro.logic.matrix.TriangularMatrix` — the lower-triangular
  matrices theta, phi, and S used by the compile-time analysis.
"""

from repro.logic.tribool import FALSE, TRUE, UNKNOWN, Tribool
from repro.logic.matrix import TriangularMatrix

__all__ = ["Tribool", "TRUE", "FALSE", "UNKNOWN", "TriangularMatrix"]
