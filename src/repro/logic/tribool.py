"""Kleene three-valued logic.

The paper's compile-time analysis (Section 4.2) uses "standard 3-valued
logic, where ``not U = U``, ``U and 1 = U``, and ``U and 0 = 0``".  This is
Kleene's strong logic of indeterminacy; :class:`Tribool` implements it with
the Python operators ``&``, ``|``, and ``~``.

``Tribool`` values are interned singletons, so identity comparison
(``value is TRUE``) is safe, but ``==`` also works and additionally accepts
the plain Python values ``True``/``False``/``1``/``0`` and the string
``"U"`` for convenience when asserting against matrices transcribed from
the paper.
"""

from __future__ import annotations

from typing import Iterable, Union

TriboolLike = Union["Tribool", bool, int, str]


class Tribool:
    """One of the three Kleene truth values: true, false, or unknown."""

    __slots__ = ("_name", "_rank")

    _instances: dict[str, "Tribool"] = {}

    def __new__(cls, name: str) -> "Tribool":
        if name not in ("0", "1", "U"):
            raise ValueError(f"invalid Tribool name: {name!r}")
        existing = cls._instances.get(name)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        instance._name = name
        # Rank orders information content for min/max style folds:
        # FALSE < UNKNOWN < TRUE, matching Kleene conjunction as `min`.
        instance._rank = {"0": 0, "U": 1, "1": 2}[name]
        cls._instances[name] = instance
        return instance

    @property
    def name(self) -> str:
        return self._name

    @property
    def is_true(self) -> bool:
        return self._name == "1"

    @property
    def is_false(self) -> bool:
        return self._name == "0"

    @property
    def is_unknown(self) -> bool:
        return self._name == "U"

    @classmethod
    def coerce(cls, value: TriboolLike) -> "Tribool":
        """Convert a bool, 0/1 int, or "U"/"0"/"1" string to a Tribool."""
        if isinstance(value, Tribool):
            return value
        if value is True or value == 1:
            return TRUE
        if value is False or value == 0:
            return FALSE
        if isinstance(value, str) and value.upper() == "U":
            return UNKNOWN
        if isinstance(value, str) and value in ("0", "1"):
            return TRUE if value == "1" else FALSE
        raise TypeError(f"cannot coerce {value!r} to Tribool")

    def __and__(self, other: TriboolLike) -> "Tribool":
        other = Tribool.coerce(other)
        # Kleene conjunction is `min` under FALSE < UNKNOWN < TRUE.
        return _BY_RANK[min(self._rank, other._rank)]

    __rand__ = __and__

    def __or__(self, other: TriboolLike) -> "Tribool":
        other = Tribool.coerce(other)
        return _BY_RANK[max(self._rank, other._rank)]

    __ror__ = __or__

    def __invert__(self) -> "Tribool":
        if self is TRUE:
            return FALSE
        if self is FALSE:
            return TRUE
        return UNKNOWN

    def __eq__(self, other: object) -> bool:
        try:
            return self is Tribool.coerce(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented

    def __hash__(self) -> int:
        return hash(("Tribool", self._name))

    def __bool__(self) -> bool:
        raise TypeError(
            "Tribool has no implicit truthiness; use .is_true / .is_false / "
            ".is_unknown to branch on a three-valued result"
        )

    def __repr__(self) -> str:
        return self._name


TRUE = Tribool("1")
FALSE = Tribool("0")
UNKNOWN = Tribool("U")
_BY_RANK = {0: FALSE, 1: UNKNOWN, 2: TRUE}


def kleene_all(values: Iterable[TriboolLike]) -> Tribool:
    """Kleene conjunction of an iterable (empty iterable yields TRUE).

    Short-circuits on FALSE, which matters for the S-matrix computation
    where a single 0 entry kills the whole shift.
    """
    result = TRUE
    for value in values:
        result = result & value
        if result is FALSE:
            return FALSE
    return result


def kleene_any(values: Iterable[TriboolLike]) -> Tribool:
    """Kleene disjunction of an iterable (empty iterable yields FALSE)."""
    result = FALSE
    for value in values:
        result = result | value
        if result is TRUE:
            return TRUE
    return result
