"""Lower-triangular three-valued matrices.

The OPS compile-time analysis manipulates three lower-triangular matrices
indexed by pattern positions (1-based, following the paper):

- ``theta[j, k]`` (defined for ``j >= k``) — positive preconditions,
- ``phi[j, k]``   (defined for ``j >= k``) — negative preconditions,
- ``S[j, k]``     (defined for ``j >  k``) — shifted-pattern compatibility.

:class:`TriangularMatrix` stores such a matrix densely and enforces the
index domain, so the rest of the compiler cannot accidentally read an
undefined entry.  Entries are :class:`~repro.logic.tribool.Tribool`.
"""

from __future__ import annotations

from typing import Iterator

from repro.logic.tribool import Tribool, TriboolLike, UNKNOWN


class TriangularMatrix:
    """A 1-based lower-triangular matrix of Tribool entries.

    Parameters
    ----------
    size:
        Number of rows/columns (the pattern length ``m``).
    include_diagonal:
        If True (theta, phi) entries ``(j, j)`` exist; if False (S, G_P)
        only ``j > k`` entries exist.
    fill:
        Initial value for every defined entry (default ``U``).
    """

    __slots__ = ("_size", "_include_diagonal", "_cells")

    def __init__(self, size: int, include_diagonal: bool = True, fill: TriboolLike = UNKNOWN):
        if size < 0:
            raise ValueError(f"matrix size must be non-negative, got {size}")
        self._size = size
        self._include_diagonal = include_diagonal
        fill_value = Tribool.coerce(fill)
        self._cells: dict[tuple[int, int], Tribool] = {
            (j, k): fill_value for j, k in self._domain()
        }

    def _domain(self) -> Iterator[tuple[int, int]]:
        lowest_offset = 0 if self._include_diagonal else 1
        for j in range(1, self._size + 1):
            for k in range(1, j + 1 - lowest_offset):
                yield (j, k)

    @property
    def size(self) -> int:
        return self._size

    @property
    def include_diagonal(self) -> bool:
        return self._include_diagonal

    def _check(self, j: int, k: int) -> None:
        if not (1 <= k <= j <= self._size):
            raise IndexError(f"({j}, {k}) outside lower triangle of size {self._size}")
        if not self._include_diagonal and j == k:
            raise IndexError(f"({j}, {k}) is on the excluded diagonal")

    def __getitem__(self, index: tuple[int, int]) -> Tribool:
        j, k = index
        self._check(j, k)
        return self._cells[(j, k)]

    def __setitem__(self, index: tuple[int, int], value: TriboolLike) -> None:
        j, k = index
        self._check(j, k)
        self._cells[(j, k)] = Tribool.coerce(value)

    def __contains__(self, index: tuple[int, int]) -> bool:
        j, k = index
        if not (1 <= k <= j <= self._size):
            return False
        return self._include_diagonal or j != k

    def row(self, j: int) -> list[Tribool]:
        """Entries of row ``j`` ordered by increasing column."""
        last = j if self._include_diagonal else j - 1
        return [self._cells[(j, k)] for k in range(1, last + 1)]

    def cells(self) -> Iterator[tuple[int, int, Tribool]]:
        """Iterate ``(j, k, value)`` over all defined entries."""
        for (j, k), value in sorted(self._cells.items()):
            yield j, k, value

    @classmethod
    def from_rows(
        cls, rows: list[list[TriboolLike]], include_diagonal: bool = True
    ) -> "TriangularMatrix":
        """Build a matrix from paper-style row literals.

        ``rows[0]`` is row 1.  Row ``j`` must have exactly ``j`` entries when
        the diagonal is included, ``j - 1`` otherwise (row 1 is then empty).
        """
        matrix = cls(len(rows), include_diagonal=include_diagonal)
        for j, row in enumerate(rows, start=1):
            expected = j if include_diagonal else j - 1
            if len(row) != expected:
                raise ValueError(f"row {j} must have {expected} entries, got {len(row)}")
            for k, value in enumerate(row, start=1):
                matrix[j, k] = value
        return matrix

    def to_rows(self) -> list[list[str]]:
        """Rows as lists of "0"/"1"/"U" strings (for asserting and printing)."""
        result = []
        for j in range(1, self._size + 1):
            result.append([cell.name for cell in self.row(j)])
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriangularMatrix):
            return NotImplemented
        return (
            self._size == other._size
            and self._include_diagonal == other._include_diagonal
            and self._cells == other._cells
        )

    def __hash__(self) -> int:
        return hash((self._size, self._include_diagonal, tuple(sorted(self._cells.items()))))

    def __repr__(self) -> str:
        lines = []
        for j in range(1, self._size + 1):
            lines.append(" ".join(cell.name for cell in self.row(j)))
        body = "\n  ".join(lines)
        return f"TriangularMatrix(size={self._size},\n  {body}\n)"
