"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors, planning errors, and execution errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SqlTsSyntaxError(ReproError):
    """Raised by the SQL-TS lexer or parser on malformed query text.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Raised during name resolution / semantic analysis of a query."""


class PlanningError(ReproError):
    """Raised when the pattern compiler cannot build a valid plan."""


class ExecutionError(ReproError):
    """Raised at query runtime (bad data, missing columns, type errors)."""


class SchemaError(ReproError):
    """Raised for invalid table schemas or rows that violate a schema."""


class LimitExceeded(ReproError):
    """Raised when a :class:`~repro.resilience.ResourceLimits` bound is hit
    in a context that cannot degrade to partial results (e.g. a streaming
    buffer overflow with ``overflow="raise"``).

    Matcher loops normally do *not* raise this — they stop and return the
    partial matches, recording the limit in
    :class:`~repro.resilience.Diagnostics` instead.
    """

    def __init__(self, message: str, reason: str | None = None):
        super().__init__(message)
        self.reason = reason if reason is not None else message


class ColumnarFormatError(SchemaError):
    """A columnar file failed validation (magic, version, truncation,
    blob extents, or checksum) — or a table cannot be encoded into the
    format.  Loaders treat it as "this cache is unusable": the engine
    falls back to CSV ingest with a diagnostic rather than trusting a
    torn or partial file (see :mod:`repro.engine.columnar`).
    """


class StreamStateError(ReproError, RuntimeError):
    """Raised for misuse of a streaming matcher's lifecycle.

    The canonical case is ``push()`` after ``finish()``.  The message
    carries the matcher's state context (rows consumed, matches emitted)
    so the offending call site can be diagnosed from logs alone.  Derives
    from :class:`RuntimeError` as well, so pre-existing callers that
    guarded the lifecycle with ``except RuntimeError`` keep working.
    """


class TransientSourceError(ReproError):
    """A recoverable fault in a streaming row source.

    Raise (or map provider errors onto) this to tell the recovering
    stream runner that re-opening the source at the current offset is
    worth attempting; it is retried according to the configured
    :class:`~repro.recovery.RetryPolicy`.
    """


class RecoveryError(ReproError):
    """Raised when checkpoint/restore cannot proceed safely.

    Covers restoring a snapshot against a mismatched pattern fingerprint,
    unsupported snapshot versions, and a missing checkpoint where one was
    required.
    """


class CheckpointCorrupt(RecoveryError):
    """A checkpoint file failed validation (magic, version, checksum,
    truncation, or payload decoding).  The checkpoint store falls back to
    the previous good checkpoint when one exists; this escapes only when
    no usable checkpoint remains.
    """


class StatementError(ReproError):
    """A script statement failed; carries which one and why.

    ``index`` is the 1-based position of the statement in the script,
    ``snippet`` the first characters of its text, and ``__cause__`` the
    underlying error (chained with ``raise ... from``).
    """

    def __init__(self, index: int, snippet: str, cause: Exception):
        super().__init__(f"statement #{index} ({snippet!r}): {cause}")
        self.index = index
        self.snippet = snippet
        self.cause = cause


class ConstraintError(ReproError):
    """Raised for malformed constraint atoms or unsupported operators."""


class FailpointError(ReproError, OSError):
    """The default exception injected by an armed failpoint site.

    Derives from :class:`OSError` because the sites that matter most
    (checkpoint fsync/rename, socket sends) fail with OS-level errors in
    the wild, so recovery code exercised by a failpoint takes the same
    ``except`` paths it would take for the real fault.  Carries the site
    name for assertion messages.
    """

    def __init__(self, site: str, message: str = ""):
        detail = message or f"failpoint {site!r} injected failure"
        super().__init__(detail)
        self.site = site
