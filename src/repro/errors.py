"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors, planning errors, and execution errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SqlTsSyntaxError(ReproError):
    """Raised by the SQL-TS lexer or parser on malformed query text.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """Raised during name resolution / semantic analysis of a query."""


class PlanningError(ReproError):
    """Raised when the pattern compiler cannot build a valid plan."""


class ExecutionError(ReproError):
    """Raised at query runtime (bad data, missing columns, type errors)."""


class SchemaError(ReproError):
    """Raised for invalid table schemas or rows that violate a schema."""


class ConstraintError(ReproError):
    """Raised for malformed constraint atoms or unsupported operators."""
