"""Deterministic failpoint injection for crash-consistency testing.

Production code guards its failure-prone boundaries with *named sites*::

    failpoints.maybe_fail("checkpoint.rename")          # raise-style sites
    frame = failpoints.mangle("checkpoint.write", frame)  # payload sites
    if not failpoints.maybe_fail("checkpoint.fsync"):     # skippable sites
        os.fsync(handle.fileno())

When no failpoint is armed (the production default) every hook is a
single module-global boolean check — zero allocation, zero locking — so
the byte-identity and overhead gates in ``bench/obs_overhead`` are
unaffected.  Tests and chaos harnesses arm sites to fire a chosen
exception, truncate a payload ("torn write"), or skip an operation
(lost fsync), optionally only from the Nth hit onward and at most K
times, which turns "kill -9 at just the wrong moment" races into
deterministic unit tests.

Activation surfaces:

- API: :func:`configure` / :func:`activate_spec` / :func:`scoped`;
- environment: ``REPRO_FAILPOINTS="site=action;..."`` read at import;
- CLI: ``--failpoints "site=action;..."`` on ``query``/``stream``/``serve``.

Spec grammar (entries separated by ``;`` or ``,``)::

    site=action[:arg][@hit][*times]

    checkpoint.write=torn:12          # keep only 12 bytes of the payload
    checkpoint.fsync=skip             # silently lose the fsync
    serve.send_frame=raise:ConnectionResetError@3*1
                                      # 3rd send raises, once, then disarms

Hit and fire counts per site are kept always (cheap ints under a lock,
touched only while armed) and are additionally surfaced through a
:class:`~repro.obs.metrics.MetricsRegistry` bound via
:func:`set_metrics` — see docs/observability.md.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, Type

from repro.errors import FailpointError, TransientSourceError

__all__ = [
    "KNOWN_SITES",
    "FailpointSpecError",
    "activate_spec",
    "active",
    "armed",
    "configure",
    "clear",
    "fires",
    "hits",
    "mangle",
    "maybe_fail",
    "reset",
    "scoped",
    "set_metrics",
]

#: Sites compiled into the engine as of this release.  The registry is
#: deliberately open (new sites need no central edit), but this list is
#: the documented contract and what ``--failpoints help`` prints.
KNOWN_SITES: Tuple[str, ...] = (
    "checkpoint.write",        # payload of the temp-file write (torn-able)
    "checkpoint.fsync",        # file fsync before rename (skippable)
    "checkpoint.rename",       # between .prev rotation and final rename
    "checkpoint.replica_write",  # each replica write in a replicated save
    "recovery.restore",        # checkpoint load during runner restore
    "serve.send_frame",        # every server->client NDJSON frame
    "parallel.worker_start",   # entry of each parallel work unit
    "columnar.write",          # columnar file payload (torn-able)
    "columnar.fsync",          # columnar file fsync before rename (skippable)
    "columnar.rename",         # between columnar tmp write and final rename
)

#: Exception names accepted by ``raise:<Name>`` specs.  Restricted to a
#: curated set (not arbitrary attribute lookup) so a spec string coming
#: from an env var or CLI flag cannot name surprising internals.
_EXCEPTIONS: Dict[str, Type[BaseException]] = {
    "FailpointError": FailpointError,
    "OSError": OSError,
    "IOError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "ConnectionError": ConnectionError,
    "ConnectionResetError": ConnectionResetError,
    "BrokenPipeError": BrokenPipeError,
    "TimeoutError": TimeoutError,
    "TransientSourceError": TransientSourceError,
}

_ACTIONS = ("raise", "torn", "skip")


class FailpointSpecError(ValueError):
    """A ``--failpoints`` / ``REPRO_FAILPOINTS`` spec string is malformed."""


@dataclass
class _Site:
    """Armed configuration plus lifetime counters for one site."""

    name: str
    action: str = "raise"
    exc: Type[BaseException] = FailpointError
    message: str = ""
    keep_bytes: Optional[int] = None   # torn: bytes kept (default: half)
    at_hit: int = 1                    # first hit (1-based) that fires
    times: Optional[int] = None        # max fires; None = unlimited
    hits: int = 0
    fires: int = 0

    def should_fire(self) -> bool:
        if self.hits < self.at_hit:
            return False
        if self.times is not None and self.fires >= self.times:
            return False
        return True

    def build_exception(self) -> BaseException:
        detail = self.message or f"failpoint {self.name!r} injected failure"
        if self.exc is FailpointError:
            return FailpointError(self.name, detail)
        return self.exc(detail)


class FailpointRegistry:
    """Process-wide registry of armed failpoint sites.

    All mutation and evaluation happens under one lock; the fast path
    (nothing armed) never takes it — ``_armed`` is a plain bool read.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._sites: Dict[str, _Site] = {}
        self._armed = False
        self._metrics = None
        self._hit_counter = None
        self._fire_counter = None

    # -- configuration --------------------------------------------------

    def configure(
        self,
        site: str,
        action: str = "raise",
        *,
        exc: Optional[Type[BaseException]] = None,
        message: str = "",
        keep_bytes: Optional[int] = None,
        at_hit: int = 1,
        times: Optional[int] = None,
    ) -> None:
        """Arm ``site``.  Re-configuring a site resets its counters."""
        if not site or "=" in site:
            raise FailpointSpecError(f"invalid failpoint site name {site!r}")
        if action not in _ACTIONS:
            raise FailpointSpecError(
                f"unknown failpoint action {action!r} (choose from {_ACTIONS})"
            )
        if at_hit < 1:
            raise FailpointSpecError(f"at_hit must be >= 1, got {at_hit}")
        if times is not None and times < 1:
            raise FailpointSpecError(f"times must be >= 1, got {times}")
        if keep_bytes is not None and keep_bytes < 0:
            raise FailpointSpecError(f"keep_bytes must be >= 0, got {keep_bytes}")
        with self._lock:
            self._sites[site] = _Site(
                name=site,
                action=action,
                exc=exc if exc is not None else FailpointError,
                message=message,
                keep_bytes=keep_bytes,
                at_hit=at_hit,
                times=times,
            )
            self._armed = True

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm one site (or all when ``site`` is None), keeping nothing."""
        with self._lock:
            if site is None:
                self._sites.clear()
            else:
                self._sites.pop(site, None)
            self._armed = bool(self._sites)

    def reset(self) -> None:
        """Disarm every site and drop the metrics binding (test teardown)."""
        with self._lock:
            self._sites.clear()
            self._armed = False
            self._metrics = None
            self._hit_counter = None
            self._fire_counter = None

    def activate_spec(self, spec: str) -> int:
        """Parse and arm a ``site=action[:arg][@hit][*times];...`` string.

        Returns the number of sites armed.  Raises
        :class:`FailpointSpecError` (leaving the registry untouched) on a
        malformed spec.
        """
        entries = [
            entry.strip()
            for entry in spec.replace(",", ";").split(";")
            if entry.strip()
        ]
        if not entries:
            raise FailpointSpecError("empty failpoints spec")
        parsed = [self._parse_entry(entry) for entry in entries]
        for kwargs in parsed:
            self.configure(**kwargs)
        return len(parsed)

    @staticmethod
    def _parse_entry(entry: str) -> dict:
        site, sep, rhs = entry.partition("=")
        site = site.strip()
        if not sep or not site or not rhs.strip():
            raise FailpointSpecError(
                f"malformed failpoint entry {entry!r} "
                "(expected site=action[:arg][@hit][*times])"
            )
        rhs = rhs.strip()
        times: Optional[int] = None
        at_hit = 1
        if "*" in rhs:
            rhs, _, times_text = rhs.rpartition("*")
            try:
                times = int(times_text)
            except ValueError:
                raise FailpointSpecError(
                    f"bad *times count in {entry!r}: {times_text!r}"
                ) from None
        if "@" in rhs:
            rhs, _, hit_text = rhs.rpartition("@")
            try:
                at_hit = int(hit_text)
            except ValueError:
                raise FailpointSpecError(
                    f"bad @hit number in {entry!r}: {hit_text!r}"
                ) from None
        action, _, arg = rhs.partition(":")
        action = action.strip()
        arg = arg.strip()
        kwargs: dict = {"site": site, "action": action, "at_hit": at_hit, "times": times}
        if action == "raise":
            if arg:
                if arg not in _EXCEPTIONS:
                    raise FailpointSpecError(
                        f"unknown exception {arg!r} in {entry!r} "
                        f"(choose from {sorted(_EXCEPTIONS)})"
                    )
                kwargs["exc"] = _EXCEPTIONS[arg]
        elif action == "torn":
            if arg:
                try:
                    kwargs["keep_bytes"] = int(arg)
                except ValueError:
                    raise FailpointSpecError(
                        f"bad torn byte count in {entry!r}: {arg!r}"
                    ) from None
        elif action == "skip":
            if arg:
                raise FailpointSpecError(f"skip takes no argument in {entry!r}")
        else:
            raise FailpointSpecError(
                f"unknown failpoint action {action!r} in {entry!r} "
                f"(choose from {_ACTIONS})"
            )
        return kwargs

    # -- metrics --------------------------------------------------------

    def set_metrics(self, registry) -> None:
        """Surface per-site hit/fire counters through a MetricsRegistry.

        Idempotent; pass ``None`` to unbind.  Counters created:
        ``repro_failpoint_hits_total{site=...}`` and
        ``repro_failpoint_fires_total{site=...}``.
        """
        with self._lock:
            self._metrics = registry
            if registry is None:
                self._hit_counter = None
                self._fire_counter = None
                return
            self._hit_counter = registry.counter(
                "repro_failpoint_hits_total",
                "Times an armed failpoint site was reached.",
                labelnames=("site",),
            )
            self._fire_counter = registry.counter(
                "repro_failpoint_fires_total",
                "Times a failpoint actually injected its fault.",
                labelnames=("site",),
            )

    # -- evaluation -----------------------------------------------------

    def evaluate(self, site: str) -> Optional[_Site]:
        """Count a hit on ``site``; return its config if it fires now.

        Only called from the slow path (``_armed`` already True).  A site
        that is not configured is not counted — hit counters measure
        traffic through *armed* sites, which is what the chaos matrix
        asserts on.
        """
        with self._lock:
            config = self._sites.get(site)
            if config is None:
                return None
            config.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.labels(site=site).inc()
            if not config.should_fire():
                return None
            config.fires += 1
            if self._fire_counter is not None:
                self._fire_counter.labels(site=site).inc()
            return config

    # -- inspection -----------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def active(self) -> Dict[str, str]:
        """``{site: "action[:arg][@hit][*times]"}`` for every armed site."""
        with self._lock:
            view = {}
            for name, config in sorted(self._sites.items()):
                text = config.action
                if config.action == "raise" and config.exc is not FailpointError:
                    text += f":{config.exc.__name__}"
                elif config.action == "torn" and config.keep_bytes is not None:
                    text += f":{config.keep_bytes}"
                if config.at_hit != 1:
                    text += f"@{config.at_hit}"
                if config.times is not None:
                    text += f"*{config.times}"
                view[name] = text
            return view

    def hits(self, site: str) -> int:
        with self._lock:
            config = self._sites.get(site)
            return config.hits if config is not None else 0

    def fires(self, site: str) -> int:
        with self._lock:
            config = self._sites.get(site)
            return config.fires if config is not None else 0

    def counters(self) -> Dict[str, Dict[str, int]]:
        """``{site: {"hits": n, "fires": m}}`` for every armed site."""
        with self._lock:
            return {
                name: {"hits": config.hits, "fires": config.fires}
                for name, config in sorted(self._sites.items())
            }


#: The process-wide registry all module-level helpers delegate to.
_registry = FailpointRegistry()


def registry() -> FailpointRegistry:
    return _registry


def maybe_fail(site: str) -> bool:
    """The production hook for raise/skip sites.

    Returns False (and does nothing else) when nothing is armed — the
    common case is one global bool check.  When the site fires: a
    ``raise`` config raises its exception; a ``skip`` config returns
    True, telling the caller to skip the guarded operation; a ``torn``
    config at a non-payload site is treated as ``skip``.
    """
    if not _registry._armed:
        return False
    config = _registry.evaluate(site)
    if config is None:
        return False
    if config.action == "raise":
        raise config.build_exception()
    return True


def mangle(site: str, data: bytes) -> bytes:
    """The production hook for payload sites (torn-write injection).

    Identity when nothing is armed.  A ``torn`` config truncates the
    payload to ``keep_bytes`` (default: half); a ``raise`` config raises;
    a ``skip`` config drops the payload entirely (returns ``b""``).
    """
    if not _registry._armed:
        return data
    config = _registry.evaluate(site)
    if config is None:
        return data
    if config.action == "raise":
        raise config.build_exception()
    if config.action == "skip":
        return b""
    keep = config.keep_bytes if config.keep_bytes is not None else len(data) // 2
    return data[:keep]


def configure(
    site: str,
    action: str = "raise",
    *,
    exc: Optional[Type[BaseException]] = None,
    message: str = "",
    keep_bytes: Optional[int] = None,
    at_hit: int = 1,
    times: Optional[int] = None,
) -> None:
    _registry.configure(
        site,
        action,
        exc=exc,
        message=message,
        keep_bytes=keep_bytes,
        at_hit=at_hit,
        times=times,
    )


def activate_spec(spec: str) -> int:
    return _registry.activate_spec(spec)


def clear(site: Optional[str] = None) -> None:
    _registry.clear(site)


def reset() -> None:
    _registry.reset()


def armed() -> bool:
    return _registry.armed


def active() -> Dict[str, str]:
    return _registry.active()


def hits(site: str) -> int:
    return _registry.hits(site)


def fires(site: str) -> int:
    return _registry.fires(site)


def counters() -> Dict[str, Dict[str, int]]:
    return _registry.counters()


def set_metrics(registry) -> None:
    _registry.set_metrics(registry)


@contextmanager
def scoped(spec: str) -> Iterator[FailpointRegistry]:
    """Arm a spec for the duration of a ``with`` block, then disarm.

    Only the sites named in ``spec`` are cleared on exit, so nesting
    scopes over disjoint sites composes; counters for the scoped sites
    are discarded with them.
    """
    armed_sites = set(_registry.active())
    _registry.activate_spec(spec)
    added = set(_registry.active()) - armed_sites
    try:
        yield _registry
    finally:
        for site in added:
            _registry.clear(site)


def load_from_env(environ=os.environ) -> int:
    """Arm sites from ``REPRO_FAILPOINTS`` if set; returns sites armed."""
    spec = environ.get("REPRO_FAILPOINTS", "").strip()
    if not spec:
        return 0
    return _registry.activate_spec(spec)


# Env activation happens at import so a spec exported before launching
# any entry point (CLI, server, pytest) arms the process without code
# changes.  A malformed spec must fail loudly here, not silently run the
# workload un-faulted.
load_from_env()
