"""Command-line interface: run SQL-TS queries over CSV files.

Usage examples::

    # Run a query over a CSV-backed table.
    python -m repro query \
        --table "quote=quotes.csv:name:str,date:date,price:float" \
        --positive price \
        "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date \
         AS (X, Y, Z) WHERE Y.price > 1.15*X.price AND Z.price < 0.8*Y.price"

    # Show the compiled OPS plan without touching data.
    python -m repro explain --positive price \
        "SELECT X.date FROM djia SEQUENCE BY date AS (X, *Y, Z) \
         WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price"

    # The built-in synthetic datasets are available without --table:
    python -m repro query --demo-data --stats \
        "SELECT X.NEXT.date FROM djia SEQUENCE BY date AS (X, *Y, S) \
         WHERE Y.price < 0.98*Y.previous.price AND S.price > S.previous.price"

The ``query`` subcommand prints the result relation; ``--stats`` adds the
paper's predicate-test counts per matcher; ``--matcher`` selects the
evaluator (default ``ops``).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from typing import Optional, Sequence

from repro.bench.harness import NAMED_MATCHERS
from repro.engine.catalog import Catalog
from repro.engine.columnar import load_table
from repro.engine.csv_io import _render, iter_csv
from repro.engine.executor import Executor
from repro.engine.table import Schema
from repro.errors import ExecutionError, ReproError
from repro.match.base import Instrumentation
from repro.obs import Trace
from repro.pattern.predicates import AttributeDomains
from repro.resilience import CancelToken, Diagnostics, ErrorPolicy, ResourceLimits

#: Exit code when a resource limit cut the query short (results partial).
EXIT_LIMIT_HIT = 3


def _activate_failpoints(args: argparse.Namespace) -> None:
    """Arm ``--failpoints SPEC`` before the command touches any data."""
    spec = getattr(args, "failpoints", None)
    if not spec:
        return
    from repro import failpoints
    from repro.failpoints import KNOWN_SITES, FailpointSpecError

    if spec.strip() == "help":
        for site in KNOWN_SITES:
            print(site)
        raise SystemExit(0)
    try:
        failpoints.activate_spec(spec)
    except FailpointSpecError as error:
        raise ExecutionError(f"bad --failpoints spec: {error}") from None


def _add_failpoints_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--failpoints",
        metavar="SPEC",
        default=None,
        help="arm deterministic fault injection, e.g. "
        "'checkpoint.fsync=skip;checkpoint.write=torn@2*1' "
        "(testing only; see docs/observability.md)",
    )


def _cancel_on_signals(token: CancelToken) -> dict:
    """Route SIGINT/SIGTERM into cooperative cancellation.

    Instead of dying mid-query, a signalled ``query`` returns its
    partial results (exit code {EXIT_LIMIT_HIT}) and a signalled
    ``stream`` writes a final checkpoint before exiting — the run is
    resumable with ``--resume``.  Returns the previous handlers for
    :func:`_restore_signals`; outside the main thread (embedded use)
    handlers cannot be installed and the dict is empty.
    """
    def handler(signum, frame):
        token.cancel(f"received {signal.Signals(signum).name}")

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except ValueError:
            break
    return previous


def _restore_signals(previous: dict) -> None:
    for sig, old in previous.items():
        signal.signal(sig, old)


def _parse_table_spec(spec: str) -> tuple[str, str, Schema]:
    """Parse ``name=path.csv:col:type,col:type,...`` into its parts."""
    try:
        name, rest = spec.split("=", 1)
        path, schema_text = rest.split(":", 1)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --table spec {spec!r}; expected name=path.csv:col:type,..."
        ) from None
    columns = []
    for chunk in schema_text.split(","):
        try:
            column, type_name = chunk.split(":")
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad column spec {chunk!r}; expected col:type"
            ) from None
        columns.append((column.strip(), type_name.strip()))
    try:
        return name, path, Schema(columns)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_catalog(
    args: argparse.Namespace, diagnostics: Optional[Diagnostics] = None
) -> Catalog:
    catalog = Catalog()
    if args.demo_data:
        from repro.data.djia import djia_table
        from repro.data.quotes import quote_table

        catalog.register(djia_table())
        catalog.register(quote_table())
    policy = getattr(args, "on_error", "raise")
    for name, path, schema in args.table:
        # load_table serves .rcol columnar files (and CSV sidecars)
        # out-of-core via mmap; a rejected sidecar falls back to plain
        # CSV ingest with a diagnostic, never an error.
        catalog.register(
            load_table(path, name, schema, policy=policy, diagnostics=diagnostics)
        )
    return catalog


def _limits_from_args(args: argparse.Namespace) -> ResourceLimits:
    try:
        return ResourceLimits(
            max_matches=args.max_matches,
            wall_clock_deadline=args.timeout,
            max_stream_buffer=getattr(args, "max_stream_buffer", None),
        )
    except ValueError as error:
        raise ExecutionError(str(error)) from None


def _write_diagnostics_json(args: argparse.Namespace, diagnostics: Diagnostics) -> None:
    """Serialize diagnostics to ``--diagnostics-json PATH`` when given.

    Called on every exit path of a command — including exit code
    {EXIT_LIMIT_HIT} (partial results) — so machine consumers always see
    the counters.
    """
    path = getattr(args, "diagnostics_json", None)
    if not path:
        return
    with open(path, "w") as handle:
        json.dump(diagnostics.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("sql", help="the SQL-TS query text")
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        type=_parse_table_spec,
        metavar="NAME=PATH:COL:TYPE,...",
        help="register a CSV file as a table (repeatable)",
    )
    parser.add_argument(
        "--demo-data",
        action="store_true",
        help="register the built-in synthetic djia and quote tables",
    )
    parser.add_argument(
        "--positive",
        action="append",
        default=[],
        metavar="ATTR",
        help="declare an attribute positive (enables the ratio rewrite; "
        "repeatable; 'price' is what the paper's queries need)",
    )


def _command_query(args: argparse.Namespace, out) -> int:
    _activate_failpoints(args)
    diagnostics = Diagnostics()
    catalog = _build_catalog(args, diagnostics)
    domains = AttributeDomains(args.positive)
    executor = Executor(
        catalog,
        domains=domains,
        matcher=args.matcher,
        policy=args.on_error,
        limits=_limits_from_args(args),
        workers=args.workers,
        parallel_mode=args.parallel_mode,
        evaluator=args.evaluator,
    )
    instrumentation = Instrumentation()
    trace = Trace() if args.profile else None
    token = CancelToken()
    previous = _cancel_on_signals(token)
    try:
        result, report = executor.execute_with_report(
            args.sql, instrumentation, cancel=token, trace=trace
        )
    except ReproError:
        _write_diagnostics_json(args, diagnostics)
        raise
    finally:
        _restore_signals(previous)
    diagnostics.merge(report.diagnostics)
    _write_diagnostics_json(args, diagnostics)
    print(result.pretty(max_rows=args.max_rows), file=out)
    print(f"({len(result)} rows)", file=out)
    if args.profile and result.profile is not None:
        print(file=out)
        print(result.profile.render(), file=out)
    if not diagnostics.ok:
        print(diagnostics.summary(), file=sys.stderr)
    if args.stats:
        print(file=out)
        print(
            f"matcher={report.matcher} clusters={report.clusters} "
            f"rows_scanned={report.rows_scanned} "
            f"predicate_tests={report.predicate_tests} "
            f"matches={report.matches}",
            file=out,
        )
        if args.matcher != "naive":
            naive_inst = Instrumentation()
            Executor(catalog, domains=domains, matcher="naive").execute(
                args.sql, naive_inst
            )
            if instrumentation.tests:
                speedup = naive_inst.tests / instrumentation.tests
                print(
                    f"naive_tests={naive_inst.tests} speedup={speedup:.2f}x",
                    file=out,
                )
    return EXIT_LIMIT_HIT if diagnostics.limit_hit else 0


def _stream_source(args: argparse.Namespace, diagnostics: Diagnostics):
    """Build the offset-addressable row source for the query's table.

    A ``--table`` spec whose name matches the query's FROM clause streams
    straight from its CSV file (resumable by offset, never fully
    loaded); ``--demo-data`` tables are materialized and sliced.
    """
    from repro.sqlts.parser import parse_query

    parsed = parse_query(args.sql)
    table_name = parsed.table
    for name, path, schema in args.table:
        if name == table_name:
            policy = args.on_error
            return lambda start: iter_csv(
                path,
                schema,
                start_offset=start,
                policy=policy,
                diagnostics=diagnostics,
            )
    if args.demo_data:
        from repro.data.djia import djia_table
        from repro.data.quotes import quote_table

        for table in (djia_table(), quote_table()):
            if table.name == table_name:
                rows = list(table)
                if parsed.sequence_by:
                    rows.sort(
                        key=lambda row: tuple(
                            row[attr] for attr in parsed.sequence_by
                        )
                    )
                return lambda start: (
                    (offset, row)
                    for offset, row in enumerate(rows)
                    if offset >= start
                )
    raise ExecutionError(
        f"no stream source for table {table_name!r}: pass a matching "
        f"--table spec or --demo-data"
    )


def _stream_store(args: argparse.Namespace):
    """Build the stream's checkpoint store from ``--checkpoint`` flags.

    ``--checkpoint-replicas 1`` (the default) keeps the legacy single
    flat file; N > 1 replicates across ``PATH``, ``PATH.r1`` …
    ``PATH.r{{N-1}}`` with quorum writes and repair-on-load.
    """
    from repro.recovery import CheckpointStore, ReplicatedCheckpointStore

    if not args.checkpoint:
        return None
    replicas = getattr(args, "checkpoint_replicas", 1)
    if replicas < 1:
        raise ExecutionError("--checkpoint-replicas must be >= 1")
    if replicas == 1:
        return CheckpointStore(args.checkpoint)
    paths = [args.checkpoint] + [
        f"{args.checkpoint}.r{index}" for index in range(1, replicas)
    ]
    return ReplicatedCheckpointStore(paths)


def _command_stream(args: argparse.Namespace, out) -> int:
    from repro.recovery import CheckpointPolicy, RetryPolicy

    _activate_failpoints(args)
    diagnostics = Diagnostics()
    source_factory = _stream_source(args, diagnostics)
    executor = Executor(
        Catalog(),
        domains=AttributeDomains(args.positive),
        limits=_limits_from_args(args),
        codegen=args.evaluator == "compiled",
    )
    store = _stream_store(args)
    if args.resume and store is None:
        raise ExecutionError("--resume requires --checkpoint PATH")
    checkpoints = CheckpointPolicy(
        every_rows=args.checkpoint_every,
        every_seconds=args.checkpoint_interval,
    )
    retry = RetryPolicy(
        max_retries=args.retry, backoff=args.backoff, jitter=args.retry_jitter
    )
    count = 0
    token = CancelToken()
    previous = _cancel_on_signals(token)
    try:
        streaming = executor.stream(
            args.sql,
            source_factory,
            store=store,
            checkpoints=checkpoints,
            retry=retry,
            resume=args.resume,
            overflow=args.overflow,
            diagnostics=diagnostics,
            stop=token,
        )
        print(",".join(streaming.columns), file=out)
        for row in streaming.rows:
            print(",".join(_render(value) for value in row), file=out, flush=True)
            count += 1
            if args.throttle:
                time.sleep(args.throttle)
    finally:
        _restore_signals(previous)
        _write_diagnostics_json(args, diagnostics)
    print(f"({count} rows)", file=out)
    if not diagnostics.ok:
        print(diagnostics.summary(), file=sys.stderr)
    return EXIT_LIMIT_HIT if diagnostics.limit_hit else 0


def _command_explain(args: argparse.Namespace, out) -> int:
    catalog = _build_catalog(args)
    domains = AttributeDomains(args.positive)
    executor = Executor(catalog, domains=domains, matcher=args.matcher)
    analyzed, compiled = executor.prepare(args.sql)
    print(f"table: {analyzed.table}", file=out)
    if analyzed.cluster_by:
        print(f"cluster by: {', '.join(analyzed.cluster_by)}", file=out)
    if analyzed.sequence_by:
        print(f"sequence by: {', '.join(analyzed.sequence_by)}", file=out)
    if analyzed.cluster_filter:
        rendered = " AND ".join(str(c) for c in analyzed.cluster_filter)
        print(f"cluster filter: {rendered}", file=out)
    print(file=out)
    for element in analyzed.spec:
        print(f"  {element}: {element.predicate!r}", file=out)
    print(file=out)
    print(compiled.describe(), file=out)
    if compiled.graph is not None:
        print(file=out)
        print("implication graph G_P:", file=out)
        print(compiled.graph.render(), file=out)
    if args.analyze:
        trace = Trace()
        result = executor.execute(args.sql, trace=trace)
        print(file=out)
        print(result.profile.render(), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQL-TS sequence queries with the OPS optimizer (PODS 2001)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="execute a query")
    _add_common_arguments(query)
    query.add_argument(
        "--matcher",
        choices=sorted(NAMED_MATCHERS),
        default="ops",
        help="evaluation strategy (default: ops)",
    )
    query.add_argument(
        "--stats", action="store_true", help="print execution statistics"
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="trace the execution and print the EXPLAIN ANALYZE-style "
        "operator tree (wall time, rows, predicate tests per cluster)",
    )
    query.add_argument(
        "--max-rows", type=int, default=20, help="rows to display (default 20)"
    )
    query.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="how to treat malformed rows and unplannable patterns: "
        "raise aborts (default), skip quarantines and continues, "
        "collect additionally retains the error objects",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; on expiry the query returns partial "
        f"results and exits with code {EXIT_LIMIT_HIT}",
    )
    query.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="stop after N matches (kept); exits with code "
        f"{EXIT_LIMIT_HIT} when the cap is hit",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="partition-parallel workers (default 1: serial); output is "
        "identical to serial execution — see docs/performance.md",
    )
    query.add_argument(
        "--parallel-mode",
        choices=["auto", "process", "thread"],
        default="auto",
        help="worker pool flavor for --workers > 1: process pools suit "
        "compiled CPU-bound work, threads suit small inputs "
        "(default: auto)",
    )
    query.add_argument(
        "--evaluator",
        choices=["auto", "columnar", "row"],
        default="auto",
        help="predicate path: columnar materializes vectorized truth "
        "arrays per cluster, row keeps the per-row closures; auto "
        "(default) goes columnar when NumPy is available — matches are "
        "byte-identical in every mode (see docs/performance.md)",
    )
    query.add_argument(
        "--diagnostics-json",
        metavar="PATH",
        default=None,
        help="write Diagnostics counters as JSON to PATH (written on "
        "every exit path, including partial results)",
    )
    _add_failpoints_argument(query)
    query.set_defaults(func=_command_query)

    stream = subparsers.add_parser(
        "stream",
        help="execute a query as a crash-recoverable stream "
        "(checkpoint/resume, retry/backoff, exactly-once emission)",
    )
    _add_common_arguments(stream)
    stream.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="durable checkpoint file (written atomically; "
        "PATH.prev keeps the previous good checkpoint)",
    )
    stream.add_argument(
        "--checkpoint-replicas",
        type=int,
        default=1,
        metavar="N",
        help="replicate the checkpoint across N files (PATH, PATH.r1, "
        "...) with majority-quorum writes and repair-on-load "
        "(default 1: single flat file)",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="restore matcher state and source position from --checkpoint "
        "instead of starting over; already-emitted matches are suppressed",
    )
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=500,
        metavar="N",
        help="checkpoint every N source rows (default 500)",
    )
    stream.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="additionally checkpoint every SECONDS of wall-clock time",
    )
    stream.add_argument(
        "--retry",
        type=int,
        default=0,
        metavar="N",
        help="retry a failing source up to N consecutive times "
        "(default 0: fail fast)",
    )
    stream.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="initial retry backoff, doubled per consecutive failure "
        "(default 0.1)",
    )
    stream.add_argument(
        "--retry-jitter",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="randomize each retry delay: 0 keeps the exact geometric "
        "schedule (default), 1 is full jitter in [0, delay)",
    )
    stream.add_argument(
        "--overflow",
        choices=["raise", "restart"],
        default="raise",
        help="stream-buffer overflow behavior (restart drops the oldest "
        "rows and keeps matching; spanning matches are lost)",
    )
    stream.add_argument(
        "--max-stream-buffer",
        type=int,
        default=None,
        metavar="N",
        help="hard cap on the look-back window (rows)",
    )
    stream.add_argument(
        "--evaluator",
        choices=["compiled", "interpreted"],
        default="compiled",
        help="predicate evaluator (default: compiled); checkpoints are "
        "interchangeable between the two",
    )
    stream.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="how to treat malformed source rows: raise aborts (default), "
        "skip/collect quarantine and continue",
    )
    stream.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; on expiry the stream stops with "
        f"partial results and exit code {EXIT_LIMIT_HIT}",
    )
    stream.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="stop after N matches (kept); exits with code "
        f"{EXIT_LIMIT_HIT} when the cap is hit",
    )
    stream.add_argument(
        "--diagnostics-json",
        metavar="PATH",
        default=None,
        help="write Diagnostics counters (retries, checkpoints "
        "written/restored, suppressed duplicates) as JSON to PATH",
    )
    stream.add_argument(
        "--throttle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sleep SECONDS after each emitted row (pacing for demos "
        "and interruption tests)",
    )
    _add_failpoints_argument(stream)
    stream.set_defaults(func=_command_stream)

    explain = subparsers.add_parser(
        "explain", help="show the compiled OPS plan for a query"
    )
    _add_common_arguments(explain)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="additionally execute the query under tracing and print the "
        "per-operator profile (like EXPLAIN ANALYZE)",
    )
    explain.add_argument(
        "--matcher",
        choices=sorted(NAMED_MATCHERS),
        default="ops",
        help="evaluation strategy for --analyze (default: ops)",
    )
    explain.set_defaults(func=_command_explain)

    serve = subparsers.add_parser(
        "serve",
        help="run the always-on query service over the registered tables "
        "(per-tenant admission control, backpressure, graceful drain)",
    )
    serve.add_argument(
        "--table",
        action="append",
        default=[],
        type=_parse_table_spec,
        metavar="NAME=PATH:COL:TYPE,...",
        help="register a CSV file as a served table (repeatable)",
    )
    serve.add_argument(
        "--demo-data",
        action="store_true",
        help="serve the built-in synthetic djia and quote tables",
    )
    serve.add_argument(
        "--positive",
        action="append",
        default=[],
        metavar="ATTR",
        help="declare an attribute positive (enables the ratio rewrite)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick an ephemeral port, printed on start)",
    )
    serve.add_argument(
        "--pool-workers",
        type=int,
        default=4,
        metavar="N",
        help="query worker threads (default 4)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="partition-parallel workers per query (default 1: serial)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="default per-tenant concurrent-query cap (default 4)",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=16,
        metavar="N",
        help="default per-tenant queued-request cap beyond the "
        "concurrency cap (default 16)",
    )
    serve.add_argument(
        "--rows-per-second",
        type=float,
        default=None,
        metavar="RATE",
        help="default per-tenant scanned-row budget (token bucket); "
        "exhausted tenants are rejected with a retry_after hint",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-query wall-clock deadline applied to every tenant",
    )
    serve.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="default per-query match cap applied to every tenant",
    )
    serve.add_argument(
        "--quota-json",
        metavar="PATH",
        default=None,
        help="JSON file of per-tenant quota overrides: "
        '{"tenant": {"max_concurrent": 2, "rows_per_second": 1000, '
        '"timeout": 5, "max_matches": 100, "max_rows_scanned": 50000, '
        '"max_queued": 8}}',
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for per-subscription checkpoints (enables "
        "exactly-once resumable subscriptions)",
    )
    serve.add_argument(
        "--checkpoint-replicas",
        type=int,
        default=1,
        metavar="N",
        help="replicate each subscription checkpoint across N replica "
        "subdirectories of --checkpoint-dir with majority-quorum "
        "writes and repair-on-load (default 1: single file)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="on shutdown, let in-flight queries finish for SECONDS "
        "before cancelling them (default 5)",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="let clients trigger a drain via the shutdown op",
    )
    serve.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="error policy for CSV loading and query execution",
    )
    serve.add_argument(
        "--slow-query-log",
        metavar="PATH",
        default=None,
        help="append a JSON line for every query slower than "
        "--slow-query-threshold",
    )
    serve.add_argument(
        "--slow-query-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="wall-time threshold for the slow-query log (default 1.0)",
    )
    serve.add_argument(
        "--slow-query-log-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the slow-query log to PATH.1 before it would exceed "
        "BYTES (default: grow without bound)",
    )
    _add_failpoints_argument(serve)
    serve.set_defaults(func=_command_serve)

    call = subparsers.add_parser(
        "call", help="send one query to a running repro serve instance"
    )
    call.add_argument("sql", help="the SQL-TS query text")
    call.add_argument("--host", default="127.0.0.1")
    call.add_argument("--port", type=int, required=True)
    call.add_argument("--tenant", default="default")
    call.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline (tightens the tenant quota)",
    )
    call.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="per-request match cap (tightens the tenant quota)",
    )
    call.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="reconnect up to N times on connection loss with full-jitter "
        "backoff (0 disables failover; default: 4)",
    )
    call.set_defaults(func=_command_call)

    subscribe = subparsers.add_parser(
        "subscribe",
        help="stream a query's matches from a running repro serve "
        "instance (exactly-once with --after-seq)",
    )
    subscribe.add_argument("sql", help="the SQL-TS query text")
    subscribe.add_argument("--host", default="127.0.0.1")
    subscribe.add_argument("--port", type=int, required=True)
    subscribe.add_argument("--tenant", default="default")
    subscribe.add_argument(
        "--subscription",
        required=True,
        metavar="ID",
        help="durable subscription id (names the server-side checkpoint)",
    )
    subscribe.add_argument(
        "--after-seq",
        type=int,
        default=-1,
        metavar="SEQ",
        help="exactly-once high-water mark: suppress matches with "
        "seq <= SEQ (pass the last seq you received)",
    )
    subscribe.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="on connection loss, reconnect and resume from the last "
        "received seq up to N times (0 disables failover; default: 4)",
    )
    subscribe.set_defaults(func=_command_subscribe)

    script = subparsers.add_parser(
        "script",
        help="run a ;-separated script of CREATE TABLE / INSERT / SELECT",
    )
    script.add_argument("path", help="path to the .sql script file")
    script.add_argument(
        "--positive",
        action="append",
        default=[],
        metavar="ATTR",
        help="declare an attribute positive (enables the ratio rewrite)",
    )
    script.add_argument(
        "--matcher",
        choices=sorted(NAMED_MATCHERS),
        default="ops",
        help="evaluation strategy (default: ops)",
    )
    script.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="raise aborts on the first failing statement (default); "
        "skip/collect quarantine bad rows, and collect also continues "
        "past failing statements",
    )
    script.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="partition-parallel workers for the script's queries "
        "(default 1: serial)",
    )
    script.add_argument(
        "--diagnostics-json",
        metavar="PATH",
        default=None,
        help="write Diagnostics counters as JSON to PATH (written even "
        "when a statement fails)",
    )
    script.set_defaults(func=_command_script)
    return parser


def _command_script(args: argparse.Namespace, out) -> int:
    from repro.engine.session import Session

    with open(args.path) as handle:
        text = handle.read()
    session = Session(
        domains=AttributeDomains(args.positive),
        matcher=args.matcher,
        policy=args.on_error,
        workers=args.workers,
    )
    try:
        for result in session.run_script(text):
            print(result.pretty(), file=out)
            print(f"({len(result)} rows)", file=out)
            print(file=out)
    finally:
        _write_diagnostics_json(args, session.diagnostics)
    if not session.diagnostics.ok:
        print(session.diagnostics.summary(), file=sys.stderr)
    return EXIT_LIMIT_HIT if session.diagnostics.limit_hit else 0


def _quotas_from_json(path: str, args: argparse.Namespace) -> dict:
    from repro.serve import TenantQuota

    with open(path) as handle:
        specs = json.load(handle)
    if not isinstance(specs, dict):
        raise ExecutionError(
            f"--quota-json must hold an object of tenant -> quota, "
            f"got {type(specs).__name__}"
        )
    quotas = {}
    for tenant, spec in specs.items():
        try:
            limits = ResourceLimits(
                max_matches=spec.get("max_matches", args.max_matches),
                max_rows_scanned=spec.get("max_rows_scanned"),
                wall_clock_deadline=spec.get("timeout", args.timeout),
            )
            quotas[tenant] = TenantQuota(
                limits=limits,
                max_concurrent=spec.get("max_concurrent", args.max_concurrent),
                max_queued=spec.get("max_queued", args.max_queued),
                rows_per_second=spec.get(
                    "rows_per_second", args.rows_per_second
                ),
            )
        except (ValueError, AttributeError, TypeError) as error:
            raise ExecutionError(
                f"bad quota for tenant {tenant!r}: {error}"
            ) from None
    return quotas


def _command_serve(args: argparse.Namespace, out) -> int:
    from repro.serve import QueryServer, ServerThread, TenantQuota

    _activate_failpoints(args)
    diagnostics = Diagnostics()
    catalog = _build_catalog(args, diagnostics)
    if len(catalog) == 0:
        raise ExecutionError(
            "nothing to serve: pass --table specs and/or --demo-data"
        )
    default_quota = TenantQuota(
        limits=ResourceLimits(
            max_matches=args.max_matches, wall_clock_deadline=args.timeout
        ),
        max_concurrent=args.max_concurrent,
        max_queued=args.max_queued,
        rows_per_second=args.rows_per_second,
    )
    quotas = _quotas_from_json(args.quota_json, args) if args.quota_json else {}
    server = QueryServer(
        catalog,
        domains=AttributeDomains(args.positive),
        policy=args.on_error,
        quotas=quotas,
        default_quota=default_quota,
        pool_workers=args.pool_workers,
        query_workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        drain_grace=args.drain_grace,
        host=args.host,
        port=args.port,
        allow_remote_shutdown=args.allow_remote_shutdown,
        slow_query_threshold=args.slow_query_threshold,
        slow_query_log=args.slow_query_log,
        slow_query_log_max_bytes=args.slow_query_log_max_bytes,
        checkpoint_replicas=args.checkpoint_replicas,
    )
    stop = threading.Event()
    previous = {}

    def handler(signum, frame):
        stop.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except ValueError:
            break
    handle = ServerThread(server).start()
    try:
        host, port = handle.address
        tables = ", ".join(sorted(table.name for table in catalog))
        print(f"serving {tables} on {host}:{port}", file=out, flush=True)
        while not stop.wait(0.2):
            if server.draining:  # remote shutdown request
                break
        print("draining...", file=out, flush=True)
    finally:
        _restore_signals(previous)
        handle.stop(grace=args.drain_grace)
    print("stopped", file=out, flush=True)
    return 0


def _failover_from_args(args: argparse.Namespace):
    """Map ``--retries`` to a client failover policy.

    ``None`` (flag omitted) keeps the client default; ``0`` disables
    reconnection entirely (``failover=None``).
    """
    from repro.serve.client import _DEFAULT_FAILOVER, FailoverPolicy

    retries = getattr(args, "retries", None)
    if retries is None:
        return _DEFAULT_FAILOVER
    if retries < 0:
        raise ExecutionError("--retries must be >= 0")
    if retries == 0:
        return None
    return FailoverPolicy(max_retries=retries)


def _command_call(args: argparse.Namespace, out) -> int:
    from repro.serve import ServeClient
    from repro.serve.client import ServeError

    with ServeClient(
        args.host, args.port, tenant=args.tenant,
        failover=_failover_from_args(args),
    ) as client:
        try:
            reply = client.query(
                args.sql, timeout=args.timeout, max_matches=args.max_matches
            )
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            if error.retry_after is not None:
                print(
                    f"retry after {error.retry_after}s", file=sys.stderr
                )
            return 1
    print(",".join(reply.columns), file=out)
    for row in reply.rows:
        print(",".join(_render(value) for value in row), file=out)
    print(f"({len(reply.rows)} rows)", file=out)
    if reply.limits_hit:
        for reason in reply.limits_hit:
            print(f"limit: {reason}", file=sys.stderr)
    return EXIT_LIMIT_HIT if reply.limit_hit else 0


def _command_subscribe(args: argparse.Namespace, out) -> int:
    from repro.serve import ServeClient
    from repro.serve.client import ServeError

    with ServeClient(
        args.host, args.port, tenant=args.tenant,
        failover=_failover_from_args(args),
    ) as client:
        try:
            rows = client.subscribe(
                args.sql,
                args.subscription,
                after_seq=args.after_seq,
                on_begin=lambda begin: print(
                    "seq," + ",".join(begin["columns"]), file=out, flush=True
                ),
            )
            count = 0
            for row in rows:
                rendered = ",".join(_render(value) for value in row.values)
                print(f"{row.seq},{rendered}", file=out, flush=True)
                count += 1
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    end = client.last_end or {}
    print(f"({count} rows, last_seq={end.get('last_seq')})", file=out)
    return EXIT_LIMIT_HIT if end.get("limit_hit") else 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
