"""Command-line interface: run SQL-TS queries over CSV files.

Usage examples::

    # Run a query over a CSV-backed table.
    python -m repro query \
        --table "quote=quotes.csv:name:str,date:date,price:float" \
        --positive price \
        "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date \
         AS (X, Y, Z) WHERE Y.price > 1.15*X.price AND Z.price < 0.8*Y.price"

    # Show the compiled OPS plan without touching data.
    python -m repro explain --positive price \
        "SELECT X.date FROM djia SEQUENCE BY date AS (X, *Y, Z) \
         WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price"

    # The built-in synthetic datasets are available without --table:
    python -m repro query --demo-data --stats \
        "SELECT X.NEXT.date FROM djia SEQUENCE BY date AS (X, *Y, S) \
         WHERE Y.price < 0.98*Y.previous.price AND S.price > S.previous.price"

The ``query`` subcommand prints the result relation; ``--stats`` adds the
paper's predicate-test counts per matcher; ``--matcher`` selects the
evaluator (default ``ops``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.harness import NAMED_MATCHERS
from repro.engine.catalog import Catalog
from repro.engine.csv_io import load_csv
from repro.engine.executor import Executor
from repro.engine.table import Schema
from repro.errors import ExecutionError, ReproError
from repro.match.base import Instrumentation
from repro.pattern.predicates import AttributeDomains
from repro.resilience import Diagnostics, ErrorPolicy, ResourceLimits

#: Exit code when a resource limit cut the query short (results partial).
EXIT_LIMIT_HIT = 3


def _parse_table_spec(spec: str) -> tuple[str, str, Schema]:
    """Parse ``name=path.csv:col:type,col:type,...`` into its parts."""
    try:
        name, rest = spec.split("=", 1)
        path, schema_text = rest.split(":", 1)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad --table spec {spec!r}; expected name=path.csv:col:type,..."
        ) from None
    columns = []
    for chunk in schema_text.split(","):
        try:
            column, type_name = chunk.split(":")
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad column spec {chunk!r}; expected col:type"
            ) from None
        columns.append((column.strip(), type_name.strip()))
    try:
        return name, path, Schema(columns)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_catalog(
    args: argparse.Namespace, diagnostics: Optional[Diagnostics] = None
) -> Catalog:
    catalog = Catalog()
    if args.demo_data:
        from repro.data.djia import djia_table
        from repro.data.quotes import quote_table

        catalog.register(djia_table())
        catalog.register(quote_table())
    policy = getattr(args, "on_error", "raise")
    for name, path, schema in args.table:
        catalog.register(
            load_csv(path, name, schema, policy=policy, diagnostics=diagnostics)
        )
    return catalog


def _limits_from_args(args: argparse.Namespace) -> ResourceLimits:
    try:
        return ResourceLimits(
            max_matches=args.max_matches,
            wall_clock_deadline=args.timeout,
        )
    except ValueError as error:
        raise ExecutionError(str(error)) from None


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("sql", help="the SQL-TS query text")
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        type=_parse_table_spec,
        metavar="NAME=PATH:COL:TYPE,...",
        help="register a CSV file as a table (repeatable)",
    )
    parser.add_argument(
        "--demo-data",
        action="store_true",
        help="register the built-in synthetic djia and quote tables",
    )
    parser.add_argument(
        "--positive",
        action="append",
        default=[],
        metavar="ATTR",
        help="declare an attribute positive (enables the ratio rewrite; "
        "repeatable; 'price' is what the paper's queries need)",
    )


def _command_query(args: argparse.Namespace, out) -> int:
    diagnostics = Diagnostics()
    catalog = _build_catalog(args, diagnostics)
    domains = AttributeDomains(args.positive)
    executor = Executor(
        catalog,
        domains=domains,
        matcher=args.matcher,
        policy=args.on_error,
        limits=_limits_from_args(args),
    )
    instrumentation = Instrumentation()
    result, report = executor.execute_with_report(args.sql, instrumentation)
    diagnostics.merge(report.diagnostics)
    print(result.pretty(max_rows=args.max_rows), file=out)
    print(f"({len(result)} rows)", file=out)
    if not diagnostics.ok:
        print(diagnostics.summary(), file=sys.stderr)
    if args.stats:
        print(file=out)
        print(
            f"matcher={report.matcher} clusters={report.clusters} "
            f"rows_scanned={report.rows_scanned} "
            f"predicate_tests={report.predicate_tests} "
            f"matches={report.matches}",
            file=out,
        )
        if args.matcher != "naive":
            naive_inst = Instrumentation()
            Executor(catalog, domains=domains, matcher="naive").execute(
                args.sql, naive_inst
            )
            if instrumentation.tests:
                speedup = naive_inst.tests / instrumentation.tests
                print(
                    f"naive_tests={naive_inst.tests} speedup={speedup:.2f}x",
                    file=out,
                )
    return EXIT_LIMIT_HIT if diagnostics.limit_hit else 0


def _command_explain(args: argparse.Namespace, out) -> int:
    catalog = _build_catalog(args)
    domains = AttributeDomains(args.positive)
    executor = Executor(catalog, domains=domains)
    analyzed, compiled = executor.prepare(args.sql)
    print(f"table: {analyzed.table}", file=out)
    if analyzed.cluster_by:
        print(f"cluster by: {', '.join(analyzed.cluster_by)}", file=out)
    if analyzed.sequence_by:
        print(f"sequence by: {', '.join(analyzed.sequence_by)}", file=out)
    if analyzed.cluster_filter:
        rendered = " AND ".join(str(c) for c in analyzed.cluster_filter)
        print(f"cluster filter: {rendered}", file=out)
    print(file=out)
    for element in analyzed.spec:
        print(f"  {element}: {element.predicate!r}", file=out)
    print(file=out)
    print(compiled.describe(), file=out)
    if compiled.graph is not None:
        print(file=out)
        print("implication graph G_P:", file=out)
        print(compiled.graph.render(), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQL-TS sequence queries with the OPS optimizer (PODS 2001)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="execute a query")
    _add_common_arguments(query)
    query.add_argument(
        "--matcher",
        choices=sorted(NAMED_MATCHERS),
        default="ops",
        help="evaluation strategy (default: ops)",
    )
    query.add_argument(
        "--stats", action="store_true", help="print execution statistics"
    )
    query.add_argument(
        "--max-rows", type=int, default=20, help="rows to display (default 20)"
    )
    query.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="how to treat malformed rows and unplannable patterns: "
        "raise aborts (default), skip quarantines and continues, "
        "collect additionally retains the error objects",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline; on expiry the query returns partial "
        f"results and exits with code {EXIT_LIMIT_HIT}",
    )
    query.add_argument(
        "--max-matches",
        type=int,
        default=None,
        metavar="N",
        help="stop after N matches (kept); exits with code "
        f"{EXIT_LIMIT_HIT} when the cap is hit",
    )
    query.set_defaults(func=_command_query)

    explain = subparsers.add_parser(
        "explain", help="show the compiled OPS plan for a query"
    )
    _add_common_arguments(explain)
    explain.set_defaults(func=_command_explain)

    script = subparsers.add_parser(
        "script",
        help="run a ;-separated script of CREATE TABLE / INSERT / SELECT",
    )
    script.add_argument("path", help="path to the .sql script file")
    script.add_argument(
        "--positive",
        action="append",
        default=[],
        metavar="ATTR",
        help="declare an attribute positive (enables the ratio rewrite)",
    )
    script.add_argument(
        "--matcher",
        choices=sorted(NAMED_MATCHERS),
        default="ops",
        help="evaluation strategy (default: ops)",
    )
    script.add_argument(
        "--on-error",
        choices=[policy.value for policy in ErrorPolicy],
        default="raise",
        help="raise aborts on the first failing statement (default); "
        "skip/collect quarantine bad rows, and collect also continues "
        "past failing statements",
    )
    script.set_defaults(func=_command_script)
    return parser


def _command_script(args: argparse.Namespace, out) -> int:
    from repro.engine.session import Session

    with open(args.path) as handle:
        text = handle.read()
    session = Session(
        domains=AttributeDomains(args.positive),
        matcher=args.matcher,
        policy=args.on_error,
    )
    for result in session.run_script(text):
        print(result.pretty(), file=out)
        print(f"({len(result)} rows)", file=out)
        print(file=out)
    if not session.diagnostics.ok:
        print(session.diagnostics.summary(), file=sys.stderr)
    return EXIT_LIMIT_HIT if session.diagnostics.limit_hit else 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
