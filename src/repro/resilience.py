"""Error policies, resource limits, and execution diagnostics.

A production sequence engine cannot afford the seed's fail-fast posture:
one malformed CSV row or one adversarial pattern would abort a query that
is otherwise streaming millions of useful tuples.  This module is the
shared vocabulary of the resilience layer threaded through ingestion
(:mod:`repro.engine.csv_io`, :class:`repro.engine.session.Session`),
planning (:mod:`repro.engine.executor`), and matching
(:mod:`repro.match`):

- :class:`ErrorPolicy` — what to do when a recoverable fault is found
  (``RAISE`` keeps the seed's strict behavior and is the default
  everywhere, so existing callers observe no change);
- :class:`ResourceLimits` — declarative bounds on a query's footprint
  (match count, rows scanned, wall-clock time, stream buffer size);
- :class:`Budget` — the runtime enforcement of those limits, consulted
  cheaply (an int decrement on the hot path) by every matcher loop;
- :class:`Diagnostics` — the faithful record of everything that was
  skipped, quarantined, downgraded, or cut short, attached to
  :class:`~repro.engine.result.Result` and
  :class:`~repro.engine.executor.ExecutionReport`.

See ``docs/resilience.md`` for the full contract.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Optional, Union


class ErrorPolicy(enum.Enum):
    """How recoverable faults (dirty rows, unplannable patterns) are handled.

    - ``RAISE``: fail fast with the strict seed behavior (default);
    - ``SKIP``: drop the offending unit (row, statement), record it in
      :class:`Diagnostics`, and keep going;
    - ``COLLECT``: like ``SKIP``, but additionally retain the full error
      objects for post-mortem inspection.
    """

    RAISE = "raise"
    SKIP = "skip"
    COLLECT = "collect"

    @classmethod
    def coerce(cls, value: Union["ErrorPolicy", str]) -> "ErrorPolicy":
        """Accept an enum member or its string value (CLI-friendly)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            choices = sorted(p.value for p in cls)
            raise ValueError(
                f"unknown error policy {value!r} (choose from {choices})"
            ) from None

    @property
    def lenient(self) -> bool:
        """True for the policies that recover instead of raising."""
        return self is not ErrorPolicy.RAISE


@dataclass(frozen=True)
class ResourceLimits:
    """Declarative bounds on one query execution.  ``None`` = unlimited.

    - ``max_matches``: stop after this many matches (they are kept);
    - ``max_rows_scanned``: stop admitting clusters once this many input
      rows have been handed to the matcher;
    - ``wall_clock_deadline``: seconds from execution start after which
      matcher loops stop and return partial results;
    - ``max_stream_buffer``: hard cap on the
      :class:`~repro.match.streaming.OpsStreamMatcher` look-back window.
    """

    max_matches: Optional[int] = None
    max_rows_scanned: Optional[int] = None
    wall_clock_deadline: Optional[float] = None
    max_stream_buffer: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_matches", "max_rows_scanned", "max_stream_buffer"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.wall_clock_deadline is not None and self.wall_clock_deadline < 0:
            raise ValueError(
                f"wall_clock_deadline must be non-negative, "
                f"got {self.wall_clock_deadline}"
            )

    @property
    def bounded(self) -> bool:
        """True when at least one limit is set."""
        return any(
            getattr(self, name) is not None
            for name in (
                "max_matches",
                "max_rows_scanned",
                "wall_clock_deadline",
                "max_stream_buffer",
            )
        )

    @classmethod
    def unlimited(cls) -> "ResourceLimits":
        return cls()


@dataclass(frozen=True)
class QuarantinedRow:
    """One input row set aside instead of aborting the load.

    ``source`` is the CSV path or the statement kind (e.g. ``INSERT``);
    ``line`` is 1-based — the physical file line for CSVs, the row index
    within the statement for INSERTs.
    """

    source: str
    line: int
    reason: str
    values: tuple = ()

    def __str__(self) -> str:
        return f"{self.source}:{self.line}: {self.reason}"


@dataclass(frozen=True)
class StatementFailure:
    """A failed script statement retained under ``COLLECT``/``continue_on_error``."""

    index: int
    snippet: str
    error: Exception

    def __str__(self) -> str:
        return f"statement #{self.index} ({self.snippet!r}): {self.error}"


class Diagnostics:
    """Everything an execution skipped, quarantined, downgraded, or cut short.

    A clean run leaves every list empty (``ok`` is True); callers that
    never look at diagnostics observe today's behavior untouched.
    """

    __slots__ = ("warnings", "quarantined", "limits_hit", "errors", "downgrades")

    def __init__(self) -> None:
        self.warnings: list[str] = []
        self.quarantined: list[QuarantinedRow] = []
        self.limits_hit: list[str] = []
        self.errors: list[StatementFailure] = []
        self.downgrades: list[str] = []

    # -- recording ------------------------------------------------------

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def quarantine(
        self, source: str, line: int, reason: str, values: tuple = ()
    ) -> None:
        self.quarantined.append(QuarantinedRow(source, line, reason, values))

    def record_limit(self, reason: str) -> None:
        self.limits_hit.append(reason)

    def record_downgrade(self, message: str) -> None:
        self.downgrades.append(message)

    def record_error(self, index: int, snippet: str, error: Exception) -> None:
        self.errors.append(StatementFailure(index, snippet, error))

    def merge(self, other: "Diagnostics") -> None:
        """Fold another diagnostics record into this one."""
        self.warnings.extend(other.warnings)
        self.quarantined.extend(other.quarantined)
        self.limits_hit.extend(other.limits_hit)
        self.errors.extend(other.errors)
        self.downgrades.extend(other.downgrades)

    # -- inspection -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not (
            self.warnings
            or self.quarantined
            or self.limits_hit
            or self.errors
            or self.downgrades
        )

    @property
    def limit_hit(self) -> bool:
        return bool(self.limits_hit)

    @property
    def degraded(self) -> bool:
        return bool(self.downgrades)

    def summary(self) -> str:
        """A human-readable multi-line report (CLI stderr output)."""
        lines: list[str] = []
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} row(s):")
            lines.extend(f"  {row}" for row in self.quarantined[:20])
            hidden = len(self.quarantined) - 20
            if hidden > 0:
                lines.append(f"  ... ({hidden} more)")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        for downgrade in self.downgrades:
            lines.append(f"downgrade: {downgrade}")
        for reason in self.limits_hit:
            lines.append(f"limit exceeded: {reason}")
        if self.errors:
            lines.append(f"collected {len(self.errors)} statement error(s):")
            lines.extend(f"  {failure}" for failure in self.errors)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Diagnostics(warnings={len(self.warnings)}, "
            f"quarantined={len(self.quarantined)}, "
            f"limits_hit={len(self.limits_hit)}, "
            f"errors={len(self.errors)}, downgrades={len(self.downgrades)})"
        )


class Budget:
    """Runtime limit tracking, cheap enough for the innermost matcher loops.

    ``step()`` is the hot-path call: one int decrement most of the time,
    with the wall clock consulted every ``check_every`` steps.  The
    coarser events (``add_rows`` per cluster, ``add_match`` per match)
    check their limits exactly.  Once any limit trips, the budget stays
    tripped: every subsequent check returns True immediately, so nested
    loops unwind without extra bookkeeping, each matcher returning the
    matches it has accumulated so far.
    """

    __slots__ = (
        "limits",
        "diagnostics",
        "rows_scanned",
        "matches",
        "tripped",
        "_clock",
        "_deadline",
        "_stride",
        "_countdown",
    )

    def __init__(
        self,
        limits: ResourceLimits,
        diagnostics: Optional[Diagnostics] = None,
        clock: Callable[[], float] = time.monotonic,
        check_every: int = 256,
    ):
        if check_every < 1:
            raise ValueError(f"check_every must be positive, got {check_every}")
        self.limits = limits
        self.diagnostics = diagnostics
        self.rows_scanned = 0
        self.matches = 0
        self.tripped: Optional[str] = None
        self._clock = clock
        self._stride = check_every
        self._countdown = check_every
        self._deadline = (
            clock() + limits.wall_clock_deadline
            if limits.wall_clock_deadline is not None
            else None
        )
        # add_match() keeps the match that reaches the cap, so a cap of
        # zero must refuse work up front rather than after one match.
        if limits.max_matches == 0:
            self.trip("max_matches (0) reached")

    def trip(self, reason: str) -> bool:
        """Mark the budget exceeded (idempotent); always returns True."""
        if self.tripped is None:
            self.tripped = reason
            if self.diagnostics is not None:
                self.diagnostics.record_limit(reason)
        return True

    def step(self, steps: int = 1) -> bool:
        """One unit of matcher work; True when the loop must stop."""
        if self.tripped is not None:
            return True
        self._countdown -= steps
        if self._countdown > 0:
            return False
        self._countdown = self._stride
        return self.check_deadline()

    def check_deadline(self) -> bool:
        """Consult the wall clock now; True when execution must stop."""
        if self.tripped is not None:
            return True
        if self._deadline is not None and self._clock() > self._deadline:
            return self.trip(
                f"wall_clock_deadline "
                f"({self.limits.wall_clock_deadline}s) exceeded"
            )
        return False

    def add_rows(self, count: int) -> bool:
        """Account for rows about to be handed to the matcher.

        Check-then-charge: a batch that would push the total past the
        limit trips the budget and is *not* charged, because the caller
        skips it — so ``rows_scanned`` always equals the rows actually
        scanned and agrees with the executor's report accounting.
        """
        if self.tripped is not None:
            return True
        maximum = self.limits.max_rows_scanned
        if maximum is not None and self.rows_scanned + count > maximum:
            return self.trip(f"max_rows_scanned ({maximum}) exceeded")
        self.rows_scanned += count
        return False

    def add_match(self) -> bool:
        """Account for one recorded match; True when the cap is reached.

        The match that reaches the cap is *kept* — ``max_matches=N``
        yields exactly N matches, then stops.
        """
        if self.tripped is not None:
            return True
        self.matches += 1
        maximum = self.limits.max_matches
        if maximum is not None and self.matches >= maximum:
            return self.trip(f"max_matches ({maximum}) reached")
        return False

    def __repr__(self) -> str:
        state = f"tripped={self.tripped!r}" if self.tripped else "ok"
        return (
            f"Budget({state}, rows_scanned={self.rows_scanned}, "
            f"matches={self.matches})"
        )
