"""Error policies, resource limits, and execution diagnostics.

A production sequence engine cannot afford the seed's fail-fast posture:
one malformed CSV row or one adversarial pattern would abort a query that
is otherwise streaming millions of useful tuples.  This module is the
shared vocabulary of the resilience layer threaded through ingestion
(:mod:`repro.engine.csv_io`, :class:`repro.engine.session.Session`),
planning (:mod:`repro.engine.executor`), and matching
(:mod:`repro.match`):

- :class:`ErrorPolicy` — what to do when a recoverable fault is found
  (``RAISE`` keeps the seed's strict behavior and is the default
  everywhere, so existing callers observe no change);
- :class:`ResourceLimits` — declarative bounds on a query's footprint
  (match count, rows scanned, wall-clock time, stream buffer size);
- :class:`Budget` — the runtime enforcement of those limits, consulted
  cheaply (an int decrement on the hot path) by every matcher loop;
- :class:`Diagnostics` — the faithful record of everything that was
  skipped, quarantined, downgraded, or cut short, attached to
  :class:`~repro.engine.result.Result` and
  :class:`~repro.engine.executor.ExecutionReport`.

See ``docs/resilience.md`` for the full contract.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Union


class ErrorPolicy(enum.Enum):
    """How recoverable faults (dirty rows, unplannable patterns) are handled.

    - ``RAISE``: fail fast with the strict seed behavior (default);
    - ``SKIP``: drop the offending unit (row, statement), record it in
      :class:`Diagnostics`, and keep going;
    - ``COLLECT``: like ``SKIP``, but additionally retain the full error
      objects for post-mortem inspection.
    """

    RAISE = "raise"
    SKIP = "skip"
    COLLECT = "collect"

    @classmethod
    def coerce(cls, value: Union["ErrorPolicy", str]) -> "ErrorPolicy":
        """Accept an enum member or its string value (CLI-friendly)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            choices = sorted(p.value for p in cls)
            raise ValueError(
                f"unknown error policy {value!r} (choose from {choices})"
            ) from None

    @property
    def lenient(self) -> bool:
        """True for the policies that recover instead of raising."""
        return self is not ErrorPolicy.RAISE


@dataclass(frozen=True)
class ResourceLimits:
    """Declarative bounds on one query execution.  ``None`` = unlimited.

    - ``max_matches``: stop after this many matches (they are kept);
    - ``max_rows_scanned``: stop admitting clusters once this many input
      rows have been handed to the matcher;
    - ``wall_clock_deadline``: seconds from execution start after which
      matcher loops stop and return partial results;
    - ``max_stream_buffer``: hard cap on the
      :class:`~repro.match.streaming.OpsStreamMatcher` look-back window.
    """

    max_matches: Optional[int] = None
    max_rows_scanned: Optional[int] = None
    wall_clock_deadline: Optional[float] = None
    max_stream_buffer: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_matches", "max_rows_scanned", "max_stream_buffer"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.wall_clock_deadline is not None and self.wall_clock_deadline < 0:
            raise ValueError(
                f"wall_clock_deadline must be non-negative, "
                f"got {self.wall_clock_deadline}"
            )

    @property
    def bounded(self) -> bool:
        """True when at least one limit is set."""
        return any(
            getattr(self, name) is not None
            for name in (
                "max_matches",
                "max_rows_scanned",
                "wall_clock_deadline",
                "max_stream_buffer",
            )
        )

    @classmethod
    def unlimited(cls) -> "ResourceLimits":
        return cls()


@dataclass(frozen=True)
class QuarantinedRow:
    """One input row set aside instead of aborting the load.

    ``source`` is the CSV path or the statement kind (e.g. ``INSERT``);
    ``line`` is 1-based — the physical file line for CSVs, the row index
    within the statement for INSERTs.
    """

    source: str
    line: int
    reason: str
    values: tuple = ()

    def __str__(self) -> str:
        return f"{self.source}:{self.line}: {self.reason}"


@dataclass(frozen=True)
class StatementFailure:
    """A failed script statement retained under ``COLLECT``/``continue_on_error``."""

    index: int
    snippet: str
    error: Exception

    def __str__(self) -> str:
        return f"statement #{self.index} ({self.snippet!r}): {self.error}"


class Diagnostics:
    """Everything an execution skipped, quarantined, downgraded, or cut short.

    A clean run leaves every list empty (``ok`` is True); callers that
    never look at diagnostics observe today's behavior untouched.

    Mutation is internally locked: the parallel engine merges worker
    outcomes into one shared record, and streaming runners may report
    from a different thread than the reader, so every recording method
    (and :meth:`merge`) is atomic.  Reads are lock-free — Python list
    append/extend are atomic enough for the monitoring views here.
    """

    __slots__ = (
        "warnings",
        "quarantined",
        "limits_hit",
        "errors",
        "downgrades",
        "retries",
        "checkpoints_written",
        "checkpoints_restored",
        "duplicates_suppressed",
        "dropped_regions",
        "replicas_repaired",
        "replica_write_failures",
        "plan_cache_hits",
        "plan_cache_misses",
        "_lock",
    )

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.warnings: list[str] = []
        self.quarantined: list[QuarantinedRow] = []
        self.limits_hit: list[str] = []
        self.errors: list[StatementFailure] = []
        self.downgrades: list[str] = []
        # Recovery counters (see repro.recovery / docs/resilience.md).
        # Pure counts: normal checkpoint traffic must not flip ``ok``.
        self.retries = 0
        self.checkpoints_written = 0
        self.checkpoints_restored = 0
        self.duplicates_suppressed = 0
        self.dropped_regions = 0
        # Replicated-checkpoint divergence (see ReplicatedCheckpointStore):
        # repairs happen on load, write failures on save.  Both also emit
        # a warning, so a diverged fleet is never a silently-ok run.
        self.replicas_repaired = 0
        self.replica_write_failures = 0
        # Plan-cache traffic for this execution (0 or 1 of each per query;
        # both stay 0 on cache-bypass paths).  Counts, not failures.
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- recording ------------------------------------------------------

    def warn(self, message: str) -> None:
        with self._lock:
            self.warnings.append(message)

    def quarantine(
        self, source: str, line: int, reason: str, values: tuple = ()
    ) -> None:
        with self._lock:
            self.quarantined.append(QuarantinedRow(source, line, reason, values))

    def record_limit(self, reason: str) -> None:
        with self._lock:
            self.limits_hit.append(reason)

    def record_downgrade(self, message: str) -> None:
        with self._lock:
            self.downgrades.append(message)

    def record_error(self, index: int, snippet: str, error: Exception) -> None:
        with self._lock:
            self.errors.append(StatementFailure(index, snippet, error))

    def record_retry(self, reason: str) -> None:
        """One source retry: counted, and surfaced as a warning (a stream
        that needed retries was not a clean run)."""
        with self._lock:
            self.retries += 1
            self.warnings.append(f"retry: {reason}")

    def record_checkpoint_written(self) -> None:
        with self._lock:
            self.checkpoints_written += 1

    def record_checkpoint_restored(self) -> None:
        with self._lock:
            self.checkpoints_restored += 1

    def record_duplicates_suppressed(self, count: int) -> None:
        """Replayed matches withheld to preserve exactly-once emission."""
        with self._lock:
            self.duplicates_suppressed += count

    def record_dropped_region(self) -> None:
        """One stream-buffer overflow restart dropped a region of rows."""
        with self._lock:
            self.dropped_regions += 1

    def record_replica_repaired(self) -> None:
        """One stale/corrupt/missing checkpoint replica rewritten on load."""
        with self._lock:
            self.replicas_repaired += 1

    def record_replica_write_failure(self, path: str, reason: str) -> None:
        """One replica rejected a checkpoint write (counted + warned)."""
        with self._lock:
            self.replica_write_failures += 1
            self.warnings.append(
                f"checkpoint replica write failed: {path}: {reason}"
            )

    def record_plan_cache(self, hit: bool) -> None:
        """One keyed plan-cache lookup (bypass paths record nothing)."""
        with self._lock:
            if hit:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def merge(self, other: "Diagnostics") -> None:
        """Fold another diagnostics record into this one (atomically)."""
        with self._lock:
            self.warnings.extend(other.warnings)
            self.quarantined.extend(other.quarantined)
            self.limits_hit.extend(other.limits_hit)
            self.errors.extend(other.errors)
            self.downgrades.extend(other.downgrades)
            self.retries += other.retries
            self.checkpoints_written += other.checkpoints_written
            self.checkpoints_restored += other.checkpoints_restored
            self.duplicates_suppressed += other.duplicates_suppressed
            self.dropped_regions += other.dropped_regions
            self.replicas_repaired += other.replicas_repaired
            self.replica_write_failures += other.replica_write_failures
            self.plan_cache_hits += other.plan_cache_hits
            self.plan_cache_misses += other.plan_cache_misses

    # -- inspection -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not (
            self.warnings
            or self.quarantined
            or self.limits_hit
            or self.errors
            or self.downgrades
        )

    @property
    def limit_hit(self) -> bool:
        return bool(self.limits_hit)

    @property
    def degraded(self) -> bool:
        return bool(self.downgrades)

    def to_dict(self) -> dict:
        """A JSON-serializable view: counters first, then the detail lists.

        This is the payload of the CLI's ``--diagnostics-json`` flag and
        the form in which diagnostics travel inside matcher snapshots, so
        it must stay free of live objects — quarantined values and
        statement errors are rendered to strings.
        """
        return {
            "ok": self.ok,
            "counters": {
                "warnings": len(self.warnings),
                "quarantined_rows": len(self.quarantined),
                "limits_hit": len(self.limits_hit),
                "statement_errors": len(self.errors),
                "downgrades": len(self.downgrades),
                "retries": self.retries,
                "checkpoints_written": self.checkpoints_written,
                "checkpoints_restored": self.checkpoints_restored,
                "duplicates_suppressed": self.duplicates_suppressed,
                "dropped_regions": self.dropped_regions,
                "replicas_repaired": self.replicas_repaired,
                "replica_write_failures": self.replica_write_failures,
                "plan_cache_hits": self.plan_cache_hits,
                "plan_cache_misses": self.plan_cache_misses,
            },
            "warnings": list(self.warnings),
            "quarantined": [
                {
                    "source": row.source,
                    "line": row.line,
                    "reason": row.reason,
                    "values": [str(value) for value in row.values],
                }
                for row in self.quarantined
            ],
            "limits_hit": list(self.limits_hit),
            "downgrades": list(self.downgrades),
            "errors": [
                {
                    "index": failure.index,
                    "snippet": failure.snippet,
                    "error": str(failure.error),
                }
                for failure in self.errors
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostics":
        """Rehydrate a :meth:`to_dict` payload (snapshot restore path).

        Statement errors come back as generic exceptions carrying the
        original message — the live exception object does not survive the
        round trip, which is fine for the post-mortem use the collected
        list serves.
        """
        diagnostics = cls()
        diagnostics.warnings = [str(w) for w in payload.get("warnings", [])]
        for row in payload.get("quarantined", []):
            diagnostics.quarantine(
                row["source"], row["line"], row["reason"], tuple(row.get("values", ()))
            )
        diagnostics.limits_hit = [str(r) for r in payload.get("limits_hit", [])]
        diagnostics.downgrades = [str(d) for d in payload.get("downgrades", [])]
        for failure in payload.get("errors", []):
            diagnostics.record_error(
                failure["index"], failure["snippet"], Exception(failure["error"])
            )
        counters = payload.get("counters", {})
        diagnostics.retries = int(counters.get("retries", 0))
        diagnostics.checkpoints_written = int(counters.get("checkpoints_written", 0))
        diagnostics.checkpoints_restored = int(counters.get("checkpoints_restored", 0))
        diagnostics.duplicates_suppressed = int(
            counters.get("duplicates_suppressed", 0)
        )
        diagnostics.dropped_regions = int(counters.get("dropped_regions", 0))
        diagnostics.replicas_repaired = int(counters.get("replicas_repaired", 0))
        diagnostics.replica_write_failures = int(
            counters.get("replica_write_failures", 0)
        )
        diagnostics.plan_cache_hits = int(counters.get("plan_cache_hits", 0))
        diagnostics.plan_cache_misses = int(counters.get("plan_cache_misses", 0))
        return diagnostics

    def summary(self) -> str:
        """A human-readable multi-line report (CLI stderr output)."""
        lines: list[str] = []
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} row(s):")
            lines.extend(f"  {row}" for row in self.quarantined[:20])
            hidden = len(self.quarantined) - 20
            if hidden > 0:
                lines.append(f"  ... ({hidden} more)")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        for downgrade in self.downgrades:
            lines.append(f"downgrade: {downgrade}")
        for reason in self.limits_hit:
            lines.append(f"limit exceeded: {reason}")
        if self.errors:
            lines.append(f"collected {len(self.errors)} statement error(s):")
            lines.extend(f"  {failure}" for failure in self.errors)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Diagnostics(warnings={len(self.warnings)}, "
            f"quarantined={len(self.quarantined)}, "
            f"limits_hit={len(self.limits_hit)}, "
            f"errors={len(self.errors)}, downgrades={len(self.downgrades)})"
        )


class CancelToken:
    """A thread-safe cooperative cancellation flag with a reason.

    Built for the serving and CLI layers: a signal handler, a drain
    sequence, or a disconnected client calls :meth:`cancel` from any
    thread, and every :class:`Budget` holding the token trips on its
    next periodic check — the query unwinds exactly like a deadline
    expiry, returning partial results with a limit diagnostic.  Calling
    the token returns the reason string when cancelled and ``None``
    otherwise, which is the ``cancel`` hook contract :class:`Budget`
    and :class:`~repro.recovery.RecoveringStreamRunner` accept.
    """

    __slots__ = ("_event", "_reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __call__(self) -> Optional[str]:
        return self._reason if self._event.is_set() else None

    def __repr__(self) -> str:
        state = f"cancelled={self._reason!r}" if self._event.is_set() else "live"
        return f"CancelToken({state})"


class Budget:
    """Runtime limit tracking, cheap enough for the innermost matcher loops.

    ``step()`` is the hot-path call: one int decrement most of the time,
    with the wall clock consulted every ``check_every`` steps.  The
    coarser events (``add_rows`` per cluster, ``add_match`` per match)
    check their limits exactly.  Once any limit trips, the budget stays
    tripped: every subsequent check returns True immediately, so nested
    loops unwind without extra bookkeeping, each matcher returning the
    matches it has accumulated so far.

    Charging (``add_rows``, ``add_match``, ``trip``) is internally
    locked so a budget shared across parallel thread workers cannot
    check-then-charge past its limits; ``step()`` stays lock-free — its
    countdown is a heuristic for when to consult the clock, and a rare
    lost decrement only shifts a deadline check by a few iterations.
    """

    __slots__ = (
        "limits",
        "diagnostics",
        "rows_scanned",
        "matches",
        "tripped",
        "_clock",
        "_deadline",
        "_stride",
        "_countdown",
        "_cancel",
        "_lock",
    )

    def __init__(
        self,
        limits: ResourceLimits,
        diagnostics: Optional[Diagnostics] = None,
        clock: Callable[[], float] = time.monotonic,
        check_every: int = 256,
        cancel: Optional[Callable[[], Optional[str]]] = None,
    ):
        if check_every < 1:
            raise ValueError(f"check_every must be positive, got {check_every}")
        self._lock = threading.RLock()
        self.limits = limits
        self.diagnostics = diagnostics
        self.rows_scanned = 0
        self.matches = 0
        self.tripped: Optional[str] = None
        self._clock = clock
        self._stride = check_every
        self._countdown = check_every
        self._cancel = cancel
        self._deadline = (
            clock() + limits.wall_clock_deadline
            if limits.wall_clock_deadline is not None
            else None
        )
        # add_match() keeps the match that reaches the cap, so a cap of
        # zero must refuse work up front rather than after one match.
        if limits.max_matches == 0:
            self.trip("max_matches (0) reached")

    def trip(self, reason: str) -> bool:
        """Mark the budget exceeded (idempotent); always returns True."""
        with self._lock:
            if self.tripped is None:
                self.tripped = reason
                if self.diagnostics is not None:
                    self.diagnostics.record_limit(reason)
        return True

    def step(self, steps: int = 1) -> bool:
        """One unit of matcher work; True when the loop must stop."""
        if self.tripped is not None:
            return True
        self._countdown -= steps
        if self._countdown > 0:
            return False
        self._countdown = self._stride
        return self.check_deadline()

    def check_deadline(self) -> bool:
        """Consult the wall clock (and cancel hook) now; True to stop."""
        if self.tripped is not None:
            return True
        if self._cancel is not None:
            reason = self._cancel()
            if reason:
                return self.trip(
                    reason if isinstance(reason, str) else "cancelled by caller"
                )
        if self._deadline is not None and self._clock() > self._deadline:
            return self.trip(
                f"wall_clock_deadline "
                f"({self.limits.wall_clock_deadline}s) exceeded"
            )
        return False

    def add_rows(self, count: int) -> bool:
        """Account for rows about to be handed to the matcher.

        Check-then-charge: a batch that would push the total past the
        limit trips the budget and is *not* charged, because the caller
        skips it — so ``rows_scanned`` always equals the rows actually
        scanned and agrees with the executor's report accounting.  The
        check and the charge happen under one lock, so concurrent
        callers splitting a shared budget can never jointly over-admit.
        """
        with self._lock:
            if self.tripped is not None:
                return True
            maximum = self.limits.max_rows_scanned
            if maximum is not None and self.rows_scanned + count > maximum:
                return self.trip(f"max_rows_scanned ({maximum}) exceeded")
            self.rows_scanned += count
            return False

    def add_match(self) -> bool:
        """Account for one recorded match; True when the cap is reached.

        The match that reaches the cap is *kept* — ``max_matches=N``
        yields exactly N matches, then stops.
        """
        with self._lock:
            if self.tripped is not None:
                return True
            self.matches += 1
            maximum = self.limits.max_matches
            if maximum is not None and self.matches >= maximum:
                return self.trip(f"max_matches ({maximum}) reached")
            return False

    def __repr__(self) -> str:
        state = f"tripped={self.tripped!r}" if self.tripped else "ok"
        return (
            f"Budget({state}, rows_scanned={self.rows_scanned}, "
            f"matches={self.matches})"
        )
