"""The engine-wide flight recorder: metrics, traces, profiles, slow log.

Three complementary observability surfaces (``docs/observability.md``):

- :class:`MetricsRegistry` — process-lifetime counters/gauges/histograms
  with Prometheus text exposition and a JSON snapshot (stdlib-only);
- :class:`Trace` / :class:`Span` — the span tree of *one* query,
  threaded through planning, scanning, the parallel pool, and the
  recovery runner; rendered as a :class:`QueryProfile`
  (EXPLAIN ANALYZE-style operator tree) on ``Result.profile``;
- :class:`SlowQueryLog` — threshold-gated JSON-lines logging in the
  serving layer.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import QueryProfile
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Span, Trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryProfile",
    "SlowQueryLog",
    "Span",
    "Trace",
]
