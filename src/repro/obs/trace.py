"""Span-based tracing for one query execution.

A :class:`Trace` is a lightweight tree of timed :class:`Span` objects,
threaded from :meth:`repro.engine.session.Session.execute` through
planning, the cluster scan, the parallel pool, and the recovery
runner.  It is deliberately *not* a distributed-tracing client: there
is no sampling, no export, no context variables — one ``Trace`` per
query, owned by the caller, read by the profile renderer
(:mod:`repro.obs.profile`).

Design constraints, in order:

1. **Tracing off must cost nothing.**  Every call site guards with
   ``if trace is not None`` — no null-object indirection on the hot
   path, and the matcher inner loops are *never* spanned per element
   (per-cluster and per-unit spans bound the span count to the
   partition count, and :class:`~repro.match.base.Instrumentation`
   carries the per-test counters the profile folds in afterwards).
2. **Spans must cross the pickle boundary.**  The PR5 process pool
   cannot ship live spans back (and ``time.perf_counter`` origins
   differ across processes), so workers serialize span *dicts* —
   name, duration, attributes, children — and the parent grafts them
   into its tree with :meth:`Trace.attach`.  Such spans carry a
   duration but no absolute start time.
3. **Bounded memory.**  A pathological query over a million clusters
   must not materialize a million spans: past ``max_spans`` new spans
   are counted in :attr:`Trace.dropped` instead of recorded, and the
   profile says so.

Usage::

    trace = Trace()
    with trace.span("execute") as root:
        with trace.span("plan", cache="miss"):
            ...
    trace.root.duration_s   # wall time of the outermost span
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["Span", "Trace"]

#: Default ceiling on recorded spans per trace.
MAX_SPANS = 10_000


class Span:
    """One named, timed tree node with free-form attributes.

    ``duration_s`` is ``None`` while the span is open; spans attached
    from serialized worker payloads have a duration but ``start`` stays
    ``None`` (their clock origin is another process).
    """

    __slots__ = ("name", "attrs", "children", "start", "duration_s")

    def __init__(self, name: str, attrs: Optional[dict] = None):
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.start: Optional[float] = None
        self.duration_s: Optional[float] = None

    def annotate(self, **attrs) -> "Span":
        """Merge attributes into the span (last write wins); chainable."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant-or-self with ``name`` (depth-first), if any."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(str(payload["name"]), payload.get("attrs"))
        duration = payload.get("duration_s")
        span.duration_s = float(duration) if duration is not None else None
        for child in payload.get("children", []):
            span.children.append(cls.from_dict(child))
        return span

    def __repr__(self) -> str:
        timing = (
            f"{self.duration_s * 1000.0:.3f}ms"
            if self.duration_s is not None
            else "open"
        )
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class Trace:
    """The span tree and open-span stack for one query execution.

    Single-threaded by contract: one trace belongs to one query, and the
    serial executor, the parallel *parent*, and the recovery runner all
    mutate it from the thread driving the query.  Worker threads and
    processes never touch the trace — they report span dicts that the
    parent grafts in via :meth:`attach`.
    """

    __slots__ = ("roots", "dropped", "_stack", "_clock", "_max_spans", "_count")

    def __init__(
        self,
        *,
        max_spans: int = MAX_SPANS,
        clock=time.perf_counter,
    ):
        if max_spans < 1:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._clock = clock
        self._max_spans = max_spans
        self._count = 0

    @property
    def root(self) -> Optional[Span]:
        """The first top-level span (the query's outermost phase)."""
        return self.roots[0] if self.roots else None

    @property
    def span_count(self) -> int:
        return self._count

    def _admit(self) -> bool:
        if self._count >= self._max_spans:
            self.dropped += 1
            return False
        self._count += 1
        return True

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of the innermost open span; times its body.

        Over-budget spans still yield a live :class:`Span` (so call
        sites can annotate unconditionally) but are not recorded in the
        tree — only counted in :attr:`dropped`.
        """
        span = Span(name, attrs)
        admitted = self._admit()
        if admitted:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
            self._stack.append(span)
        span.start = self._clock()
        try:
            yield span
        finally:
            span.duration_s = self._clock() - span.start
            if admitted:
                self._stack.pop()

    def attach(self, parent: Optional[Span], payload: dict) -> Optional[Span]:
        """Graft a serialized span dict (and its subtree) under ``parent``.

        This is how per-WorkUnit spans recorded inside process workers
        are merged back into the parent trace.  Returns the new span,
        or ``None`` if the span budget is exhausted (the subtree is
        counted as a single drop — its size is unknown until built, and
        a trace over budget has already lost fidelity).
        """
        if not self._admit():
            return None
        span = Span.from_dict(payload)
        # Children count toward the budget too; prune depth-first once
        # the ceiling is hit.
        for node in span.walk():
            if node is span:
                continue
            if self._count >= self._max_spans:
                self.dropped += 1
                node.children.clear()
            else:
                self._count += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        return span

    def to_dict(self) -> dict:
        return {
            "spans": [root.to_dict() for root in self.roots],
            "dropped": self.dropped,
        }

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list[Span]:
        return [
            span
            for root in self.roots
            for span in root.find_all(name)
        ]

    def __repr__(self) -> str:
        return (
            f"Trace({self._count} spans, {len(self.roots)} roots, "
            f"dropped={self.dropped})"
        )
