"""A zero-dependency, thread-safe metrics registry.

The engine's flight recorder needs three primitive shapes — monotonic
**counters** (plan-cache hits, rejections by code), point-in-time
**gauges** (in-flight requests, queue depth), and **histograms** with
fixed bucket boundaries (request latency) — and two read views: a
Prometheus-style text exposition for scrapers and a JSON snapshot for
the ``stats`` RPC and bench artefacts.  Everything here is stdlib-only
on purpose: the repo's hard constraint is no third-party dependencies,
and the hot-path cost of an un-observed metric must be zero (metrics
are only touched at operation boundaries, never inside matcher inner
loops — those are covered by :mod:`repro.obs.trace` spans and the
paper's :class:`~repro.match.base.Instrumentation` counters).

Metrics are *families*: a name plus a fixed tuple of label names, with
one child per label-value combination.  Unlabeled metrics are the
degenerate single-child family and expose ``inc``/``set``/``observe``
directly::

    registry = MetricsRegistry()
    hits = registry.counter("repro_plan_cache_hits_total", "Plan cache hits")
    hits.inc()
    rejections = registry.counter(
        "repro_serve_rejections_total", "Rejections", labelnames=("tenant", "code")
    )
    rejections.labels(tenant="a", code="backpressure").inc()
    print(registry.expose())

Exposition output is deterministic (families sorted by name, children
by label values), which is what makes the golden-file test in
``tests/obs/`` possible.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Mapping, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram boundaries, in seconds: spanning sub-millisecond
#: matcher calls up to multi-second analytical queries.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value: integral floats print as integers."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Child:
    """Shared plumbing: every concrete metric child carries its family's
    name, its own label values, and a lock."""

    __slots__ = ("_lock", "labels_map")

    def __init__(self, labels_map: Mapping[str, str]):
        self._lock = threading.Lock()
        self.labels_map = dict(labels_map)


class _CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, labels_map: Mapping[str, str]):
        super().__init__(labels_map)
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, labels_map: Mapping[str, str]):
        super().__init__(labels_map)
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild(_Child):
    __slots__ = ("boundaries", "_counts", "_sum", "_count")

    def __init__(self, labels_map: Mapping[str, str], boundaries: Sequence[float]):
        super().__init__(labels_map)
        self.boundaries = tuple(boundaries)
        self._counts = [0] * (len(self.boundaries) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Union[int, float]) -> None:
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        pairs: list[tuple[float, int]] = []
        running = 0
        for boundary, count in zip(self.boundaries, counts):
            running += count
            pairs.append((boundary, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs


class _Family:
    """One named metric family: fixed label names, children per value
    combination.  The unlabeled family delegates to its single child so
    ``registry.counter("x").inc()`` just works."""

    kind = "untyped"
    child_cls: type = _Child

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r} on {name!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._default = self._make_child({})
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self, labels_map: Mapping[str, str]) -> _Child:
        return self.child_cls(labels_map)

    def labels(self, **labelvalues: str) -> _Child:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child(dict(zip(self.labelnames, key)))
                self._children[key] = child
            return child

    def children(self) -> list[_Child]:
        with self._lock:
            return [self._children[key] for key in sorted(self._children)]

    # Unlabeled convenience delegation -------------------------------

    def _single(self) -> _Child:
        if self._default is None:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; call .labels() first"
            )
        return self._default


class CounterFamily(_Family):
    kind = "counter"
    child_cls = _CounterChild

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._single().inc(amount)

    @property
    def value(self) -> float:
        return self._single().value


class GaugeFamily(_Family):
    kind = "gauge"
    child_cls = _GaugeChild

    def set(self, value: Union[int, float]) -> None:
        self._single().set(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._single().inc(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._single().dec(amount)

    @property
    def value(self) -> float:
        return self._single().value


class HistogramFamily(_Family):
    kind = "histogram"
    child_cls = _HistogramChild

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Sequence[float],
    ):
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError(
                f"{name}: bucket boundaries must be strictly increasing, "
                f"got {boundaries}"
            )
        self.boundaries = boundaries
        super().__init__(name, help_text, labelnames)

    def _make_child(self, labels_map: Mapping[str, str]) -> _HistogramChild:
        return _HistogramChild(labels_map, self.boundaries)

    def observe(self, value: Union[int, float]) -> None:
        self._single().observe(value)

    @property
    def count(self) -> int:
        return self._single().count

    @property
    def sum(self) -> float:
        return self._single().sum


#: Public aliases: the names callers type.
Counter = CounterFamily
Gauge = GaugeFamily
Histogram = HistogramFamily


class MetricsRegistry:
    """Get-or-create metric families; render exposition and snapshots.

    Get-or-create is idempotent per name — asking again with the same
    kind returns the existing family (so independently constructed
    components can share one registry without coordination), while a
    kind or label mismatch raises loudly instead of silently forking
    the time series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            family = cls(name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        return self._get_or_create(CounterFamily, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._get_or_create(GaugeFamily, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        return self._get_or_create(
            HistogramFamily, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    # -- read views -----------------------------------------------------

    def expose(self) -> str:
        """Prometheus text exposition format, deterministically ordered."""
        lines: list[str] = []
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                labels = child.labels_map
                if isinstance(child, _HistogramChild):
                    for boundary, cumulative in child.cumulative():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(boundary)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_render_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} "
                        f"{child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-ready view: family -> samples with labels and values."""
        result: dict[str, dict] = {}
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        for family in families:
            samples: list[dict] = []
            for child in family.children():
                if isinstance(child, _HistogramChild):
                    samples.append(
                        {
                            "labels": dict(child.labels_map),
                            "buckets": {
                                _format_value(boundary): cumulative
                                for boundary, cumulative in child.cumulative()
                            },
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append(
                        {
                            "labels": dict(child.labels_map),
                            "value": child.value,
                        }
                    )
            result[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return result
