"""Structured slow-query logging: JSON lines past a latency threshold.

The serving layer's third observability surface (after the metrics
registry and per-query traces): queries slower than a configurable
threshold are appended — one JSON object per line, thread-safely — to
a file or stream, carrying everything an operator needs to reproduce
the query (tenant, SQL, elapsed, rows, matches, whether a limit cut it
short).  Timestamps are wall-clock ISO-8601 UTC because the log is for
humans correlating with external events; *uptime and deadlines* in the
server itself stay monotonic (see ``QueryServer``).

The log never raises into the request path: a full disk or closed sink
increments :attr:`write_errors` and drops the entry — losing a log
line must not fail a query that already succeeded.

With ``max_bytes`` set, a path-backed log rotates: when appending the
next entry would push the file past the cap, the current file is moved
to ``<path>.1`` (replacing any previous ``.1``) and the entry starts a
fresh file — bounded disk for always-on serving, at most two
generations on disk.  Rotation failures are swallowed like write
failures: the entry is still appended to the unrotated file.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import threading
from typing import IO, Optional, Union

__all__ = ["SlowQueryLog"]

#: Default threshold when a sink is configured without one (seconds).
DEFAULT_THRESHOLD_S = 1.0

#: SQL longer than this is truncated in log entries (the full text is
#: the client's to keep; the log needs enough to identify the query).
_SQL_SNIPPET_CHARS = 500


class SlowQueryLog:
    """Threshold-gated, thread-safe JSON-lines sink for slow queries."""

    def __init__(
        self,
        sink: Union[str, IO[str]],
        threshold_s: float = DEFAULT_THRESHOLD_S,
        *,
        max_bytes: Optional[int] = None,
    ):
        if threshold_s < 0:
            raise ValueError(
                f"threshold_s must be non-negative, got {threshold_s}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.threshold_s = threshold_s
        self.max_bytes = max_bytes
        self.entries_written = 0
        self.write_errors = 0
        self.rotations = 0
        self._lock = threading.Lock()
        if isinstance(sink, (str, bytes)) or hasattr(sink, "__fspath__"):
            self._path: Optional[str] = str(sink)
            self._stream: Optional[IO[str]] = None
        else:
            self._path = None
            self._stream = sink

    def maybe_record(self, *, elapsed_s: float, sql: str = "", **fields) -> bool:
        """Record one query if it crossed the threshold; True if written."""
        if elapsed_s < self.threshold_s:
            return False
        entry = {
            "ts": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "elapsed_ms": round(elapsed_s * 1000.0, 3),
            "threshold_ms": round(self.threshold_s * 1000.0, 3),
            "sql": sql[:_SQL_SNIPPET_CHARS],
        }
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            try:
                if self._stream is not None:
                    self._stream.write(line + "\n")
                    self._stream.flush()
                else:
                    if self.max_bytes is not None:
                        self._maybe_rotate(len(line) + 1)
                    with open(self._path, "a") as handle:
                        handle.write(line + "\n")
            except Exception:  # noqa: BLE001 - logging must not fail queries
                self.write_errors += 1
                return False
            self.entries_written += 1
            return True

    @property
    def rotated_path(self) -> Optional[str]:
        """Where the previous generation lands (path-backed logs only)."""
        return self._path + ".1" if self._path is not None else None

    def _maybe_rotate(self, incoming: int) -> None:
        """Roll ``path`` to ``path.1`` if the next write would burst the cap.

        Called under the lock, swallowing every error: a log that cannot
        rotate keeps appending (unbounded beats raising into the request
        path; the next successful rotation re-bounds it).
        """
        try:
            size = os.path.getsize(self._path)
        except OSError:
            return  # nothing on disk yet — nothing to rotate
        if size + incoming <= self.max_bytes:
            return
        try:
            os.replace(self._path, self._path + ".1")
        except OSError:
            return
        self.rotations += 1
