"""EXPLAIN ANALYZE-style per-query profiles.

A :class:`QueryProfile` is the readable face of the flight recorder:
the span tree of one traced execution
(:class:`~repro.obs.trace.Trace`) folded together with the execution
report's exact counters — matcher chosen, plan-cache hit/miss, rows
scanned, predicate tests, shift/next skips, band-fusion usage, budget
spend — and rendered as an operator tree the way ``EXPLAIN ANALYZE``
renders a plan::

    execute                              4.812ms  matcher=ops matches=11
    ├─ plan                              0.644ms  cache=miss degraded=False
    └─ scan                              4.102ms  clusters=1 searched=1
       └─ cluster                        4.055ms  rows=1000 tests=4195 ...

The profile rides on :attr:`repro.engine.result.Result.profile` when a
query runs with a trace, and is printed by ``repro query --profile``
and ``repro explain --analyze``.  It is strictly observational: the
result rows of a traced run are byte-identical to an untraced run (the
acceptance gate of the overhead bench, ``repro.bench.obs_overhead``).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import Span, Trace

__all__ = ["QueryProfile"]

#: Attribute keys rendered in a stable order before any others.
_ATTR_ORDER = (
    "cache",
    "matcher",
    "degraded",
    "clusters",
    "clusters_searched",
    "rows",
    "rows_scanned",
    "tests",
    "matches",
    "skips",
    "skip_distance",
    "band_fused_elements",
    "mode",
    "workers",
    "unit",
    "partition",
)


def _format_duration(duration_s: Optional[float]) -> str:
    if duration_s is None:
        return "     --  "
    return f"{duration_s * 1000.0:9.3f}ms"


def _format_attrs(attrs: dict) -> str:
    ordered = [key for key in _ATTR_ORDER if key in attrs]
    ordered += [key for key in sorted(attrs) if key not in _ATTR_ORDER]
    return " ".join(f"{key}={attrs[key]}" for key in ordered)


class QueryProfile:
    """The profile of one traced execution: span tree plus counters."""

    __slots__ = (
        "trace",
        "matcher",
        "matches",
        "clusters",
        "clusters_searched",
        "rows_scanned",
        "predicate_tests",
        "degraded",
    )

    def __init__(self, trace: Trace, report) -> None:
        self.trace = trace
        self.matcher = report.matcher
        self.matches = report.matches
        self.clusters = report.clusters
        self.clusters_searched = report.clusters_searched
        self.rows_scanned = report.rows_scanned
        self.predicate_tests = report.predicate_tests
        self.degraded = report.diagnostics.degraded

    @property
    def wall_s(self) -> Optional[float]:
        """Total wall time: the outermost span's duration."""
        root = self.trace.root
        return root.duration_s if root is not None else None

    def to_dict(self) -> dict:
        return {
            "matcher": self.matcher,
            "matches": self.matches,
            "clusters": self.clusters,
            "clusters_searched": self.clusters_searched,
            "rows_scanned": self.rows_scanned,
            "predicate_tests": self.predicate_tests,
            "degraded": self.degraded,
            "wall_s": self.wall_s,
            "trace": self.trace.to_dict(),
        }

    def render(self) -> str:
        """The operator tree as aligned text (the ``--profile`` output)."""
        wall = self.wall_s
        header = (
            f"Query Profile  matcher={self.matcher} matches={self.matches} "
            f"rows_scanned={self.rows_scanned} "
            f"predicate_tests={self.predicate_tests}"
        )
        if wall is not None:
            header += f" wall={wall * 1000.0:.3f}ms"
        lines = [header]
        for root in self.trace.roots:
            lines.extend(_render_span(root, prefix="", is_last=True, top=True))
        if self.trace.dropped:
            lines.append(
                f"({self.trace.dropped} span(s) over the trace budget "
                f"were dropped; counters above remain exact)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        wall = self.wall_s
        timing = f", wall={wall * 1000.0:.3f}ms" if wall is not None else ""
        return (
            f"QueryProfile(matcher={self.matcher!r}, "
            f"matches={self.matches}{timing})"
        )


def _render_span(span: Span, prefix: str, is_last: bool, top: bool = False):
    """One span line plus its subtree, with box-drawing connectors."""
    if top:
        connector = ""
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        child_prefix = prefix + ("   " if is_last else "│  ")
    label = f"{prefix}{connector}{span.name}"
    attrs = _format_attrs(span.attrs)
    line = f"{label:<40s} {_format_duration(span.duration_s)}"
    if attrs:
        line += f"  {attrs}"
    yield line
    for index, child in enumerate(span.children):
        yield from _render_span(
            child, child_prefix, index == len(span.children) - 1
        )
