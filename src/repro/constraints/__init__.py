"""Predicate reasoning: atoms, conjunctions, and the GSW decision procedures.

The OPS compiler needs to answer two questions about pattern-element
predicates (conjunctions of inequalities over tuple attributes):

- *implication* — does ``p_j`` imply ``p_k``?
- *satisfiability* — is ``p_j AND p_k`` satisfiable?

Section 6 of the paper uses the Guo–Sun–Weiss (GSW) algorithm for
conjunctions of atoms of the form ``X op C``, ``X op Y`` and ``X op Y + C``
(with ``op`` in ``=, !=, <, <=, >, >=``), extended to ``X op C*Y`` through a
ratio-variable rewrite for positive domains.  This subpackage implements all
of that, plus the Section 8 extensions (interval-based reasoning and
disjunctive predicates).
"""

from repro.constraints.terms import ZERO, Variable
from repro.constraints.atoms import Atom, CategoricalAtom, Op, atom, cat_atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.gsw import GswSolver
from repro.constraints.dnf import Disjunction
from repro.constraints.intervals import IntervalSet, interval_implies, interval_satisfiable

__all__ = [
    "Variable",
    "ZERO",
    "Op",
    "Atom",
    "CategoricalAtom",
    "atom",
    "cat_atom",
    "Conjunction",
    "GswSolver",
    "Disjunction",
    "IntervalSet",
    "interval_implies",
    "interval_satisfiable",
]
