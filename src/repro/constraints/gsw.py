"""The Guo–Sun–Weiss (GSW) decision procedures for conjunctions of inequalities.

Section 6 of Sadri & Zaniolo cites Guo, Sun and Weiss (TKDE 1996) for
deciding *implication* and *satisfiability* of conjunctions of atoms
``X op C``, ``X op Y``, ``X op Y + C`` with ``op`` in
``{=, !=, <, <=, >, >=}``.  This module implements both procedures over the
real domain with the classic constraint-graph formulation:

- every non-``!=`` atom becomes one or two *difference bounds*
  ``x - y <= c`` (optionally strict), with a distinguished ``ZERO`` node
  standing for the constant 0;
- the min-plus closure of the bound graph (Floyd–Warshall over weights
  ``(c, strict)`` ordered so a strict bound is tighter than a non-strict
  bound of equal ``c``) yields the tightest derivable bound between every
  pair of variables;
- the conjunction is **unsatisfiable** iff some closure self-bound is
  negative (``x - x <= c`` with ``c < 0``, or ``c = 0`` strict), or some
  ``!=`` atom's equality is forced by the closure;
- the conjunction **implies** an atom iff conjoining the atom's negation is
  unsatisfiable (the negation of a GSW atom is again a GSW atom, so one
  primitive suffices).

Categorical equality atoms (``name = 'IBM'``) are decided by a separate
elementary procedure and do not interact with the numeric graph.

The closure is cubic in the number of variables; pattern predicates mention
a handful of variables, so — as the paper notes — "these compilation costs
are quite reasonable".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Optional, Sequence

from repro.constraints.atoms import AnyAtom, Atom, CategoricalAtom, Op
from repro.constraints.terms import Variable, ZERO
from repro.errors import ConstraintError


@dataclass(frozen=True, order=True)
class Weight:
    """A difference bound ``x - y <= c`` (strict: ``x - y < c``).

    Ordering: smaller is *tighter*.  At equal ``c`` a strict bound is
    tighter than a non-strict one, which the ``tightness`` field encodes
    (``-1`` for strict, ``0`` for non-strict) so dataclass ordering gives
    the right lexicographic comparison.
    """

    c: float
    tightness: int  # -1 = strict, 0 = non-strict

    @property
    def strict(self) -> bool:
        return self.tightness == -1

    def __add__(self, other: "Weight") -> "Weight":
        # A chain of bounds is strict as soon as one link is strict.
        return Weight(self.c + other.c, min(self.tightness, other.tightness))

    def entails(self, target: "Weight") -> bool:
        """Does ``x - y <= self`` guarantee ``x - y <= target``?"""
        if self.c < target.c:
            return True
        if self.c > target.c:
            return False
        # Equal constants: a strict derived bound entails both forms; a
        # non-strict derived bound entails only the non-strict target.
        return self.strict or not target.strict

    def is_negative_cycle(self) -> bool:
        """Would this self-bound (``x - x <= self``) be contradictory?"""
        return self.c < 0 or (self.c == 0 and self.strict)


def _bounds_of(a: Atom) -> list[tuple[Variable, Variable, Weight]]:
    """Decompose a numeric atom into difference bounds ``(x, y, weight)``.

    Each triple means ``x - y <= weight``.  Equality yields two bounds;
    ``!=`` yields none (handled separately).
    """
    if a.op is Op.NE:
        return []
    if a.op is Op.LE:
        return [(a.x, a.y, Weight(a.c, 0))]
    if a.op is Op.LT:
        return [(a.x, a.y, Weight(a.c, -1))]
    if a.op is Op.GE:
        return [(a.y, a.x, Weight(-a.c, 0))]
    if a.op is Op.GT:
        return [(a.y, a.x, Weight(-a.c, -1))]
    if a.op is Op.EQ:
        return [(a.x, a.y, Weight(a.c, 0)), (a.y, a.x, Weight(-a.c, 0))]
    raise ConstraintError(f"unsupported operator: {a.op}")


class BoundClosure:
    """Min-plus closure of the difference-bound graph of a set of atoms."""

    def __init__(self, atoms: Iterable[Atom]):
        atoms = list(atoms)
        variables: set[Variable] = {ZERO}
        for a in atoms:
            variables.add(a.x)
            variables.add(a.y)
        self._vars: list[Variable] = sorted(variables, key=lambda v: v.name)
        index = {v: i for i, v in enumerate(self._vars)}
        n = len(self._vars)
        dist: list[list[Optional[Weight]]] = [[None] * n for _ in range(n)]
        for i in range(n):
            dist[i][i] = Weight(0.0, 0)
        for a in atoms:
            for x, y, w in _bounds_of(a):
                i, j = index[x], index[y]
                current = dist[i][j]
                if current is None or w < current:
                    dist[i][j] = w
        for k in range(n):
            for i in range(n):
                d_ik = dist[i][k]
                if d_ik is None:
                    continue
                for j in range(n):
                    d_kj = dist[k][j]
                    if d_kj is None:
                        continue
                    via = d_ik + d_kj
                    current = dist[i][j]
                    if current is None or via < current:
                        dist[i][j] = via
        self._index = index
        self._dist = dist

    @property
    def feasible(self) -> bool:
        """False when the closure contains a negative self-cycle."""
        for i in range(len(self._vars)):
            d = self._dist[i][i]
            if d is not None and d.is_negative_cycle():
                return False
        return True

    def bound(self, x: Variable, y: Variable) -> Optional[Weight]:
        """The tightest derivable bound ``x - y <= w``, or None if unbounded."""
        i = self._index.get(x)
        j = self._index.get(y)
        if i is None or j is None:
            return Weight(0.0, 0) if x == y else None
        return self._dist[i][j]

    def forces_equality(self, x: Variable, y: Variable, c: float) -> bool:
        """Does the closure force ``x - y == c`` exactly?"""
        down = self.bound(x, y)
        up = self.bound(y, x)
        return (
            down is not None
            and up is not None
            and not down.strict
            and not up.strict
            and down.c == c
            and up.c == -c
        )


def _categorical_satisfiable(atoms: Sequence[CategoricalAtom]) -> bool:
    """Satisfiability of categorical equality atoms (infinite domains)."""
    equals: dict[Variable, str] = {}
    not_equals: dict[Variable, set[str]] = {}
    for a in atoms:
        if a.op is Op.EQ:
            if a.x in equals and equals[a.x] != a.value:
                return False
            equals[a.x] = a.value
        else:
            not_equals.setdefault(a.x, set()).add(a.value)
    for var, value in equals.items():
        if value in not_equals.get(var, ()):
            return False
    return True


class GswSolver:
    """Stateless facade exposing the two GSW decision procedures."""

    @staticmethod
    def satisfiable(atoms: Iterable[AnyAtom]) -> bool:
        """Is the conjunction of ``atoms`` satisfiable over the reals?"""
        numeric: list[Atom] = []
        categorical: list[CategoricalAtom] = []
        disequalities: list[Atom] = []
        for a in atoms:
            if isinstance(a, CategoricalAtom):
                categorical.append(a)
            elif a.op is Op.NE:
                if a.x == a.y:
                    if a.c == 0:
                        return False  # x != x
                    continue  # x != x + c with c != 0: trivially true
                disequalities.append(a)
            else:
                if a.is_contradiction():
                    return False
                if a.is_tautology():
                    continue
                numeric.append(a)
        if not _categorical_satisfiable(categorical):
            return False
        closure = BoundClosure(numeric)
        if not closure.feasible:
            return False
        # Over a dense domain, a feasible difference system plus
        # disequalities is satisfiable unless some disequality's equality
        # is forced by the system.
        for d in disequalities:
            if closure.forces_equality(d.x, d.y, d.c):
                return False
        return True

    @staticmethod
    def implies(premises: Iterable[AnyAtom], conclusion: AnyAtom) -> bool:
        """Does the conjunction of ``premises`` imply ``conclusion``?

        Decided by refutation: ``premises AND NOT conclusion`` must be
        unsatisfiable.  Note this is classical implication — an
        unsatisfiable premise implies everything; callers guarding theta
        and phi entries handle that case explicitly per the paper.
        """
        return not GswSolver.satisfiable(chain(premises, [conclusion.negate()]))

    @staticmethod
    def implies_all(premises: Iterable[AnyAtom], conclusions: Iterable[AnyAtom]) -> bool:
        """Does the premise conjunction imply every conclusion atom?"""
        premises = list(premises)
        return all(GswSolver.implies(premises, c) for c in conclusions)

    @staticmethod
    def equivalent(left: Iterable[AnyAtom], right: Iterable[AnyAtom]) -> bool:
        """Mutual implication of two conjunctions."""
        left = list(left)
        right = list(right)
        return GswSolver.implies_all(left, right) and GswSolver.implies_all(right, left)
