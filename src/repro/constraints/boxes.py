"""Multidimensional interval predicates (Section 8 / [13] extension).

The paper's conclusion describes a method for "predicates on intervals
(open and closed intervals, single-dimensional and multidimensional
ones)" that "transforms implication and satisfiability problems into set
inclusion problems".  This module supplies the multidimensional half:

- a :class:`Box` is a product of per-dimension
  :class:`~repro.constraints.intervals.Interval` constraints (dimensions
  not mentioned are unconstrained) — the solution set of a conjunction of
  single-variable bounds over several variables;
- a :class:`BoxSet` is a finite union of boxes — the solution set of a
  DNF of such conjunctions;
- satisfiability = non-emptiness; implication = set inclusion, exact for
  Box ⊆ BoxSet along any single axis and sound (single-witness) for
  general unions, mirroring the conservatism of
  :mod:`repro.constraints.dnf`.

Spatio-temporal pattern queries (the paper's geoscience motivation [9])
are conjunctions of such box predicates per element; this module is what
lets theta/phi reasoning extend to them.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.constraints.intervals import FULL_LINE, Interval, IntervalSet
from repro.constraints.terms import Variable


class Box:
    """An axis-aligned box: one interval constraint per mentioned variable."""

    __slots__ = ("_dimensions",)

    def __init__(self, dimensions: Mapping[Variable, Interval]):
        self._dimensions: dict[Variable, Interval] = dict(dimensions)

    @classmethod
    def unconstrained(cls) -> "Box":
        return cls({})

    @property
    def dimensions(self) -> dict[Variable, Interval]:
        return dict(self._dimensions)

    def interval(self, variable: Variable) -> Interval:
        """The constraint on one axis (the full line if unmentioned)."""
        return self._dimensions.get(variable, FULL_LINE)

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(self._dimensions)

    @property
    def empty(self) -> bool:
        return any(interval.empty for interval in self._dimensions.values())

    def contains(self, point: Mapping[Variable, float]) -> bool:
        """Point membership; unmentioned point coordinates are ignored."""
        return all(
            self.interval(variable).contains(point[variable])
            for variable in self._dimensions
        )

    def intersect(self, other: "Box") -> "Box":
        merged: dict[Variable, Interval] = dict(self._dimensions)
        for variable, interval in other._dimensions.items():
            if variable in merged:
                merged[variable] = merged[variable].intersect(interval)
            else:
                merged[variable] = interval
        return Box(merged)

    def subset_of(self, other: "Box") -> bool:
        """Exact inclusion: every axis of ``other`` must contain ours."""
        if self.empty:
            return True
        return all(
            self.interval(variable).subset_of(interval)
            for variable, interval in other._dimensions.items()
        )

    def disjoint_from(self, other: "Box") -> bool:
        return self.intersect(other).empty

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        variables = self.variables | other.variables
        return all(self.interval(v) == other.interval(v) for v in variables)

    def __hash__(self) -> int:
        return hash(frozenset(self._dimensions.items()))

    def __repr__(self) -> str:
        if not self._dimensions:
            return "Box(unconstrained)"
        parts = ", ".join(
            f"{variable}: {interval}"
            for variable, interval in sorted(
                self._dimensions.items(), key=lambda kv: kv[0].name
            )
        )
        return f"Box({parts})"


class BoxSet:
    """A finite union of boxes (the multidimensional DNF solution set)."""

    __slots__ = ("_boxes",)

    def __init__(self, boxes: Iterable[Box]):
        self._boxes = tuple(box for box in boxes if not box.empty)

    @property
    def boxes(self) -> tuple[Box, ...]:
        return self._boxes

    @property
    def empty(self) -> bool:
        return not self._boxes

    def contains(self, point: Mapping[Variable, float]) -> bool:
        return any(box.contains(point) for box in self._boxes)

    def intersect(self, other: "BoxSet") -> "BoxSet":
        return BoxSet(
            a.intersect(b) for a in self._boxes for b in other._boxes
        )

    def union(self, other: "BoxSet") -> "BoxSet":
        return BoxSet(self._boxes + other._boxes)

    def subset_of(self, other: "BoxSet") -> bool:
        """Sound (single-witness) inclusion: every box of self must fit
        inside some single box of other.  Exact when ``other`` has one
        box; a False answer on multi-box targets means "not proven"."""
        return all(
            any(mine.subset_of(theirs) for theirs in other._boxes)
            for mine in self._boxes
        )

    def disjoint_from(self, other: "BoxSet") -> bool:
        """Exact emptiness of the intersection."""
        return self.intersect(other).empty

    def projection(self, variable: Variable) -> IntervalSet:
        """The exact shadow of the set on one axis."""
        return IntervalSet([box.interval(variable) for box in self._boxes])

    def __repr__(self) -> str:
        if not self._boxes:
            return "BoxSet(empty)"
        return "BoxSet(" + " U ".join(repr(box) for box in self._boxes) + ")"
