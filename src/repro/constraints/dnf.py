"""Disjunctive predicates (Section 8 extension).

The paper's conclusion notes that the OPS algorithm "has been extended to
optimize patterns containing disjunctive conditions".  This module lifts
the GSW decision procedures from conjunctions to predicates in disjunctive
normal form (DNF):

- a :class:`Disjunction` is a non-empty set of
  :class:`~repro.constraints.conjunction.Conjunction` disjuncts;
- satisfiability: some disjunct is satisfiable;
- ``D => q`` for a conjunction ``q``: every disjunct implies ``q``;
- ``D1 => D2``: every disjunct of ``D1`` implies ``D2``; a conjunction
  implies a disjunction when it implies *some* disjunct — this one-disjunct
  witness rule is sound but incomplete (a conjunction can imply a
  disjunction "collectively"), so callers treat a negative answer as
  *unknown*, exactly the conservatism the U truth value exists for.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator

from repro.constraints.conjunction import Conjunction


class Disjunction:
    """A predicate in disjunctive normal form: OR of conjunctions."""

    __slots__ = ("_disjuncts",)

    def __init__(self, disjuncts: Iterable[Conjunction]):
        self._disjuncts: tuple[Conjunction, ...] = tuple(disjuncts)
        if not self._disjuncts:
            raise ValueError("a Disjunction needs at least one disjunct")

    @classmethod
    def of(cls, conjunction: Conjunction) -> "Disjunction":
        """Wrap a single conjunction as a one-disjunct DNF."""
        return cls([conjunction])

    @property
    def disjuncts(self) -> tuple[Conjunction, ...]:
        return self._disjuncts

    def __iter__(self) -> Iterator[Conjunction]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __or__(self, other: "Disjunction") -> "Disjunction":
        return Disjunction(self._disjuncts + other._disjuncts)

    def __and__(self, other: "Disjunction") -> "Disjunction":
        """Distribute AND over OR (cartesian product of disjuncts)."""
        return Disjunction([a & b for a, b in product(self._disjuncts, other._disjuncts)])

    def negate(self) -> "Disjunction":
        """De Morgan expansion of NOT(DNF), itself returned as DNF.

        NOT(OR of conjunctions) = AND of (OR of negated atoms); distributing
        the AND over the ORs gives the product of per-disjunct atom choices.
        Exponential in the worst case, but pattern predicates are tiny.
        """
        per_disjunct = []
        for conj in self._disjuncts:
            if len(conj) == 0:
                # NOT TRUE = FALSE: the whole negation is unsatisfiable.
                # Represent FALSE as a self-contradictory numeric-free DNF by
                # conjoining nothing — callers must check satisfiability.
                return Disjunction([_false_conjunction()])
            per_disjunct.append([Conjunction([a.negate()]) for a in conj])
        result = []
        for choice in product(*per_disjunct):
            merged = Conjunction([])
            for c in choice:
                merged = merged & c
            result.append(merged)
        return Disjunction(result)

    # ------------------------------------------------------------------

    def satisfiable(self) -> bool:
        return any(d.satisfiable() for d in self._disjuncts)

    def is_tautology(self) -> bool:
        """Sound tautology test: the negation must be unsatisfiable."""
        return not self.negate().satisfiable()

    def implies_conjunction(self, q: Conjunction) -> bool:
        """D => q: every satisfiable disjunct must imply q."""
        return all(d.implies(q) for d in self._disjuncts)

    def implies(self, other: "Disjunction") -> bool:
        """Sound (incomplete) implication test between DNF predicates.

        Every disjunct of self must imply some single disjunct of other.
        A False result means "not proven", not "refuted".
        """
        return all(
            any(d.implies(e) for e in other._disjuncts) for d in self._disjuncts
        )

    def conjunction_satisfiable_with(self, other: "Disjunction") -> bool:
        """Is self AND other satisfiable?  (Exact for DNF.)"""
        return any(
            d.conjunction_satisfiable_with(e)
            for d in self._disjuncts
            for e in other._disjuncts
        )

    def negation_implies(self, other: "Disjunction") -> bool:
        """Sound test for NOT self => other."""
        negated = self.negate()
        return all(
            (not d.satisfiable()) or any(d.implies(e) for e in other._disjuncts)
            for d in negated._disjuncts
        )

    def evaluate(self, assignment: dict) -> bool:
        return any(d.evaluate(assignment) for d in self._disjuncts)

    def __repr__(self) -> str:
        return "Disjunction(" + " OR ".join(repr(d) for d in self._disjuncts) + ")"


def _false_conjunction() -> Conjunction:
    """A canonical unsatisfiable conjunction (0 < 0 over a dummy variable)."""
    from repro.constraints.atoms import atom
    from repro.constraints.terms import Variable

    dummy = Variable("__false__")
    return Conjunction([atom(dummy, "<", dummy, 0.0)])
