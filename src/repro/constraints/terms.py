"""Variables appearing in constraint atoms.

A :class:`Variable` is an opaque named symbol.  The pattern-predicate
normalizer (``repro.pattern.predicates``) maps tuple attribute references to
variables with conventional names:

- ``price@0``   — the attribute on the current tuple ``t``,
- ``price@-1``  — the attribute on ``t.previous``,
- ``price@0/price@-1`` — the Section 6 ratio variable used to linearize
  atoms of the form ``X op C * Y`` over positive domains.

The distinguished variable :data:`ZERO` denotes the constant 0, so the
single-variable atom ``X op C`` is stored as ``X op ZERO + C`` and the GSW
constraint graph needs no special cases for constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Domain(Enum):
    """The value domain a variable ranges over."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True, order=True)
class Variable:
    """A named constraint variable.

    Variables are value objects: two variables with the same name and domain
    are interchangeable.  Names are arbitrary non-empty strings.
    """

    name: str
    domain: Domain = Domain.NUMERIC

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


#: The constant-zero pseudo-variable used to encode ``X op C`` atoms.
ZERO = Variable("__zero__")


def ratio_variable(numerator: Variable, denominator: Variable) -> Variable:
    """The Section 6 ratio variable ``Z = numerator / denominator``.

    Two atoms mentioning the same ratio of attributes map to the same
    variable, which is what lets GSW compare e.g. ``price < 0.98 * prev``
    against ``price > 1.02 * prev`` (both become bounds on
    ``price@0/price@-1``).  The rewrite is only sound when the denominator
    is known positive (stock prices are); the caller asserts that.
    """
    if numerator.domain is not Domain.NUMERIC or denominator.domain is not Domain.NUMERIC:
        raise ValueError("ratio variables require numeric operands")
    return Variable(f"{numerator.name}/{denominator.name}")
