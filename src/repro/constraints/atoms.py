"""Constraint atoms: the GSW fragment ``X op Y + C`` plus categorical equality.

An :class:`Atom` is a numeric constraint ``x op y + c`` where ``x`` and
``y`` are :class:`~repro.constraints.terms.Variable` and ``c`` is a float.
The constant-only form ``x op c`` is represented with ``y = ZERO``.  The
supported operators are exactly those of the GSW paper:
``=, !=, <, <=, >, >=``.

A :class:`CategoricalAtom` constrains a categorical variable against a
string constant (``name = 'IBM'``); only ``=`` and ``!=`` are meaningful.

Atoms know how to negate themselves (the negation of a GSW atom is another
GSW atom), which is what makes the phi-matrix computation effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from repro.constraints.terms import Domain, Variable, ZERO
from repro.errors import ConstraintError


class Op(Enum):
    """Comparison operators of the GSW constraint language."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def negated(self) -> "Op":
        return _NEGATION[self]

    @property
    def flipped(self) -> "Op":
        """The operator obtained by swapping the two sides of the atom."""
        return _FLIP[self]

    def holds(self, left: float, right: float) -> bool:
        """Evaluate the comparison on concrete numbers."""
        if self is Op.EQ:
            return left == right
        if self is Op.NE:
            return left != right
        if self is Op.LT:
            return left < right
        if self is Op.LE:
            return left <= right
        if self is Op.GT:
            return left > right
        return left >= right


_NEGATION = {
    Op.EQ: Op.NE,
    Op.NE: Op.EQ,
    Op.LT: Op.GE,
    Op.LE: Op.GT,
    Op.GT: Op.LE,
    Op.GE: Op.LT,
}

_FLIP = {
    Op.EQ: Op.EQ,
    Op.NE: Op.NE,
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.GT: Op.LT,
    Op.GE: Op.LE,
}


@dataclass(frozen=True)
class Atom:
    """A numeric constraint ``x op y + c`` (``y = ZERO`` encodes ``x op c``)."""

    x: Variable
    op: Op
    y: Variable
    c: float = 0.0

    def __post_init__(self) -> None:
        if self.x.domain is not Domain.NUMERIC or self.y.domain is not Domain.NUMERIC:
            raise ConstraintError("numeric atoms require numeric variables")
        if self.x == self.y and self.x != ZERO:
            # x op x + c is a ground fact about c; it stays representable
            # (the solver resolves it), but x must not be the ZERO dummy
            # on both sides with a nonzero offset sneaking in unnoticed.
            pass
        if self.x == ZERO:
            raise ConstraintError("the ZERO pseudo-variable may only appear on the right")

    def negate(self) -> "Atom":
        """The logical negation, which is again a single GSW atom."""
        return Atom(self.x, self.op.negated, self.y, self.c)

    @property
    def variables(self) -> frozenset[Variable]:
        names = {self.x}
        if self.y != ZERO:
            names.add(self.y)
        return frozenset(names)

    def is_tautology(self) -> bool:
        """True when the atom holds for every real assignment.

        Over unconstrained reals this happens only for self-comparisons
        (``x op x + c``) whose arithmetic resolves to truth, e.g.
        ``x <= x + 0``.
        """
        if self.x != self.y:
            return False
        return self.op.holds(0.0, self.c)

    def is_contradiction(self) -> bool:
        """True when the atom fails for every real assignment."""
        if self.x != self.y:
            return False
        return not self.op.holds(0.0, self.c)

    def evaluate(self, assignment: dict[Variable, float]) -> bool:
        """Evaluate the atom under a concrete variable assignment."""
        left = assignment[self.x]
        right = (0.0 if self.y == ZERO else assignment[self.y]) + self.c
        return self.op.holds(left, right)

    def __str__(self) -> str:
        if self.y == ZERO:
            return f"{self.x} {self.op.value} {_fmt(self.c)}"
        if self.c == 0:
            return f"{self.x} {self.op.value} {self.y}"
        sign = "+" if self.c >= 0 else "-"
        return f"{self.x} {self.op.value} {self.y} {sign} {_fmt(abs(self.c))}"


@dataclass(frozen=True)
class CategoricalAtom:
    """An equality/disequality between a categorical variable and a constant."""

    x: Variable
    op: Op
    value: str

    def __post_init__(self) -> None:
        if self.op not in (Op.EQ, Op.NE):
            raise ConstraintError(f"categorical atoms support = and != only, got {self.op.value}")
        if self.x.domain is not Domain.CATEGORICAL:
            raise ConstraintError(f"variable {self.x} is not categorical")

    def negate(self) -> "CategoricalAtom":
        return CategoricalAtom(self.x, self.op.negated, self.value)

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset({self.x})

    def is_tautology(self) -> bool:
        return False

    def is_contradiction(self) -> bool:
        return False

    def evaluate(self, assignment: dict[Variable, str]) -> bool:
        if self.op is Op.EQ:
            return assignment[self.x] == self.value
        return assignment[self.x] != self.value

    def __str__(self) -> str:
        return f"{self.x} {self.op.value} '{self.value}'"


AnyAtom = Union[Atom, CategoricalAtom]


def _fmt(value: float) -> str:
    return f"{value:g}"


def atom(x: Variable, op: Union[Op, str], y: Union[Variable, float, int], c: float = 0.0) -> Atom:
    """Convenience constructor accepting operator strings and bare constants.

    ``atom(v, "<", 50)`` builds ``v < 50``; ``atom(a, ">", b, 2)`` builds
    ``a > b + 2``.
    """
    if isinstance(op, str):
        op = Op(op)
    if isinstance(y, (int, float)) and not isinstance(y, bool):
        return Atom(x, op, ZERO, float(y) + c)
    if isinstance(y, Variable):
        return Atom(x, op, y, float(c))
    raise ConstraintError(f"invalid right-hand side: {y!r}")


def cat_atom(x: Variable, op: Union[Op, str], value: str) -> CategoricalAtom:
    """Convenience constructor for categorical atoms."""
    if isinstance(op, str):
        op = Op(op)
    return CategoricalAtom(x, op, value)
