"""Interval-based implication and satisfiability (Section 8 extension).

The paper's conclusion describes a method that "transforms implication and
satisfiability problems into set inclusion problems in the domain of
intervals and their complements".  This module implements the
one-dimensional instance: a predicate over a single numeric variable is
normalized to an :class:`IntervalSet` (a union of disjoint intervals with
open/closed endpoints), and then

- satisfiability  <=>  the interval set is non-empty,
- ``p`` implies ``q``  <=>  ``intervals(p)`` is a subset of ``intervals(q)``.

This gives an *exact* decision procedure for single-variable predicates —
including disjunctive ones — and doubles as an independent oracle the test
suite uses to cross-check the GSW solver on that fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.atoms import Atom, Op
from repro.constraints.terms import Variable, ZERO
from repro.errors import ConstraintError


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded, possibly degenerate) real interval."""

    low: float
    high: float
    low_closed: bool
    high_closed: bool

    def __post_init__(self) -> None:
        if math.isinf(self.low) and self.low_closed:
            raise ValueError("-inf endpoint cannot be closed")
        if math.isinf(self.high) and self.high_closed:
            raise ValueError("+inf endpoint cannot be closed")

    @property
    def empty(self) -> bool:
        if self.low > self.high:
            return True
        if self.low == self.high:
            return not (self.low_closed and self.high_closed)
        return False

    def contains(self, x: float) -> bool:
        if x < self.low or x > self.high:
            return False
        if x == self.low and not self.low_closed:
            return False
        if x == self.high and not self.high_closed:
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        if self.low > other.low or (self.low == other.low and not self.low_closed):
            low, low_closed = self.low, self.low_closed
        else:
            low, low_closed = other.low, other.low_closed
        if self.high < other.high or (self.high == other.high and not self.high_closed):
            high, high_closed = self.high, self.high_closed
        else:
            high, high_closed = other.high, other.high_closed
        return Interval(low, high, low_closed, high_closed)

    def subset_of(self, other: "Interval") -> bool:
        if self.empty:
            return True
        low_ok = self.low > other.low or (
            self.low == other.low and (other.low_closed or not self.low_closed)
        )
        high_ok = self.high < other.high or (
            self.high == other.high and (other.high_closed or not self.high_closed)
        )
        return low_ok and high_ok

    def __str__(self) -> str:
        lb = "[" if self.low_closed else "("
        rb = "]" if self.high_closed else ")"
        return f"{lb}{self.low:g}, {self.high:g}{rb}"


FULL_LINE = Interval(-math.inf, math.inf, False, False)


class IntervalSet:
    """A union of disjoint, sorted intervals over the real line."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        cleaned = [iv for iv in intervals if not iv.empty]
        cleaned.sort(key=lambda iv: (iv.low, not iv.low_closed))
        merged: list[Interval] = []
        for iv in cleaned:
            if merged and _touches(merged[-1], iv):
                merged[-1] = _merge(merged[-1], iv)
            else:
                merged.append(iv)
        self._intervals = tuple(merged)

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls([FULL_LINE])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([])

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    def contains(self, x: float) -> bool:
        return any(iv.contains(x) for iv in self._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = [
            a.intersect(b) for a in self._intervals for b in other._intervals
        ]
        return IntervalSet(pieces)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._intervals + other._intervals)

    def complement(self) -> "IntervalSet":
        """The complement of the set within the real line."""

        def gap(low: float, high: float, low_closed: bool, high_closed: bool) -> Interval:
            # Infinite endpoints are always open, whatever the cursor says.
            if math.isinf(low):
                low_closed = False
            if math.isinf(high):
                high_closed = False
            return Interval(low, high, low_closed, high_closed)

        result: list[Interval] = []
        cursor_low = -math.inf
        cursor_closed = False
        for iv in self._intervals:
            result.append(gap(cursor_low, iv.low, cursor_closed, not iv.low_closed))
            cursor_low = iv.high
            cursor_closed = not iv.high_closed
        result.append(gap(cursor_low, math.inf, cursor_closed, False))
        return IntervalSet(result)

    def subset_of(self, other: "IntervalSet") -> bool:
        """Set inclusion — the paper's reduction target for implication."""
        return all(
            any(mine.subset_of(theirs) for theirs in other._intervals)
            for mine in self._intervals
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        if not self._intervals:
            return "IntervalSet(empty)"
        return "IntervalSet(" + " U ".join(str(iv) for iv in self._intervals) + ")"


def _touches(a: Interval, b: Interval) -> bool:
    """Can intervals a (lower) and b be merged into one interval?"""
    if b.low < a.high:
        return True
    if b.low == a.high:
        return a.high_closed or b.low_closed
    return False


def _merge(a: Interval, b: Interval) -> Interval:
    if b.high > a.high or (b.high == a.high and b.high_closed):
        return Interval(a.low, b.high, a.low_closed, b.high_closed)
    return Interval(a.low, a.high, a.low_closed, a.high_closed)


def atom_to_interval_set(a: Atom, variable: Variable) -> IntervalSet:
    """Translate a single-variable constant atom into an interval set.

    Only atoms of the form ``variable op constant`` (i.e. ``y = ZERO``) are
    representable; anything else raises :class:`ConstraintError`.
    """
    if a.x != variable or a.y != ZERO:
        raise ConstraintError(f"atom {a} is not a constant bound on {variable}")
    c = a.c
    if a.op is Op.LT:
        return IntervalSet([Interval(-math.inf, c, False, False)])
    if a.op is Op.LE:
        return IntervalSet([Interval(-math.inf, c, False, True)])
    if a.op is Op.GT:
        return IntervalSet([Interval(c, math.inf, False, False)])
    if a.op is Op.GE:
        return IntervalSet([Interval(c, math.inf, True, False)])
    if a.op is Op.EQ:
        return IntervalSet([Interval(c, c, True, True)])
    if a.op is Op.NE:
        return IntervalSet([Interval(c, c, True, True)]).complement()
    raise ConstraintError(f"unsupported operator: {a.op}")


def atoms_to_interval_set(atoms: Sequence[Atom], variable: Variable) -> IntervalSet:
    """The solution set of a conjunction of constant bounds on one variable."""
    result = IntervalSet.full()
    for a in atoms:
        result = result.intersect(atom_to_interval_set(a, variable))
    return result


def interval_satisfiable(atoms: Sequence[Atom], variable: Variable) -> bool:
    """Exact satisfiability for single-variable constant-bound predicates."""
    return not atoms_to_interval_set(atoms, variable).is_empty


def interval_implies(
    premises: Sequence[Atom], conclusions: Sequence[Atom], variable: Variable
) -> bool:
    """Exact implication via set inclusion (the Section 8 reduction)."""
    return atoms_to_interval_set(premises, variable).subset_of(
        atoms_to_interval_set(conclusions, variable)
    )
