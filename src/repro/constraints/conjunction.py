"""Conjunctions of constraint atoms, with the queries theta/phi need.

A pattern-element predicate that the OPS compiler can analyze symbolically
is a :class:`Conjunction` of atoms over the variables of the current tuple
and its predecessor.  The theta/phi matrix computation (paper Section 4.2)
needs exactly four queries, all provided here:

- ``satisfiable()``                          (is p consistent?)
- ``implies(q)``                             (p => q)
- ``conjunction_satisfiable_with(q)``        (is p AND q consistent?)
- ``negation_implies(q)``                    (NOT p => q)

``negation_implies`` is where conjunctions stop being closed under
negation: ``NOT p`` is a disjunction of negated atoms, and a disjunction
implies ``q`` iff every disjunct does.  Each disjunct is a single GSW atom,
so the test reduces to GSW satisfiability checks — no general theorem
prover needed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.constraints.atoms import AnyAtom, Atom, CategoricalAtom
from repro.constraints.gsw import GswSolver
from repro.constraints.terms import Variable


class Conjunction:
    """An immutable conjunction of numeric and categorical atoms.

    The empty conjunction is the constant TRUE.
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[AnyAtom] = ()):
        self._atoms: tuple[AnyAtom, ...] = tuple(atoms)
        for a in self._atoms:
            if not isinstance(a, (Atom, CategoricalAtom)):
                raise TypeError(f"not a constraint atom: {a!r}")

    @property
    def atoms(self) -> tuple[AnyAtom, ...]:
        return self._atoms

    def __iter__(self) -> Iterator[AnyAtom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __and__(self, other: Union["Conjunction", AnyAtom]) -> "Conjunction":
        if isinstance(other, Conjunction):
            return Conjunction(self._atoms + other._atoms)
        return Conjunction(self._atoms + (other,))

    @property
    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for a in self._atoms:
            result |= a.variables
        return frozenset(result)

    # ------------------------------------------------------------------
    # Decision queries (all delegate to GSW)
    # ------------------------------------------------------------------

    def satisfiable(self) -> bool:
        """Is this conjunction consistent over the reals?"""
        return GswSolver.satisfiable(self._atoms)

    def is_tautology(self) -> bool:
        """Does this conjunction hold for every assignment?

        A conjunction is a tautology iff every atom is one, and a single
        GSW atom is a tautology only for resolvable self-comparisons.
        """
        return all(a.is_tautology() for a in self._atoms)

    def implies(self, other: "Conjunction") -> bool:
        """Classical implication: self => other.

        Note that an unsatisfiable conjunction implies everything; the
        theta/phi builders apply the paper's ``p !== F`` / ``p !== T``
        guards on top of this primitive.
        """
        return GswSolver.implies_all(self._atoms, other._atoms)

    def conjunction_satisfiable_with(self, other: "Conjunction") -> bool:
        """Is self AND other consistent?  (theta = 0 test, negated.)"""
        return GswSolver.satisfiable(self._atoms + other._atoms)

    def negation_implies(self, other: "Conjunction") -> bool:
        """Does NOT self imply other?  (phi = 1 test.)

        ``NOT self`` is the disjunction of the negations of self's atoms;
        the disjunction implies ``other`` iff each disjunct does.  The
        empty conjunction (TRUE) has an unsatisfiable negation, which
        vacuously implies everything.
        """
        return all(
            GswSolver.implies_all([a.negate()], other._atoms) for a in self._atoms
        )

    def equivalent(self, other: "Conjunction") -> bool:
        return self.implies(other) and other.implies(self)

    # ------------------------------------------------------------------

    def evaluate(self, assignment: dict[Variable, object]) -> bool:
        """Evaluate all atoms under a concrete assignment (for testing)."""
        return all(a.evaluate(assignment) for a in self._atoms)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __repr__(self) -> str:
        if not self._atoms:
            return "Conjunction(TRUE)"
        return "Conjunction(" + " AND ".join(str(a) for a in self._atoms) + ")"


#: The empty conjunction — constant TRUE.
TRUE_CONJUNCTION = Conjunction()
