"""The Section 6 multiplicative rewrite: ``X op C*Y``  →  ``X/Y op C``.

GSW handles additive atoms only, but SQL-TS queries over stock prices are
dominated by *relative-change* conditions such as

    Y.price < 0.98 * Y.previous.price

Section 6: "we can take advantage of the fact that the domain of Y is
positive numbers (stock prices) and introduce a new variable Z = X/Y; then
we work with Z op C instead of the original X op C*Y."

:func:`rewrite_multiplicative` performs that transformation on an atom
description; the pattern-predicate normalizer applies it whenever the
attribute involved is declared positive (see
``repro.pattern.predicates.AttributeDomains``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.atoms import Atom, Op, atom
from repro.constraints.terms import Variable, ratio_variable
from repro.errors import ConstraintError


@dataclass(frozen=True)
class MultiplicativeAtom:
    """A not-yet-linear atom ``x op coefficient * y``."""

    x: Variable
    op: Op
    coefficient: float
    y: Variable


def rewrite_multiplicative(m: MultiplicativeAtom) -> Atom:
    """Linearize ``x op c*y`` into ``(x/y) op c`` for positive ``y``.

    Dividing both sides of ``x op c*y`` by a positive ``y`` preserves the
    comparison direction, yielding the single-variable GSW atom
    ``ratio op c`` over the ratio variable ``x/y``.

    Raises :class:`ConstraintError` when the coefficient is not positive —
    with a sign change the rewrite would have to flip the operator *and*
    the positivity argument no longer closes, so we refuse rather than
    produce an unsound atom.
    """
    if m.coefficient <= 0:
        raise ConstraintError(
            f"multiplicative rewrite requires a positive coefficient, got {m.coefficient}"
        )
    ratio = ratio_variable(m.x, m.y)
    return atom(ratio, m.op, m.coefficient)


def ratio_value(x_value: float, y_value: float) -> float:
    """Runtime evaluation of a ratio variable (denominator must be positive)."""
    if y_value <= 0:
        raise ConstraintError(
            f"ratio variable evaluated with non-positive denominator {y_value}; "
            "the Section 6 rewrite is only sound over positive domains"
        )
    return x_value / y_value
