"""Crash recovery for streaming pattern search.

The paper deploys SQL-TS "via user-defined aggregates ... on input
streams"; a stream query that runs for days must survive a process crash
without replaying the whole stream or re-emitting matches it already
delivered.  OPS makes that cheap: the matcher's complete state is the
bounded look-back window plus the in-flight attempt bookkeeping, both of
which are small and serializable.  This module layers three pieces on
top of :class:`~repro.match.streaming.OpsStreamMatcher`:

1. **Snapshots** (:func:`snapshot_matcher` / :func:`restore_matcher`) —
   the matcher state as plain data, keyed by a :func:`pattern_fingerprint`
   so a snapshot can never be restored against a different query or an
   incompatible matcher configuration.
2. **Durable checkpoints** (:class:`CheckpointStore`) — versioned,
   checksummed checkpoint files written atomically
   (write-temp → fsync → rename), with corruption detection that falls
   back to the previous good checkpoint instead of crashing.
3. **A recovering runner** (:class:`RecoveringStreamRunner`) — wraps any
   offset-addressable row source with retry/backoff on transient errors,
   periodic checkpointing, resume-from-offset, and exactly-once match
   emission across restarts (a checkpoint is written *before* each batch
   of matches is yielded, and on resume any match ending at or before
   the checkpointed high-water mark is suppressed).

See ``docs/resilience.md`` ("Crash recovery & checkpointing") for the
full contract, including where exactly-once weakens to at-least-once
(restore from the ``.prev`` fallback) or at-most-once (crash between the
checkpoint write and the consumer durably handling the batch).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import struct
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro import failpoints
from repro.errors import (
    CheckpointCorrupt,
    RecoveryError,
    TransientSourceError,
)
from repro.match.base import Instrumentation, Match, Span
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import CompiledPattern
from repro.resilience import Diagnostics, ResourceLimits

#: Version of the matcher-snapshot schema (bump on incompatible change).
SNAPSHOT_VERSION = 1

#: Version of the checkpoint file frame (bump on incompatible change).
CHECKPOINT_VERSION = 1

_MAGIC = b"RPCK"
_HEADER = struct.Struct(">4sHI")  # magic, version, payload length
_DIGEST_SIZE = hashlib.sha256().digest_size


def pattern_fingerprint(
    pattern: CompiledPattern,
    *,
    trim: bool,
    overflow: str,
    max_stream_buffer: Optional[int],
    extra_lookback: int,
) -> str:
    """A stable hash identifying a compiled pattern + matcher config.

    Built from the pattern's observable matching semantics: the spec,
    each element's predicate repr, the shift/next tables, and the
    degraded flag — plus the matcher configuration that changes which
    matches a stream produces (trimming, overflow behavior, buffer cap,
    extra look-back).  ``use_codegen`` is deliberately excluded: the
    evaluator mode does not affect match semantics, so a stream
    checkpointed under the compiled evaluator may resume under the
    interpreted one and vice versa.
    """
    parts = [
        repr(pattern.spec),
        ";".join(
            f"{element}:{element.predicate!r}" for element in pattern.spec
        ),
        repr(tuple(pattern.shift_next.shift)),
        repr(tuple(pattern.shift_next.next_)),
        f"degraded={pattern.degraded}",
        f"trim={trim}",
        f"overflow={overflow}",
        f"max_stream_buffer={max_stream_buffer}",
        f"extra_lookback={extra_lookback}",
    ]
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class MatcherSnapshot:
    """The complete state of an :class:`OpsStreamMatcher` as plain data.

    Only built-in types inside (the compiled pattern itself is *not*
    stored — its evaluators are closures and cannot be pickled; restore
    takes the live pattern and verifies ``fingerprint`` instead).
    ``pending_matches`` holds matches recorded but not yet drained by the
    caller; already-drained matches are summarized by ``high_water``.
    """

    fingerprint: str
    version: int
    stream_offset: int
    window_base: int
    window_rows: Tuple[Mapping[str, object], ...]
    run: Mapping[str, object]
    pending_matches: Tuple[Tuple[int, int, Tuple[Tuple[int, int], ...]], ...]
    high_water: int
    finished: bool
    overflowed: bool
    budget: Optional[Mapping[str, int]]
    diagnostics: Mapping[str, object]


def snapshot_matcher(matcher: OpsStreamMatcher) -> MatcherSnapshot:
    """Capture a matcher's full state (see :class:`MatcherSnapshot`)."""
    window = matcher.window
    pending = matcher._run.matches[matcher._emitted :]
    budget = matcher._budget
    return MatcherSnapshot(
        fingerprint=matcher.fingerprint,
        version=SNAPSHOT_VERSION,
        stream_offset=len(window),
        window_base=window.base,
        window_rows=tuple(dict(row) for row in window),
        run=matcher._run.capture_state(),
        pending_matches=tuple(
            (
                match.start,
                match.end,
                tuple((span.start, span.end) for span in match.spans),
            )
            for match in pending
        ),
        high_water=matcher.emitted_high_water,
        finished=matcher.finished,
        overflowed=matcher._overflowed,
        budget=(
            {"rows_scanned": budget.rows_scanned, "matches": budget.matches}
            if budget is not None
            else None
        ),
        diagnostics=matcher.diagnostics.to_dict(),
    )


def restore_matcher(
    snapshot: MatcherSnapshot,
    pattern: CompiledPattern,
    *,
    instrumentation: Optional[Instrumentation] = None,
    trim: bool = True,
    limits: Optional[ResourceLimits] = None,
    diagnostics: Optional[Diagnostics] = None,
    overflow: str = "raise",
    extra_lookback: int = 0,
) -> OpsStreamMatcher:
    """Rebuild a matcher from a snapshot, verifying the fingerprint.

    The live ``pattern`` and configuration must hash to the snapshot's
    fingerprint; otherwise the snapshot belongs to a different query (or
    an incompatible matcher setup) and restoring it would silently
    corrupt results — :class:`~repro.errors.RecoveryError` is raised
    instead.  Instrumentation is *not* checkpointed; a restored matcher
    starts with fresh (empty) instrumentation.
    """
    if snapshot.version != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"snapshot version {snapshot.version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    matcher = OpsStreamMatcher(
        pattern,
        instrumentation=instrumentation,
        trim=trim,
        limits=limits,
        diagnostics=diagnostics,
        overflow=overflow,
        extra_lookback=extra_lookback,
    )
    if matcher.fingerprint != snapshot.fingerprint:
        raise RecoveryError(
            f"snapshot fingerprint {snapshot.fingerprint[:12]}... does not "
            f"match the live pattern/configuration "
            f"{matcher.fingerprint[:12]}...: the checkpoint belongs to a "
            f"different pattern or matcher configuration"
        )
    window = matcher._window
    window._rows = [dict(row) for row in snapshot.window_rows]
    window._base = snapshot.window_base
    matcher._run.restore_state(dict(snapshot.run))
    names = pattern.spec.names
    matcher._run.matches = [
        Match(
            start,
            end,
            tuple(Span(s, e) for s, e in spans),
            names,
        )
        for start, end, spans in snapshot.pending_matches
    ]
    matcher._emitted = 0
    matcher._high_water = snapshot.high_water
    matcher._finished = snapshot.finished
    matcher._overflowed = snapshot.overflowed
    budget = matcher._budget
    if budget is not None and snapshot.budget is not None:
        budget.rows_scanned = int(snapshot.budget["rows_scanned"])
        budget.matches = int(snapshot.budget["matches"])
        maximum = budget.limits.max_matches
        if maximum is not None and budget.matches >= maximum:
            budget.trip(f"max_matches ({maximum}) reached")
    matcher.diagnostics.merge(Diagnostics.from_dict(dict(snapshot.diagnostics)))
    return matcher


class CheckpointStore:
    """Durable, atomically-replaced checkpoint files.

    Frame layout::

        magic "RPCK" | version (u16) | payload length (u32)
        sha256(payload) — 32 bytes
        payload — pickled checkpoint object

    ``save()`` writes a temp file in the same directory, fsyncs it,
    rotates the current checkpoint to ``<path>.prev``, then atomically
    renames the temp file into place (and best-effort fsyncs the
    directory), so a crash at any point leaves at least one readable
    checkpoint on disk.  ``load()`` validates magic, version, length,
    and checksum; a corrupt or truncated latest checkpoint falls back to
    ``.prev`` with a diagnostic warning.
    """

    def __init__(self, path: str | os.PathLike, *, keep_previous: bool = True):
        self.path = os.fspath(path)
        self.keep_previous = keep_previous

    @property
    def previous_path(self) -> str:
        return self.path + ".prev"

    def exists(self) -> bool:
        return os.path.exists(self.path) or os.path.exists(self.previous_path)

    def save(self, state: object) -> None:
        """Serialize ``state`` and atomically replace the checkpoint.

        The failpoint sites here model the crash-consistency hazards this
        protocol defends against: ``checkpoint.write`` can tear the frame
        (partial temp-file write), ``checkpoint.fsync`` can be skipped or
        fail (lost page cache), and ``checkpoint.rename`` fires between
        the ``.prev`` rotation and the final rename — the window where a
        crash leaves only the fallback on disk.  All are no-ops unless a
        test arms them (see :mod:`repro.failpoints`).
        """
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        frame = (
            _HEADER.pack(_MAGIC, CHECKPOINT_VERSION, len(payload))
            + hashlib.sha256(payload).digest()
            + payload
        )
        frame = failpoints.mangle("checkpoint.write", frame)
        directory = os.path.dirname(self.path) or "."
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(frame)
            handle.flush()
            if not failpoints.maybe_fail("checkpoint.fsync"):
                os.fsync(handle.fileno())
        if self.keep_previous and os.path.exists(self.path):
            os.replace(self.path, self.previous_path)
        failpoints.maybe_fail("checkpoint.rename")
        os.replace(tmp_path, self.path)
        try:  # pragma: no cover - platform dependent
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass

    def load(self, *, diagnostics: Optional[Diagnostics] = None) -> object:
        """Read the newest valid checkpoint.

        A corrupt latest file falls back to ``.prev`` (recorded as a
        warning in ``diagnostics``); if neither file is usable the last
        corruption error escapes as :class:`CheckpointCorrupt`, and a
        completely missing checkpoint raises :class:`RecoveryError`.
        """
        candidates = [self.path]
        if self.keep_previous:
            candidates.append(self.previous_path)
        last_error: Optional[Exception] = None
        seen_any = False
        for index, candidate in enumerate(candidates):
            if not os.path.exists(candidate):
                continue
            seen_any = True
            try:
                state = self._read(candidate)
            except CheckpointCorrupt as error:
                last_error = error
                if diagnostics is not None:
                    diagnostics.warn(
                        f"checkpoint {candidate} is corrupt ({error}); "
                        + (
                            "falling back to the previous checkpoint"
                            if index + 1 < len(candidates)
                            else "no fallback remains"
                        )
                    )
                continue
            if index > 0 and diagnostics is not None:
                diagnostics.warn(
                    f"restored from fallback checkpoint {candidate}; "
                    f"matches emitted after it may be re-emitted "
                    f"(at-least-once)"
                )
            return state
        if not seen_any:
            raise RecoveryError(f"no checkpoint at {self.path}")
        assert last_error is not None
        raise last_error

    @staticmethod
    def _read(path: str) -> object:
        with open(path, "rb") as handle:
            data = handle.read()
        if len(data) < _HEADER.size + _DIGEST_SIZE:
            raise CheckpointCorrupt(
                f"{path}: truncated header ({len(data)} bytes)"
            )
        magic, version, length = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CheckpointCorrupt(f"{path}: bad magic {magic!r}")
        if version != CHECKPOINT_VERSION:
            raise CheckpointCorrupt(
                f"{path}: unsupported checkpoint version {version} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        start = _HEADER.size + _DIGEST_SIZE
        payload = data[start : start + length]
        if len(payload) != length:
            raise CheckpointCorrupt(
                f"{path}: truncated payload "
                f"({len(payload)} of {length} bytes)"
            )
        digest = data[_HEADER.size : start]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorrupt(f"{path}: checksum mismatch")
        try:
            return pickle.loads(payload)
        except Exception as error:
            raise CheckpointCorrupt(
                f"{path}: payload decoding failed ({error})"
            ) from error


@dataclass(frozen=True)
class _Generational:
    """Envelope a replicated store pickles into each replica: the state
    plus a monotonically increasing write generation, so a read can tell
    which surviving replica is newest without trusting mtimes."""

    generation: int
    state: object


class ReplicatedCheckpointStore:
    """Fan-out checkpointing across N replica paths with read repair.

    Each replica is a full :class:`CheckpointStore` (own checksummed
    frame, own ``.prev`` fallback), typically in a different directory —
    ideally a different filesystem — so losing one failure domain loses
    one replica, not the stream's durability.  Every ``save()`` stamps
    the state with a generation number and fans out to all replicas; the
    write succeeds if at least ``quorum`` replicas (default: a majority)
    land, and per-replica failures are counted loudly rather than
    silently shrinking durability.

    ``load()`` reads *every* replica, picks the highest valid
    generation, and repairs divergent replicas in place — stale (older
    generation), corrupt, or missing replicas are rewritten with the
    winning state, so one surviving replica is enough to restore and the
    fleet converges back to full strength on the next load.  Divergence
    and repair are recorded in :class:`~repro.resilience.Diagnostics`
    (``replicas_repaired``, plus a warning per repair) and mirrored into
    an optional metrics counter.

    Duck-type compatible with :class:`CheckpointStore` (``exists`` /
    ``save`` / ``load`` / ``path``), so it drops into
    :class:`RecoveringStreamRunner`, ``Executor.stream``, and the serve
    subscription path unchanged.
    """

    def __init__(
        self,
        paths: Sequence[str | os.PathLike],
        *,
        keep_previous: bool = True,
        quorum: Optional[int] = None,
        repair_counter=None,
        diagnostics: Optional[Diagnostics] = None,
    ):
        if not paths:
            raise ValueError("ReplicatedCheckpointStore needs at least one path")
        resolved = [os.fspath(path) for path in paths]
        if len(set(resolved)) != len(resolved):
            raise ValueError(f"replica paths must be distinct, got {resolved}")
        self._stores = [
            CheckpointStore(path, keep_previous=keep_previous) for path in resolved
        ]
        majority = len(resolved) // 2 + 1
        if quorum is None:
            quorum = majority
        if not 1 <= quorum <= len(resolved):
            raise ValueError(
                f"quorum must be in 1..{len(resolved)}, got {quorum}"
            )
        self.quorum = quorum
        # Generation is discovered lazily: a fresh process opening existing
        # replicas must continue *above* the highest generation on disk,
        # never restart at 1 (which would make every subsequent read treat
        # the new writes as stale).
        self._generation: Optional[int] = None
        self.repairs = 0
        self.write_failures = 0
        self._repair_counter = repair_counter
        # save() has no diagnostics argument (CheckpointStore parity), so
        # write-failure accounting goes through this bound record instead.
        self._diagnostics = diagnostics

    @property
    def path(self) -> str:
        """The primary replica path (used in error messages)."""
        return self._stores[0].path

    @property
    def replica_paths(self) -> Tuple[str, ...]:
        return tuple(store.path for store in self._stores)

    @property
    def generation(self) -> Optional[int]:
        return self._generation

    def exists(self) -> bool:
        return any(store.exists() for store in self._stores)

    @staticmethod
    def _replica_save(store: CheckpointStore, stamped: "_Generational") -> None:
        """Write one replica, recreating its directory if the whole
        failure domain (e.g. a wiped replica volume) is gone."""
        parent = os.path.dirname(store.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        store.save(stamped)

    def _scan_generation(self) -> int:
        """Highest generation readable from any replica (0 when none)."""
        best = 0
        for store in self._stores:
            if not store.exists():
                continue
            try:
                raw = store.load()
            except (CheckpointCorrupt, RecoveryError):
                continue
            if isinstance(raw, _Generational):
                best = max(best, raw.generation)
        return best

    def save(self, state: object) -> None:
        """Stamp ``state`` with the next generation and fan out.

        Raises :class:`~repro.errors.RecoveryError` when fewer than
        ``quorum`` replicas accept the write; the generation is *not*
        rolled back in that case (the replicas that did land are valid
        and newest, and the next load repairs the rest).
        """
        if self._generation is None:
            self._generation = self._scan_generation()
        self._generation += 1
        stamped = _Generational(self._generation, state)
        failures: List[Tuple[str, Exception]] = []
        for store in self._stores:
            try:
                failpoints.maybe_fail("checkpoint.replica_write")
                self._replica_save(store, stamped)
            except Exception as error:
                failures.append((store.path, error))
                if self._diagnostics is not None:
                    self._diagnostics.record_replica_write_failure(
                        store.path, str(error)
                    )
        self.write_failures += len(failures)
        written = len(self._stores) - len(failures)
        if written < self.quorum:
            detail = "; ".join(
                f"{path}: {error}" for path, error in failures[:3]
            )
            raise RecoveryError(
                f"checkpoint write quorum failed: {written}/"
                f"{len(self._stores)} replicas written "
                f"(need {self.quorum}): {detail}"
            ) from failures[-1][1]

    def load(self, *, diagnostics: Optional[Diagnostics] = None) -> object:
        """Return the newest valid state across replicas, repairing others.

        Replica-local ``.prev`` fallback happens inside each
        :class:`CheckpointStore`; this layer then arbitrates by
        generation.  After the winner is chosen, every replica that was
        missing, corrupt, or stale is rewritten with the winning stamped
        state (best effort — a replica that cannot be repaired is warned
        about and retried on the next save/load).
        """
        best_generation = -1
        best_stamped: Optional[_Generational] = None
        outcomes: List[Tuple[CheckpointStore, str, Optional[int]]] = []
        last_error: Optional[Exception] = None
        for store in self._stores:
            if not store.exists():
                outcomes.append((store, "missing", None))
                continue
            try:
                raw = store.load(diagnostics=diagnostics)
            except (CheckpointCorrupt, RecoveryError) as error:
                last_error = error
                outcomes.append((store, "corrupt", None))
                continue
            if isinstance(raw, _Generational):
                stamped = raw
            else:
                # A pre-replication single-store file: adopt it as
                # generation 0 so upgrades in place keep their state.
                stamped = _Generational(0, raw)
            outcomes.append((store, "ok", stamped.generation))
            if stamped.generation > best_generation:
                best_generation = stamped.generation
                best_stamped = stamped
        if best_stamped is None:
            if all(outcome == "missing" for _, outcome, _ in outcomes):
                raise RecoveryError(
                    f"no checkpoint at any replica of {self.path} "
                    f"(replicas: {', '.join(self.replica_paths)})"
                )
            assert last_error is not None
            raise last_error
        for store, outcome, generation in outcomes:
            if outcome == "ok" and generation == best_generation:
                continue
            reason = (
                outcome
                if outcome != "ok"
                else f"stale (generation {generation} < {best_generation})"
            )
            try:
                self._replica_save(store, best_stamped)
            except Exception as error:  # repair is best effort
                if diagnostics is not None:
                    diagnostics.warn(
                        f"checkpoint replica {store.path} is {reason} and "
                        f"could not be repaired ({error})"
                    )
                continue
            self.repairs += 1
            if self._repair_counter is not None:
                self._repair_counter.inc()
            if diagnostics is not None:
                diagnostics.record_replica_repaired()
                diagnostics.warn(
                    f"checkpoint replica {store.path} was {reason}; "
                    f"repaired to generation {best_generation}"
                )
        self._generation = best_generation
        return best_stamped.state


#: Anything the runner/executor/serve layers accept as a checkpoint store.
StoreLike = Union[CheckpointStore, ReplicatedCheckpointStore]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff configuration for transient source failures.

    ``max_retries`` bounds *consecutive* failed attempts; any successful
    row resets the count.  Delays grow geometrically from ``backoff`` by
    ``backoff_factor`` up to ``max_backoff``.  Only ``retryable``
    exception types are retried — anything else propagates immediately.

    ``jitter`` spreads the delay: with jitter ``j`` the sleep before
    attempt ``n`` is drawn uniformly from
    ``[base*(1-j), base)`` where ``base`` is the deterministic geometric
    delay.  The default of 0 keeps the exact legacy schedule (so timing
    tests stay byte-for-byte deterministic); reconnect storms — many
    clients losing the same server at the same instant — should use full
    jitter (``jitter=1.0``) so their retries decorrelate instead of
    hammering the server in lockstep.
    """

    max_retries: int = 0
    backoff: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    retryable: tuple = (TransientSourceError, OSError)
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(
        self, attempt: int, rng: Optional[Callable[[], float]] = None
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based).

        ``rng`` is a 0-argument callable returning a float in ``[0, 1)``
        (default :func:`random.random`); inject a deterministic one in
        tests.  It is only consulted when ``jitter > 0``.
        """
        base = min(
            self.backoff * self.backoff_factor ** max(attempt - 1, 0),
            self.max_backoff,
        )
        if self.jitter <= 0.0:
            return base
        sample = (rng if rng is not None else random.random)()
        return base * (1.0 - self.jitter) + base * self.jitter * sample


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the recovering runner writes periodic checkpoints.

    ``on_emit`` additionally checkpoints *before* every yielded batch of
    matches — that write is what upgrades recovery from at-least-once to
    exactly-once, so disable it only when duplicate emission after a
    crash is acceptable.
    """

    every_rows: Optional[int] = 1000
    every_seconds: Optional[float] = None
    on_emit: bool = True

    def __post_init__(self) -> None:
        if self.every_rows is not None and self.every_rows < 1:
            raise ValueError(
                f"every_rows must be positive, got {self.every_rows}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be positive, got {self.every_seconds}"
            )


@dataclass(frozen=True)
class RunnerCheckpoint:
    """What :class:`RecoveringStreamRunner` persists: the source offset
    to resume reading from, plus the full matcher snapshot."""

    source_offset: int
    matcher: MatcherSnapshot


class RecoveringStreamRunner:
    """Drive a stream query with retries, checkpoints, and resume.

    ``source_factory(start_offset)`` must return an iterator of
    ``(offset, row)`` pairs with offsets ``>= start_offset`` strictly
    increasing — re-invoking it is how both retry (reopen at the current
    position) and resume (reopen at the checkpointed position) work.
    Sources that cannot seek may simply re-yield from offset 0; rows
    before ``start_offset`` are skipped without being re-pushed.

    ``run()`` yields ``(offset, match)`` pairs as matches complete.  With
    ``CheckpointPolicy.on_emit`` (the default) a checkpoint is written
    before each batch is yielded, and on resume matches ending at or
    before the restored high-water mark are suppressed, so each match is
    delivered exactly once across any number of crash/resume cycles.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        source_factory: Callable[[int], Iterator[Tuple[int, Mapping[str, object]]]],
        *,
        store: Optional[StoreLike] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        limits: Optional[ResourceLimits] = None,
        overflow: str = "raise",
        trim: bool = True,
        extra_lookback: int = 0,
        instrumentation: Optional[Instrumentation] = None,
        diagnostics: Optional[Diagnostics] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[Callable[[], float]] = None,
        stop: Optional[Callable[[], Optional[str]]] = None,
        trace=None,
    ):
        self._pattern = pattern
        self._source_factory = source_factory
        self._store = store
        self._checkpoints = (
            checkpoints if checkpoints is not None else CheckpointPolicy()
        )
        self._retry = retry if retry is not None else RetryPolicy()
        self._limits = limits
        self._overflow = overflow
        self._trim = trim
        self._extra_lookback = extra_lookback
        self._instrumentation = instrumentation
        self.diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        self._clock = clock
        self._sleep = sleep
        self._rng = rng
        self._stop = stop
        # Optional flight-recorder trace (repro.obs.Trace): checkpoint
        # writes and restores get spans; None costs nothing.
        self._trace = trace
        self.matcher: Optional[OpsStreamMatcher] = None
        self.source_offset = 0

    # ------------------------------------------------------------------

    def _fresh_matcher(self) -> OpsStreamMatcher:
        return OpsStreamMatcher(
            self._pattern,
            instrumentation=self._instrumentation,
            trim=self._trim,
            limits=self._limits,
            diagnostics=self.diagnostics,
            overflow=self._overflow,
            extra_lookback=self._extra_lookback,
        )

    def _restore(self) -> Tuple[OpsStreamMatcher, int]:
        if self._trace is not None:
            with self._trace.span("checkpoint.restore") as span:
                matcher, offset = self._restore_inner()
            span.annotate(offset=offset)
            return matcher, offset
        return self._restore_inner()

    def _restore_inner(self) -> Tuple[OpsStreamMatcher, int]:
        assert self._store is not None
        failpoints.maybe_fail("recovery.restore")
        state = self._store.load(diagnostics=self.diagnostics)
        if not isinstance(state, RunnerCheckpoint):
            raise RecoveryError(
                f"checkpoint at {self._store.path} does not contain runner "
                f"state (found {type(state).__name__})"
            )
        matcher = restore_matcher(
            state.matcher,
            self._pattern,
            instrumentation=self._instrumentation,
            trim=self._trim,
            limits=self._limits,
            diagnostics=self.diagnostics,
            overflow=self._overflow,
            extra_lookback=self._extra_lookback,
        )
        self.diagnostics.record_checkpoint_restored()
        return matcher, state.source_offset

    def _checkpoint(self) -> None:
        if self._store is None:
            return
        assert self.matcher is not None
        if self._trace is not None:
            with self._trace.span(
                "checkpoint.write", offset=self.source_offset
            ):
                self._checkpoint_inner()
            return
        self._checkpoint_inner()

    def _checkpoint_inner(self) -> None:
        self._store.save(
            RunnerCheckpoint(
                source_offset=self.source_offset,
                matcher=snapshot_matcher(self.matcher),
            )
        )
        self.diagnostics.record_checkpoint_written()

    def _due(self, rows_since: int, last_time: float) -> bool:
        policy = self._checkpoints
        if policy.every_rows is not None and rows_since >= policy.every_rows:
            return True
        if (
            policy.every_seconds is not None
            and self._clock() - last_time >= policy.every_seconds
        ):
            return True
        return False

    # ------------------------------------------------------------------

    def run(
        self, *, resume: bool = False
    ) -> Iterator[Tuple[int, Match]]:
        """Consume the source to exhaustion, yielding ``(offset, match)``.

        ``resume=True`` restores matcher state and source position from
        the checkpoint store (a missing checkpoint starts fresh with a
        warning); ``resume=False`` always starts from offset 0, but still
        writes checkpoints if a store is configured.
        """
        restored_hwm = -1
        if resume and self._store is not None and self._store.exists():
            self.matcher, self.source_offset = self._restore()
            restored_hwm = self.matcher.emitted_high_water
        else:
            if resume:
                self.diagnostics.warn(
                    "resume requested but no checkpoint exists; "
                    "starting from the beginning of the stream"
                )
            self.matcher = self._fresh_matcher()
            self.source_offset = 0
        matcher = self.matcher

        if matcher.finished:
            # The previous run checkpointed after finish(); nothing left.
            return

        source = self._open_source(self.source_offset)
        failures = 0
        rows_since_checkpoint = 0
        last_checkpoint_time = self._clock()
        while True:
            if self._stop is not None:
                reason = self._stop()
                if reason:
                    # Graceful interrupt (signal, drain): persist the full
                    # matcher state *without* finishing the stream, so a
                    # later --resume continues exactly here with the
                    # exactly-once high-water mark intact.
                    self._checkpoint()
                    self.diagnostics.record_limit(
                        f"{reason}; stream stopped at offset "
                        f"{self.source_offset}"
                        + (
                            " (checkpoint written)"
                            if self._store is not None
                            else ""
                        )
                    )
                    return
            try:
                item = next(source, None)
            except self._retry.retryable as error:
                failures += 1
                if failures > self._retry.max_retries:
                    raise
                delay = self._retry.delay(failures, rng=self._rng)
                self.diagnostics.record_retry(
                    f"source failed at offset {self.source_offset} "
                    f"({error}); reopening in {delay:g}s "
                    f"(attempt {failures}/{self._retry.max_retries})"
                )
                self._sleep(delay)
                source = self._open_source(self.source_offset)
                continue
            if item is None:
                break
            failures = 0
            offset, row = item
            if offset < self.source_offset:
                continue  # replayed prefix from a non-seekable source
            fresh = matcher.push(row)
            self.source_offset = offset + 1
            rows_since_checkpoint += 1
            emitted = self._deliverable(fresh, restored_hwm)
            if emitted:
                if self._checkpoints.on_emit:
                    self._checkpoint()
                    rows_since_checkpoint = 0
                    last_checkpoint_time = self._clock()
                for match in emitted:
                    yield self.source_offset - 1, match
            if matcher.tripped is not None:
                break
            if self._due(rows_since_checkpoint, last_checkpoint_time):
                self._checkpoint()
                rows_since_checkpoint = 0
                last_checkpoint_time = self._clock()

        trailing = self._deliverable(matcher.finish(), restored_hwm)
        self._checkpoint()
        for match in trailing:
            yield self.source_offset - 1, match

    def _deliverable(self, fresh: list, restored_hwm: int) -> list:
        """Filter out matches the previous incarnation already delivered."""
        if restored_hwm < 0 or not fresh:
            return fresh
        deliverable = [match for match in fresh if match.end > restored_hwm]
        suppressed = len(fresh) - len(deliverable)
        if suppressed:
            self.diagnostics.record_duplicates_suppressed(suppressed)
        return deliverable

    def _open_source(
        self, start_offset: int
    ) -> Iterator[Tuple[int, Mapping[str, object]]]:
        return iter(self._source_factory(start_offset))
