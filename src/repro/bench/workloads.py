"""Programmatic pattern/data builders used by the benchmark sweeps."""

from __future__ import annotations

from typing import Sequence

from repro.constraints.atoms import Op
from repro.data.random_walk import sawtooth
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

_PRICE = col("price")
_PREV = _PRICE.previous
_DOMAINS = AttributeDomains.prices()


def rise_predicate():
    """t.price > t.previous.price"""
    return predicate(comparison(_PRICE, ">", _PREV), domains=_DOMAINS, label="rise")


def fall_predicate():
    """t.price < t.previous.price"""
    return predicate(comparison(_PRICE, "<", _PREV), domains=_DOMAINS, label="fall")


def threshold_predicate(op: str, bound: float):
    """t.price op bound"""
    return predicate(
        comparison(_PRICE, Op(op), bound), domains=_DOMAINS, label=f"price{op}{bound:g}"
    )


def staircase_spec(alternations: int, final_bound: float = 5.0) -> PatternSpec:
    """``(*rise, *fall, *rise, ..., price < bound)`` — the sweep family.

    ``alternations`` starred rise/fall runs followed by one rare
    threshold element.  Restart-at-start+1 baselines pay the full
    remaining staircase from every interior position of every run, so
    their cost grows with ``alternations x run-length`` per input element
    while OPS stays near one test per element — the mechanism behind the
    paper's "speedups of more than two orders of magnitude ... up to 800
    times" on complex patterns.
    """
    if alternations < 1:
        raise ValueError("need at least one starred run")
    elements = [
        PatternElement(
            f"E{index}",
            rise_predicate() if index % 2 == 0 else fall_predicate(),
            star=True,
        )
        for index in range(alternations)
    ]
    elements.append(PatternElement("S", threshold_predicate("<", final_bound)))
    return PatternSpec(elements)


def staircase_rows(
    n: int,
    min_run: int = 8,
    max_run: int = 25,
    floor: float = 8.0,
    seed: int = 1,
) -> list[dict[str, object]]:
    """Sawtooth rows matching :func:`staircase_spec` (never below floor,
    so the final threshold never fires and every attempt runs deep)."""
    return [{"price": price} for price in sawtooth(
        n, floor=floor, min_run=min_run, max_run=max_run, seed=seed
    )]


def constant_pattern_spec(values: Sequence[float]) -> PatternSpec:
    """An Example 3-style equality pattern: price = v1, v2, ... (KMP-able)."""
    elements = [
        PatternElement(
            f"C{index}",
            predicate(
                comparison(_PRICE, "=", value), domains=_DOMAINS, label=f"={value:g}"
            ),
        )
        for index, value in enumerate(values)
    ]
    return PatternSpec(elements)
