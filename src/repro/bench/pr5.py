"""Parallel-scaling benchmark for the partition execution engine.

Times serial execution against ``workers ∈ {2, 4}`` on a DJIA-style
panel — a dozen random-walk tickers searched independently per
``CLUSTER BY`` partition, the workload shape partition parallelism is
built for — and on the paper's single-cluster Example 10 headline as a
sanity floor (one partition cannot parallelize; output must still be
identical).  Every timed configuration is first verified to produce
bit-identical rows and match counts to serial execution: the speedup
numbers are only reported for runs the equivalence check has passed.

Wall-clock speedup is hardware-dependent (``cpu_count`` is recorded
alongside the timings; a single-core container will honestly show ~1x),
so the ``--check`` gate is asymmetric: identical match counts are a
hard failure, the speedup is reported for the CI log.

``python -m repro.bench.pr5``                 regenerate BENCH_pr5.json
``python -m repro.bench.pr5 --check``         verify match parity against
                                              the committed baseline and
                                              report scaling (CI gate)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Optional

from repro.bench.common import bench_metadata
from repro.data.djia import djia_table
from repro.data.random_walk import geometric_walk
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.table import Schema, Table
from repro.pattern.predicates import AttributeDomains

#: Default artefact location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_pr5.json"

#: Worker counts timed against serial.
WORKER_COUNTS = (2, 4)

#: The panel workload: a relaxed double bottom (down-run, recovery) per
#: ticker, clustered so each ticker is an independent partition.
PANEL_QUERY = (
    "SELECT X.name, X.date, S.date FROM quote CLUSTER BY name "
    "SEQUENCE BY date AS (X, *Y, S) "
    "WHERE Y.price < 0.995 * Y.previous.price "
    "AND S.price > 1.01 * X.price"
)


def panel_table(tickers: int, days: int) -> Table:
    table = Table(
        "quote", Schema([("name", "str"), ("date", "int"), ("price", "float")])
    )
    for ticker in range(tickers):
        walk = geometric_walk(
            days, seed=100 + ticker, shock_probability=0.03
        )
        for day, price in enumerate(walk):
            table.insert(
                {
                    "name": f"T{ticker:02d}",
                    "date": day,
                    "price": round(price, 4),
                }
            )
    return table


def _executor(catalog: Catalog, workers: int, matcher: str) -> Executor:
    return Executor(
        catalog,
        domains=AttributeDomains.prices(),
        matcher=matcher,
        workers=workers,
        parallel_mode="auto",
    )


def _best_time(catalog, query, workers, matcher, repetitions) -> float:
    executor = _executor(catalog, workers, matcher)
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        executor.execute(query)
        best = min(best, time.perf_counter() - started)
    return best


def _bench_workload(
    catalog: Catalog, query: str, matcher: str, repetitions: int
) -> dict:
    """Time serial vs parallel on one workload, verifying parity first."""
    serial_result, serial_report = _executor(
        catalog, 1, matcher
    ).execute_with_report(query)
    runs: dict[str, dict] = {}
    serial_s = _best_time(catalog, query, 1, matcher, repetitions)
    for workers in WORKER_COUNTS:
        result, report = _executor(catalog, workers, matcher).execute_with_report(
            query
        )
        if result.rows != serial_result.rows:
            raise AssertionError(
                f"workers={workers}: parallel execution changed the rows"
            )
        if report.matches != serial_report.matches:
            raise AssertionError(
                f"workers={workers}: match count diverged "
                f"(serial {serial_report.matches}, parallel {report.matches})"
            )
        parallel_s = _best_time(catalog, query, workers, matcher, repetitions)
        runs[str(workers)] = {
            "parallel_s": round(parallel_s, 6),
            "speedup": round(serial_s / parallel_s, 3),
            "matches": report.matches,
        }
    return {
        "rows": serial_report.rows_scanned,
        "clusters": serial_report.clusters,
        "matcher": serial_report.matcher,
        "serial_s": round(serial_s, 6),
        "predicate_tests": serial_report.predicate_tests,
        "matches": serial_report.matches,
        "workers": runs,
    }


def run_bench(profile: str = "full") -> dict:
    repetitions = 2 if profile == "smoke" else 5
    tickers, days = (12, 1200) if profile != "smoke" else (8, 400)
    workloads: dict[str, dict] = {}

    panel = Catalog([panel_table(tickers, days)])
    workloads["djia_panel"] = _bench_workload(
        panel, PANEL_QUERY, "naive", repetitions
    )
    workloads["djia_panel_ops"] = _bench_workload(
        panel, PANEL_QUERY, "ops", repetitions
    )

    # Single-cluster sanity floor: the paper's Example 10 headline has
    # one partition, so parallel execution must degenerate gracefully to
    # the same 11 DJIA matches BENCH_pr3.json records.
    djia = Catalog([djia_table()])
    workloads["example_10_single_cluster"] = _bench_workload(
        djia, EXAMPLE_10, "naive", repetitions
    )

    headline = workloads["djia_panel"]
    return {
        "bench": "pr5-parallel-partitions",
        "profile": profile,
        "meta": bench_metadata(),
        "cpu_count": os.cpu_count(),
        "scaling_note": (
            "recorded on a single-core host: speedup columns are "
            "physically capped at ~1x and are not evidence about the "
            "engine; CI re-measures scaling on a multi-core runner "
            "with --require-scaling"
            if (os.cpu_count() or 1) <= 1
            else None
        ),
        "workloads": workloads,
        "headline": {
            "workload": "djia_panel",
            "matcher": "naive",
            "serial_s": headline["serial_s"],
            "speedup_workers_4": headline["workers"]["4"]["speedup"],
            "matches": headline["matches"],
        },
    }


def check_against_baseline(current: dict, baseline: dict) -> list[str]:
    """Hard failures of the CI gate; empty list means pass.

    Match counts must be exactly the baseline's (on matching profiles;
    the smoke profile shrinks the synthetic panel, so only the
    fixed-size workloads are comparable across profiles); wall-clock
    speedup is hardware-dependent and only reported.
    """
    failures: list[str] = []
    same_profile = current.get("profile") == baseline.get("profile")
    #: Workloads whose data does not depend on the profile.
    fixed_size = {"example_10_single_cluster"}
    for workload, recorded in current["workloads"].items():
        reference = baseline["workloads"].get(workload)
        if reference is None:
            continue
        if not same_profile and workload not in fixed_size:
            continue
        for exact_key in ("matches", "predicate_tests", "clusters"):
            if recorded[exact_key] != reference[exact_key]:
                failures.append(
                    f"{workload}: {exact_key} changed "
                    f"{reference[exact_key]} -> {recorded[exact_key]}"
                )
    return failures


def check_scaling(current: dict, min_speedup: float = 1.05) -> list[str]:
    """Enforce that parallelism actually pays on multi-core hardware.

    The committed baseline was once recorded on a single-core container
    where a ~1x "speedup" is the honest physical ceiling, not a bug —
    but silently passing ``--check`` there hides real scaling
    regressions on real hardware.  This gate makes the asymmetry
    explicit: on a multi-core host the best panel speedup must clear
    ``min_speedup``; on a single core the check is SKIPPED with a loud
    annotation instead of vacuously passing.
    """
    cpu = current.get("cpu_count") or 1
    if cpu <= 1:
        print(
            "SCALING CHECK SKIPPED: os.cpu_count() <= 1 — wall-clock "
            "speedup cannot materialize on a single core. Match parity "
            "was still enforced; run on a multi-core host (the CI "
            "runner does) to enforce scaling."
        )
        return []
    headline = current["workloads"]["djia_panel"]
    best = max(run["speedup"] for run in headline["workers"].values())
    if best < min_speedup:
        return [
            f"djia_panel: best parallel speedup {best:.2f}x is below the "
            f"{min_speedup:.2f}x floor on a {cpu}-core host"
        ]
    print(f"scaling check passed: best panel speedup {best:.2f}x on {cpu} cores")
    return []


def check_against_pr3(current: dict, pr3_path: Path) -> list[str]:
    """Cross-check Example 10 against the serial BENCH_pr3 DJIA baseline.

    The parallel engine — even degenerated to one partition — must find
    exactly the match count the serial compiled-predicate baseline
    recorded in PR 3.
    """
    if not pr3_path.exists():
        return []
    pr3 = json.loads(pr3_path.read_text())
    expected = pr3["headline"]["matches"]
    recorded = current["workloads"]["example_10_single_cluster"]["matches"]
    if recorded != expected:
        return [
            f"example_10_single_cluster: {recorded} matches, but the "
            f"serial BENCH_pr3 DJIA baseline recorded {expected}"
        ]
    return []


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["full", "smoke"], default="full",
        help="smoke shrinks the panel and repetition count for CI",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify match parity against the committed baseline "
        "instead of rewriting it",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="baseline JSON path (written without --check, read with it)",
    )
    parser.add_argument(
        "--require-scaling", action="store_true",
        help="with --check: fail unless parallel execution beats serial "
        "on this host (skipped with a loud annotation when "
        "os.cpu_count() <= 1, where no speedup is physically possible)",
    )
    args = parser.parse_args(argv)

    current = run_bench(args.profile)
    print(f"cpu_count={current['cpu_count']}")
    if (current.get("cpu_count") or 1) <= 1:
        print(
            "NOTE: single-core host — the speedup columns below are "
            "physically capped at ~1x and say nothing about the engine; "
            "see --require-scaling"
        )
    for workload, recorded in current["workloads"].items():
        scaling = " ".join(
            f"w{workers}={run['speedup']:.2f}x"
            for workers, run in recorded["workers"].items()
        )
        print(
            f"{workload:26s} {recorded['matcher']:6s} "
            f"serial={recorded['serial_s']:.4f}s {scaling} "
            f"matches={recorded['matches']} (identical across workers)"
        )

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output}; run without --check first")
            return 2
        baseline = json.loads(args.output.read_text())
        failures = check_against_baseline(current, baseline)
        failures += check_against_pr3(
            current, args.output.parent / "BENCH_pr3.json"
        )
        if args.require_scaling:
            failures += check_scaling(current)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print("bench check passed: match counts identical; speedup above")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
