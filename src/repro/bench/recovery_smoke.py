"""CI smoke check for crash recovery: checkpoint mid-stream, resume.

Streams the paper's DJIA double-bottom (Example 10) query, plants a
crash halfway through the input, resumes from the durable checkpoint,
and asserts the combined emission matches the committed
``BENCH_pr3.json`` expectation (11 matches for the DJIA workload) with
no duplicate positions — under both the compiled and the interpreted
predicate evaluator (checkpoints are interchangeable between the two).

``python -m repro.bench.recovery_smoke``      exit 0 on success, 1 with a
                                              message per failed check
"""

from __future__ import annotations

import dataclasses
import json
import sys
import tempfile
from pathlib import Path

from repro.data.djia import djia_table
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.pattern.predicates import AttributeDomains
from repro.recovery import CheckpointPolicy, CheckpointStore, RecoveringStreamRunner

BASELINE = Path(__file__).resolve().parents[3] / "BENCH_pr3.json"


class _PlannedCrash(Exception):
    """The simulated process death; never caught by the recovery layer."""


def _expected_matches() -> int:
    with open(BASELINE) as handle:
        baseline = json.load(handle)
    return baseline["workloads"]["djia_double_bottom"]["matchers"]["ops"]["matches"]


def _source_factory(rows, crash_at):
    def factory(start):
        for offset in range(start, len(rows)):
            if crash_at is not None and offset == crash_at:
                raise _PlannedCrash(f"planted crash at offset {offset}")
            yield offset, rows[offset]

    return factory


def _run_with_crash(pattern, rows, store_path, crash_at) -> list:
    """One crash/resume cycle; returns every match emitted across both."""
    store = CheckpointStore(store_path)
    checkpoints = CheckpointPolicy(every_rows=100)
    emitted = []
    first = RecoveringStreamRunner(
        pattern,
        _source_factory(rows, crash_at),
        store=store,
        checkpoints=checkpoints,
    )
    try:
        for _, match in first.run():
            emitted.append(match)
    except _PlannedCrash:
        pass
    else:
        return emitted  # pragma: no cover - crash_at must be reachable
    second = RecoveringStreamRunner(
        pattern,
        _source_factory(rows, None),
        store=store,
        checkpoints=checkpoints,
    )
    for _, match in second.run(resume=True):
        emitted.append(match)
    if second.diagnostics.checkpoints_restored != 1:
        raise AssertionError(
            f"expected exactly one checkpoint restore, got "
            f"{second.diagnostics.checkpoints_restored}"
        )
    return emitted


def main() -> int:
    expected = _expected_matches()
    table = djia_table()
    rows = sorted(table, key=lambda row: row["date"])
    catalog = Catalog()
    catalog.register(table)
    executor = Executor(catalog, domains=AttributeDomains.prices())
    _, compiled = executor.prepare(EXAMPLE_10)
    failures = []
    for evaluator in ("compiled", "interpreted"):
        pattern = (
            compiled
            if evaluator == "compiled"
            else dataclasses.replace(compiled, use_codegen=False)
        )
        with tempfile.TemporaryDirectory() as tmp:
            try:
                emitted = _run_with_crash(
                    pattern, rows, Path(tmp) / "smoke.ckpt", len(rows) // 2
                )
            except Exception as error:  # noqa: BLE001 - report and fail CI
                failures.append(f"{evaluator}: crash/resume run failed: {error}")
                continue
        positions = [(match.start, match.end) for match in emitted]
        if len(set(positions)) != len(positions):
            failures.append(f"{evaluator}: duplicate match positions {positions}")
        if len(emitted) != expected:
            failures.append(
                f"{evaluator}: {len(emitted)} matches after crash/resume, "
                f"baseline expects {expected}"
            )
        else:
            print(
                f"recovery smoke [{evaluator}]: {len(emitted)} matches "
                f"across crash/resume (baseline {expected}) ok"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
