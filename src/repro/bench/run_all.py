"""One-command regeneration of every experiment table.

``python -m repro.bench.run_all`` reruns the measured artefacts E1–E9
(plus the streaming extension) and prints the tables EXPERIMENTS.md
reports, without going through pytest.  Runtime is a couple of minutes;
pass ``--quick`` to shrink the sweeps.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.ablation import compile_blind
from repro.bench.figures import render_path_curves
from repro.bench.harness import compare_matchers, compare_on_rows
from repro.bench.report import format_table
from repro.bench.workloads import staircase_rows, staircase_spec
from repro.data.djia import djia_table
from repro.data.quotes import quote_table
from repro.data.workloads import EXAMPLE_10, FIGURE5_SEQUENCE
from repro.engine.catalog import Catalog
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

DOMAINS = AttributeDomains.prices()


def _banner(text: str, out) -> None:
    print(file=out)
    print("=" * 72, file=out)
    print(text, file=out)
    print("=" * 72, file=out)


def run_figure5(out) -> None:
    _banner("E1 / Figure 5 — path curves, Example 4 pattern", out)
    price = col("price")
    prev = price.previous
    p = lambda *c: predicate(*c, domains=DOMAINS)
    spec = PatternSpec(
        [
            PatternElement("Y", p(comparison(price, "<", prev))),
            PatternElement(
                "Z",
                p(
                    comparison(price, "<", prev),
                    comparison(40, "<", price),
                    comparison(price, "<", 50),
                ),
            ),
            PatternElement(
                "T", p(comparison(price, ">", prev), comparison(price, "<", 52))
            ),
            PatternElement("U", p(comparison(price, ">", prev))),
        ]
    )
    plan = compile_pattern(spec)
    rows = [{"price": float(v)} for v in FIGURE5_SEQUENCE]
    naive_inst = Instrumentation(record_trace=True)
    ops_inst = Instrumentation(record_trace=True)
    NaiveMatcher().find_matches(rows, plan, naive_inst)
    OpsMatcher().find_matches(rows, plan, ops_inst)
    print(render_path_curves(naive_inst.trace, ops_inst.trace), file=out)
    print(
        f"\npath lengths: naive={naive_inst.tests}, ops={ops_inst.tests}",
        file=out,
    )


def run_double_bottom(out) -> None:
    _banner("E4 / Section 7 — relaxed double-bottom on synthetic DJIA", out)
    catalog = Catalog([djia_table()])
    n_days = len(catalog.table("djia"))
    runs = compare_matchers(
        catalog, EXAMPLE_10, matchers=("naive", "backtracking", "ops"), domains=DOMAINS
    )
    ops = runs["ops"]
    print(
        format_table(
            ["evaluator", "predicate tests", "tests/day", "matches", "ops speedup"],
            [
                (
                    run.name,
                    run.predicate_tests,
                    run.predicate_tests / n_days,
                    run.matches,
                    ops.speedup_over(run),
                )
                for run in runs.values()
            ],
            title=f"{n_days} days; paper: 12 matches, 93x",
        ),
        file=out,
    )


def run_sweep(out, quick: bool) -> None:
    _banner("E5 / Section 7 — complex-pattern sweep ('up to 800 times')", out)
    n = 1500 if quick else 4000
    table = []
    alternation_axis = (2, 4) if quick else (2, 4, 8, 12)
    run_axis = ((5, 10), (15, 30)) if quick else ((5, 10), (15, 30), (40, 80))
    for alternations in alternation_axis:
        for min_run, max_run in run_axis:
            rows = staircase_rows(n, min_run=min_run, max_run=max_run, seed=1)
            plan = compile_pattern(staircase_spec(alternations))
            runs = compare_on_rows(rows, plan, ("naive", "ops"))
            table.append(
                (
                    alternations,
                    f"{min_run}-{max_run}",
                    runs["naive"].predicate_tests,
                    runs["ops"].predicate_tests,
                    round(runs["ops"].speedup_over(runs["naive"]), 1),
                )
            )
    print(
        format_table(
            ["alternations", "run length", "naive tests", "ops tests", "speedup"],
            table,
        ),
        file=out,
    )


def run_ablation(out) -> None:
    _banner("E5 ablation — structure-blind OPS", out)
    rows = staircase_rows(3000, min_run=15, max_run=30, seed=1)
    spec = staircase_spec(8)
    full = compare_on_rows(rows, compile_pattern(spec), ("naive", "ops"))
    blind = compare_on_rows(
        rows, compile_blind(spec), ("ops",), require_identical=False
    )["ops"]
    print(
        format_table(
            ["compilation", "ops tests", "speedup vs naive"],
            [
                ("full theta/phi", full["ops"].predicate_tests,
                 round(full["ops"].speedup_over(full["naive"]), 1)),
                ("all-U (blind)", blind.predicate_tests,
                 round(blind.speedup_over(full["naive"]), 1)),
            ],
        ),
        file=out,
    )


def run_text(out) -> None:
    _banner("E9 / Section 8 — string matchers", out)
    import random

    from repro.match.text import (
        TextStats,
        boyer_moore_search,
        karp_rabin_search,
        kmp_search,
        naive_search,
    )

    rng = random.Random(12)
    text = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(20000))
    pattern = "qzjxkvbw"
    rows = []
    for name, algorithm in (
        ("naive", naive_search),
        ("kmp", kmp_search),
        ("boyer-moore", boyer_moore_search),
        ("karp-rabin", karp_rabin_search),
    ):
        stats = TextStats()
        algorithm(text, pattern, stats)
        rows.append((name, stats.comparisons, stats.hash_operations))
    print(
        format_table(
            ["algorithm", "char comparisons", "hash ops"],
            rows,
            title="random 26-letter text, n=20000, m=8",
        ),
        file=out,
    )


def run_quote_examples(out) -> None:
    _banner("Paper example queries on the quote table (OPS vs naive)", out)
    from repro.data import workloads

    catalog = Catalog([quote_table(days=500, seed=7), djia_table()])
    rows = []
    for name in sorted(workloads.ALL_EXAMPLES):
        runs = compare_matchers(
            catalog, workloads.ALL_EXAMPLES[name], ("naive", "ops"), domains=DOMAINS
        )
        rows.append(
            (
                name,
                runs["ops"].matches,
                runs["naive"].predicate_tests,
                runs["ops"].predicate_tests,
                round(runs["ops"].speedup_over(runs["naive"]), 2),
            )
        )
    print(
        format_table(
            ["query", "matches", "naive tests", "ops tests", "speedup"], rows
        ),
        file=out,
    )


def main(argv=None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)
    run_figure5(out)
    run_double_bottom(out)
    run_sweep(out, args.quick)
    run_ablation(out)
    run_text(out)
    run_quote_examples(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
