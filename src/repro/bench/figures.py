"""Text rendering of the paper's figures (no plotting dependencies).

:func:`render_path_curves` draws Figure 5 — the evolution of the pattern
cursor ``j`` against the input cursor ``i`` for two matchers — as aligned
ASCII step charts; :func:`render_series_with_matches` draws Figure 7's
top panel (the price series with match regions marked).  Both also have
``*_csv`` companions so the raw series can be re-plotted elsewhere.
"""

from __future__ import annotations

from typing import Sequence

Trace = Sequence[tuple[int, int]]


def render_path_curve(trace: Trace, title: str = "", height: int | None = None) -> str:
    """One (step -> j) chart; the x axis is the test step, y the pattern
    position being tested, matching the paper's Figure 5 layout."""
    if not trace:
        return f"{title}\n(empty trace)"
    max_j = max(j for _, j in trace)
    height = height if height is not None else max_j
    lines = [title] if title else []
    for level in range(height, 0, -1):
        row = "".join("*" if j == level else " " for _, j in trace)
        lines.append(f"j={level:<2d} |{row}")
    lines.append("     +" + "-" * len(trace))
    lines.append(f"      steps 1..{len(trace)}  (i advances with the step)")
    return "\n".join(lines)


def render_path_curves(
    naive_trace: Trace, ops_trace: Trace, height: int | None = None
) -> str:
    """Both Figure 5 panels, naive on top like the paper."""
    max_j = max(
        [j for _, j in naive_trace] + [j for _, j in ops_trace] + [1]
    )
    height = height if height is not None else max_j
    return (
        render_path_curve(naive_trace, "naive search path", height)
        + "\n\n"
        + render_path_curve(ops_trace, "OPS search path", height)
    )


def path_curve_csv(naive_trace: Trace, ops_trace: Trace) -> str:
    """The two curves as CSV: step, algorithm, i, j."""
    lines = ["step,algorithm,i,j"]
    for name, trace in (("naive", naive_trace), ("ops", ops_trace)):
        for step, (i, j) in enumerate(trace, start=1):
            lines.append(f"{step},{name},{i},{j}")
    return "\n".join(lines) + "\n"


def render_series_with_matches(
    values: Sequence[float],
    match_spans: Sequence[tuple[int, int]],
    height: int = 12,
    width: int = 72,
) -> str:
    """Figure 7's top panel: the series with match regions marked below."""
    if not values:
        return "(empty series)"
    if len(values) > width:
        step = len(values) / width
        sample_indices = [int(k * step) for k in range(width)]
    else:
        sample_indices = list(range(len(values)))
    sampled = [values[k] for k in sample_indices]
    low, high = min(sampled), max(sampled)
    span = (high - low) or 1.0
    lines = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        lines.append("".join("*" if v >= threshold else " " for v in sampled))
    marker = []
    for k in sample_indices:
        inside = any(start <= k <= end for start, end in match_spans)
        marker.append("^" if inside else " ")
    lines.append("".join(marker))
    lines.append(f"({len(match_spans)} match regions marked with ^)")
    return "\n".join(lines)
