"""Run matchers side by side and collect the paper's metric.

"In order to measure performance, we count the number of times that an
element of input is tested against a pattern element" (Section 7).  The
harness runs the same workload under several matchers, records those
counts, and — crucially — asserts that every matcher produced the same
matches, so a speedup can never silently come from dropping answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.engine.result import Result
from repro.errors import ExecutionError
from repro.match.backtracking import BacktrackingMatcher
from repro.match.base import Instrumentation, Match, Matcher
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import AttributeDomains

#: Matchers the harness knows by name.
NAMED_MATCHERS: dict[str, type] = {
    "naive": NaiveMatcher,
    "backtracking": BacktrackingMatcher,
    "ops": OpsStarMatcher,
    "ops-nonstar": OpsMatcher,
}


@dataclass(frozen=True)
class MatcherRun:
    """One matcher's outcome on one workload."""

    name: str
    predicate_tests: int
    matches: int
    result: Optional[Result] = None

    def speedup_over(self, other: "MatcherRun") -> float:
        """How many times fewer tests this run needed than ``other``."""
        if self.predicate_tests == 0:
            return float("inf")
        return other.predicate_tests / self.predicate_tests


def _resolve(matcher: Union[str, Matcher]) -> tuple[str, Matcher]:
    if isinstance(matcher, str):
        try:
            return matcher, NAMED_MATCHERS[matcher]()
        except KeyError:
            raise ExecutionError(
                f"unknown matcher {matcher!r} (choose from {sorted(NAMED_MATCHERS)})"
            ) from None
    return type(matcher).__name__, matcher


def compare_matchers(
    catalog: Catalog,
    sql: str,
    matchers: Sequence[Union[str, Matcher]] = ("naive", "ops"),
    domains: Optional[AttributeDomains] = None,
    require_identical: bool = True,
) -> dict[str, MatcherRun]:
    """Execute one SQL-TS query under each matcher; return runs by name."""
    runs: dict[str, MatcherRun] = {}
    reference: Optional[Result] = None
    for entry in matchers:
        name, matcher = _resolve(entry)
        instrumentation = Instrumentation()
        result = Executor(catalog, domains=domains, matcher=matcher).execute(
            sql, instrumentation
        )
        if require_identical:
            if reference is None:
                reference = result
            elif result != reference:
                raise AssertionError(
                    f"matcher {name!r} produced different results "
                    f"({len(result)} vs {len(reference)} rows)"
                )
        runs[name] = MatcherRun(
            name=name,
            predicate_tests=instrumentation.tests,
            matches=len(result),
            result=result,
        )
    return runs


def compare_on_rows(
    rows: Sequence[Mapping[str, object]],
    pattern: CompiledPattern,
    matchers: Sequence[Union[str, Matcher]] = ("naive", "ops"),
    require_identical: bool = True,
) -> dict[str, MatcherRun]:
    """Pattern-level comparison on a raw row sequence (no SQL layer)."""
    runs: dict[str, MatcherRun] = {}
    reference: Optional[list[Match]] = None
    for entry in matchers:
        name, matcher = _resolve(entry)
        instrumentation = Instrumentation()
        matches = matcher.find_matches(rows, pattern, instrumentation)
        if require_identical:
            if reference is None:
                reference = matches
            elif matches != reference:
                raise AssertionError(
                    f"matcher {name!r} produced different matches "
                    f"({len(matches)} vs {len(reference)})"
                )
        runs[name] = MatcherRun(
            name=name, predicate_tests=instrumentation.tests, matches=len(matches)
        )
    return runs
