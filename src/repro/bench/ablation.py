"""Ablated compilations for the design-choice benchmarks.

DESIGN.md calls out two ablations:

- **structure-blind OPS** (:func:`compile_blind`): the OPS control
  structure with all theta/phi knowledge erased (every off-diagonal entry
  forced to U).  Shift/next collapse to the most conservative values, so
  the measured gap between this and the full compilation isolates how
  much of the speedup comes from *logical implication* rather than from
  the runtime's mere bookkeeping;
- **paper-literal rules** (``compile_pattern(spec, use_equivalence=False)``):
  disables the equivalent-star-pair graph refinement, giving exactly the
  paper's arc rules.
"""

from __future__ import annotations

from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.compiler import CompiledPattern
from repro.pattern.shift_next import compute_shift_next
from repro.pattern.spec import PatternSpec
from repro.pattern.star_graph import ImplicationGraph
from repro.pattern.star_shift_next import compute_star_shift_next


def _blind_matrices(m: int) -> tuple[TriangularMatrix, TriangularMatrix]:
    """All-unknown theta/phi with only the forced diagonal values."""
    theta = TriangularMatrix(m, fill=UNKNOWN)
    phi = TriangularMatrix(m, fill=UNKNOWN)
    for j in range(1, m + 1):
        theta[j, j] = TRUE  # p => p
        phi[j, j] = FALSE  # NOT p => NOT p
    return theta, phi


def compile_blind(spec: PatternSpec) -> CompiledPattern:
    """Compile with all pairwise implication knowledge erased."""
    theta, phi = _blind_matrices(len(spec))
    if spec.has_star:
        graph = ImplicationGraph(theta, phi, [e.star for e in spec])
        shift_next = compute_star_shift_next(graph)
        return CompiledPattern(
            spec=spec,
            theta=theta,
            phi=phi,
            shift_next=shift_next,
            s_matrix=None,
            graph=graph,
        )
    shift_next, s_matrix = compute_shift_next(theta, phi)
    return CompiledPattern(
        spec=spec,
        theta=theta,
        phi=phi,
        shift_next=shift_next,
        s_matrix=s_matrix,
        graph=None,
    )
