"""Benchmark-harness support: matcher comparison, workloads, reporting.

The ``benchmarks/`` directory at the repository root contains one
pytest-benchmark module per paper table/figure; the heavy lifting (run a
query under several matchers, count predicate tests, check the match sets
agree, format the rows the paper reports) lives here so it is importable,
unit-testable library code.
"""

from repro.bench.harness import MatcherRun, compare_matchers, compare_on_rows
from repro.bench.report import format_table
from repro.bench.workloads import staircase_spec, staircase_rows

__all__ = [
    "MatcherRun",
    "compare_matchers",
    "compare_on_rows",
    "format_table",
    "staircase_spec",
    "staircase_rows",
]
