"""Plain-text table formatting for benchmark output.

pytest-benchmark reports wall times; the paper reports predicate-test
counts and speedups.  :func:`format_table` renders those rows so each
bench prints the same kind of table the paper's Section 7 discusses.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (numbers right-aligned)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[index]) for row in cells])
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for source, row in zip(rows, cells):
        lines.append(
            "  ".join(
                cell.rjust(w) if _is_number(value) else cell.ljust(w)
                for cell, w, value in zip(row, widths, source)
            )
        )
    return "\n".join(lines)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
