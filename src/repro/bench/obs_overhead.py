"""Tracing-off overhead gate for the engine flight recorder.

The observability layer's contract is *zero cost when off*: an untraced
query runs the same inner loops the engine ran before the flight
recorder existed, plus at most a pointer-is-None check on the cold
mismatch path.  This gate holds the engine to that claim on the
BENCH_pr3 DJIA double-bottom workload:

- **Byte-identity (hard, never skipped).**  A traced execution must
  return exactly the rows of an untraced one, with equal match counts;
  the untraced result must carry no profile; the traced profile's
  matcher and match count must agree with the execution report.
- **Throughput floor (honestly skippable).**  Untraced compiled
  predicate throughput, measured exactly as ``repro.bench.pr3``
  measures it, must not fall more than ``--tolerance`` (default 2%)
  below the committed ``BENCH_pr3.json`` baseline.  Wall-clock numbers
  on an overloaded runner are noise, not evidence — when two
  independent measurements disagree by more than the stability bound,
  the timing check is SKIPPED with a loud annotation (the pr5 scaling
  gate's pattern) while the identity checks above still gate.

``python -m repro.bench.obs_overhead``            regenerate BENCH_obs.json
``python -m repro.bench.obs_overhead --check``    CI smoke gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.bench.common import bench_metadata
from repro.data.djia import djia_table
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.match.base import Instrumentation
from repro.match.ops_star import OpsStarMatcher
from repro.obs import Trace
from repro.pattern.predicates import AttributeDomains

#: Default artefact location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_obs.json"

#: The committed pre-flight-recorder reference for the same workload.
PR3_BASELINE = Path(__file__).resolve().parents[3] / "BENCH_pr3.json"

#: Allowed fractional throughput loss vs the BENCH_pr3 baseline.
OVERHEAD_TOLERANCE = 0.02

#: Two independent best-of-N measurements disagreeing by more than this
#: mark the runner as too noisy to time on.
STABILITY_BOUND = 0.05


def _executor() -> Executor:
    return Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )


def identity_check() -> dict:
    """The hard gate: tracing must not change what a query returns."""
    executor = _executor()
    untraced, untraced_report = executor.execute_with_report(EXAMPLE_10)
    trace = Trace()
    traced, traced_report = executor.execute_with_report(
        EXAMPLE_10, trace=trace
    )
    if traced.rows != untraced.rows:
        raise AssertionError("tracing changed the result rows")
    if traced_report.matches != untraced_report.matches:
        raise AssertionError(
            f"tracing changed the match count "
            f"({untraced_report.matches} -> {traced_report.matches})"
        )
    if untraced.profile is not None:
        raise AssertionError("untraced execution grew a profile")
    profile = traced.profile
    if profile is None:
        raise AssertionError("traced execution carries no profile")
    if profile.matches != traced_report.matches:
        raise AssertionError(
            f"profile match count {profile.matches} disagrees with the "
            f"report's {traced_report.matches}"
        )
    if profile.matcher != traced_report.matcher:
        raise AssertionError(
            f"profile matcher {profile.matcher!r} disagrees with the "
            f"report's {traced_report.matcher!r}"
        )
    return {
        "matches": traced_report.matches,
        "rows": len(traced.rows),
        "rows_scanned": traced_report.rows_scanned,
        "profile_wall_ms": round(profile.wall_s * 1000.0, 3),
        "profile_spans": trace.span_count,
    }


def _untraced_tests_per_s(repetitions: int) -> dict:
    """Untraced matcher throughput, measured as repro.bench.pr3 does."""
    executor = _executor()
    _, compiled = executor.prepare(EXAMPLE_10)
    rows = list(Catalog([djia_table()]).table("djia"))
    matcher = OpsStarMatcher()
    instrumentation = Instrumentation()
    matcher.find_matches(rows, compiled, instrumentation)
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        matcher.find_matches(rows, compiled, None)
        best = min(best, time.perf_counter() - started)
    return {
        "predicate_tests": instrumentation.tests,
        "best_s": round(best, 6),
        "compiled_tests_per_s": round(instrumentation.tests / best, 1),
    }


def _traced_execute_overhead(repetitions: int) -> dict:
    """Informational: full-executor cost with tracing on vs off."""
    executor = _executor()
    executor.prepare(EXAMPLE_10)  # warm the plan cache for both sides

    def best(traced: bool) -> float:
        best_s = float("inf")
        for _ in range(repetitions):
            trace = Trace() if traced else None
            started = time.perf_counter()
            executor.execute(EXAMPLE_10, trace=trace)
            best_s = min(best_s, time.perf_counter() - started)
        return best_s

    off_s, on_s = best(False), best(True)
    return {
        "untraced_s": round(off_s, 6),
        "traced_s": round(on_s, 6),
        "traced_overhead_pct": round((on_s / off_s - 1.0) * 100.0, 2),
    }


def run_bench(profile: str = "full") -> dict:
    repetitions = 3 if profile == "smoke" else 7
    identity = identity_check()
    first = _untraced_tests_per_s(repetitions)
    second = _untraced_tests_per_s(repetitions)
    spread = abs(first["best_s"] - second["best_s"]) / min(
        first["best_s"], second["best_s"]
    )
    return {
        "bench": "obs-tracing-overhead",
        "profile": profile,
        "meta": bench_metadata(),
        "workload": "djia_double_bottom",
        "identity": identity,
        "untraced": first,
        "untraced_repeat": second,
        "measurement_spread": round(spread, 4),
        "traced_execute": _traced_execute_overhead(repetitions),
    }


def check_against_pr3(
    current: dict, pr3_path: Path, tolerance: float
) -> list[str]:
    """Throughput floor vs the committed BENCH_pr3 baseline.

    The identity checks already ran (hard) inside :func:`run_bench`;
    this only gates the wall-clock claim, and only when the runner can
    hold a measurement still.
    """
    if not pr3_path.exists():
        print(f"OVERHEAD CHECK SKIPPED: no pr3 baseline at {pr3_path}")
        return []
    spread = current["measurement_spread"]
    if spread > STABILITY_BOUND:
        print(
            f"OVERHEAD CHECK SKIPPED: two independent measurements "
            f"disagree by {spread:.1%} (> {STABILITY_BOUND:.0%}) — this "
            f"runner is too noisy to time on. Identity checks (traced "
            f"rows byte-identical, profile consistent) still gated."
        )
        return []
    baseline = json.loads(pr3_path.read_text())
    reference = (
        baseline["workloads"]["djia_double_bottom"]["matchers"]["ops"]
    )
    floor = reference["compiled_tests_per_s"] * (1.0 - tolerance)
    measured = max(
        current["untraced"]["compiled_tests_per_s"],
        current["untraced_repeat"]["compiled_tests_per_s"],
    )
    if measured < floor:
        return [
            f"untraced throughput {measured:.0f} tests/s fell more than "
            f"{tolerance:.0%} below the BENCH_pr3 baseline "
            f"{reference['compiled_tests_per_s']:.0f}/s — tracing-off "
            f"overhead exceeds the flight recorder's budget"
        ]
    print(
        f"overhead check passed: {measured:.0f} tests/s untraced "
        f"(baseline {reference['compiled_tests_per_s']:.0f}/s, "
        f"floor {floor:.0f}/s)"
    )
    return []


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["full", "smoke"], default="full",
        help="smoke uses fewer timing repetitions",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against BENCH_pr3.json instead of rewriting BENCH_obs.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=OVERHEAD_TOLERANCE,
        help="allowed fractional throughput loss vs BENCH_pr3 (default 0.02)",
    )
    parser.add_argument(
        "--pr3-baseline", type=Path, default=PR3_BASELINE,
        help="path to the committed BENCH_pr3.json",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="artefact path written without --check",
    )
    args = parser.parse_args(argv)

    current = run_bench(args.profile)
    identity = current["identity"]
    print(
        f"identity: {identity['matches']} matches, "
        f"{identity['rows']} rows byte-identical traced vs untraced, "
        f"profile wall {identity['profile_wall_ms']}ms "
        f"({identity['profile_spans']} spans)"
    )
    print(
        f"untraced: {current['untraced']['compiled_tests_per_s']:.0f} "
        f"tests/s (repeat "
        f"{current['untraced_repeat']['compiled_tests_per_s']:.0f}, "
        f"spread {current['measurement_spread']:.1%})"
    )
    traced = current["traced_execute"]
    print(
        f"traced execute: {traced['traced_overhead_pct']:+.1f}% vs "
        f"untraced (informational)"
    )

    if args.check:
        failures = check_against_pr3(
            current, args.pr3_baseline, args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print("obs overhead check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
