"""Shared bench-report plumbing: host provenance for every artefact.

Every ``BENCH_*.json`` this repo commits compares wall-clock numbers
across commits, which is meaningless unless each artefact records
*where* its numbers came from.  :func:`bench_metadata` is the one block
every benchmark embeds under a top-level ``"meta"`` key — check modes
never compare it, so regenerating on a different host changes the
provenance, not the gate.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Optional

from repro.obs import MetricsRegistry


def bench_metadata(registry: Optional[MetricsRegistry] = None) -> dict:
    """The provenance block shared by every committed bench artefact.

    With a ``registry``, its JSON snapshot rides along so a bench run
    also archives the engine counters (plan-cache hits, query
    histograms) it produced.
    """
    meta: dict = {
        "host": platform.node(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    if registry is not None:
        meta["metrics"] = registry.snapshot()
    return meta
