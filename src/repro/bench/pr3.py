"""Before/after benchmark for the compiled predicate fast path.

Times the interpreted evaluator (``codegen=False``, the pre-PR path)
against the compiled closures on three double-bottom workloads — the
paper's DJIA Example 10 headline, a planted-occurrence series with known
ground truth, and a fat-tailed random walk — and asserts, on every
workload, that both paths produce bit-identical matches and predicate
-test counts (timing runs are uninstrumented; separate instrumented runs
verify the counts, so the paper's metric is never skewed by the
profiler).

``python -m repro.bench.pr3``                 regenerate BENCH_pr3.json
``python -m repro.bench.pr3 --check``         compare against the committed
                                              baseline; non-zero exit on a
                                              >20% predicate-throughput
                                              regression (CI smoke gate)
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.common import bench_metadata
from repro.data.djia import djia_table
from repro.data.planted import TEMPLATE_LENGTH, plant_double_bottoms
from repro.data.random_walk import geometric_walk
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.match.base import Instrumentation, Matcher
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import AttributeDomains

#: Default artefact location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_pr3.json"

#: Matchers timed per workload: the paper's naive baseline (most
#: predicate tests, so per-test savings dominate — the headline number)
#: and the production OPS runtime.
BENCH_MATCHERS: tuple[tuple[str, type], ...] = (
    ("naive", NaiveMatcher),
    ("ops", OpsStarMatcher),
)


def _best_time(
    matcher: Matcher,
    rows: Sequence[dict],
    pattern: CompiledPattern,
    repetitions: int,
) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        matcher.find_matches(rows, pattern, None)
        best = min(best, time.perf_counter() - started)
    return best


def _bench_workload(
    rows: Sequence[dict],
    pattern: CompiledPattern,
    repetitions: int,
) -> dict:
    """Time interpreted vs compiled on one workload, verifying parity."""
    interpreted = dataclasses.replace(pattern, use_codegen=False)
    matchers: dict[str, dict] = {}
    for name, matcher_cls in BENCH_MATCHERS:
        matcher = matcher_cls()
        fast_inst, oracle_inst = Instrumentation(), Instrumentation()
        fast_matches = matcher.find_matches(rows, pattern, fast_inst)
        oracle_matches = matcher.find_matches(rows, interpreted, oracle_inst)
        if fast_matches != oracle_matches:
            raise AssertionError(f"{name}: compiled path changed the matches")
        if fast_inst.tests != oracle_inst.tests:
            raise AssertionError(
                f"{name}: predicate-test count diverged "
                f"(compiled {fast_inst.tests}, interpreted {oracle_inst.tests})"
            )
        interpreted_s = _best_time(matcher, rows, interpreted, repetitions)
        compiled_s = _best_time(matcher, rows, pattern, repetitions)
        matchers[name] = {
            "interpreted_s": round(interpreted_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(interpreted_s / compiled_s, 3),
            "predicate_tests": fast_inst.tests,
            "matches": len(fast_matches),
            "compiled_tests_per_s": round(fast_inst.tests / compiled_s, 1),
        }
    return {"rows": len(rows), "matchers": matchers}


def _double_bottom_pattern() -> CompiledPattern:
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )
    _, compiled = executor.prepare(EXAMPLE_10)
    return compiled


def _price_rows(prices: Sequence[float]) -> list[dict]:
    return [{"price": float(p), "date": i} for i, p in enumerate(prices)]


def _bench_plan_cache() -> dict:
    """Cold vs cached planning latency for the headline query."""
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )
    started = time.perf_counter()
    executor.prepare(EXAMPLE_10)
    cold_s = time.perf_counter() - started
    cached_s = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        executor.prepare(EXAMPLE_10)
        cached_s = min(cached_s, time.perf_counter() - started)
    return {
        "cold_plan_s": round(cold_s, 6),
        "cached_plan_s": round(cached_s, 6),
        "plan_speedup": round(cold_s / cached_s, 1),
        "hits": executor.plan_cache_hits,
        "misses": executor.plan_cache_misses,
    }


def run_bench(profile: str = "full") -> dict:
    repetitions = 3 if profile == "smoke" else 7
    pattern = _double_bottom_pattern()
    workloads: dict[str, dict] = {}

    djia_rows = list(Catalog([djia_table()]).table("djia"))
    workloads["djia_double_bottom"] = _bench_workload(
        djia_rows, pattern, repetitions
    )

    if profile != "smoke":
        n = 4000
        positions = list(range(25, n - TEMPLATE_LENGTH - 2, 300))
        planted, _anchors = plant_double_bottoms(n, positions, seed=11)
        workloads["planted_double_bottom"] = _bench_workload(
            _price_rows(planted), pattern, repetitions
        )
        walk = geometric_walk(4000, seed=2, shock_probability=0.05)
        workloads["random_walk"] = _bench_workload(
            _price_rows(walk), pattern, repetitions
        )

    headline = workloads["djia_double_bottom"]["matchers"]["naive"]
    return {
        "bench": "pr3-compiled-predicates",
        "profile": profile,
        "meta": bench_metadata(),
        "workloads": workloads,
        "plan_cache": _bench_plan_cache(),
        "headline": {
            "workload": "djia_double_bottom",
            "matcher": "naive",
            "speedup": headline["speedup"],
            "predicate_tests": headline["predicate_tests"],
            "matches": headline["matches"],
        },
    }


def check_against_baseline(
    current: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Regressions of the smoke gate; empty list means pass.

    Correctness (test counts, match counts) must be exact; compiled
    predicate throughput may degrade by at most ``tolerance`` relative
    to the committed baseline.
    """
    failures: list[str] = []
    for workload, recorded in current["workloads"].items():
        recorded_matchers = recorded["matchers"]
        baseline_matchers = (
            baseline["workloads"].get(workload, {}).get("matchers", {})
        )
        for name, run in recorded_matchers.items():
            reference = baseline_matchers.get(name)
            if reference is None:
                continue
            for exact_key in ("predicate_tests", "matches"):
                if run[exact_key] != reference[exact_key]:
                    failures.append(
                        f"{workload}/{name}: {exact_key} changed "
                        f"{reference[exact_key]} -> {run[exact_key]}"
                    )
            floor = reference["compiled_tests_per_s"] * (1.0 - tolerance)
            if run["compiled_tests_per_s"] < floor:
                failures.append(
                    f"{workload}/{name}: compiled predicate throughput "
                    f"{run['compiled_tests_per_s']:.0f}/s fell more than "
                    f"{tolerance:.0%} below the baseline "
                    f"{reference['compiled_tests_per_s']:.0f}/s"
                )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["full", "smoke"], default="full",
        help="smoke runs only the DJIA workload with fewer repetitions",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional throughput regression in --check mode",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="baseline JSON path (written without --check, read with it)",
    )
    args = parser.parse_args(argv)

    current = run_bench(args.profile)
    for workload, recorded in current["workloads"].items():
        for name, run in recorded["matchers"].items():
            print(
                f"{workload:24s} {name:6s} interp={run['interpreted_s']:.4f}s "
                f"compiled={run['compiled_s']:.4f}s speedup={run['speedup']:.2f}x "
                f"tests={run['predicate_tests']} matches={run['matches']}"
            )
    cache = current["plan_cache"]
    print(
        f"plan cache: cold={cache['cold_plan_s']:.4f}s "
        f"cached={cache['cached_plan_s']:.6f}s ({cache['plan_speedup']}x)"
    )

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output}; run without --check first")
            return 2
        baseline = json.loads(args.output.read_text())
        failures = check_against_baseline(current, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print("bench check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
