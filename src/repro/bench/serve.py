"""Latency and fairness benchmark for the always-on query service.

Drives a live :class:`~repro.serve.server.QueryServer` with N concurrent
client connections (each its own socket and thread) issuing the paper's
DJIA queries, and records:

- **p50/p99/mean/max request latency** under concurrency — the number
  the service exists to bound;
- **byte-identical correctness under load**: every concurrent response
  is compared against the same query's serial
  :meth:`~repro.engine.executor.Executor.execute` wire rendering — any
  deviation is a hard failure, not a statistic;
- **plan-cache effectiveness**: all clients share one executor, so a
  well-behaved server plans each distinct query text once;
- **admission fairness**: a deliberately under-provisioned tenant
  hammers the server alongside the measured fleet; its requests must be
  rejected with structured ``quota_exhausted``/``backpressure`` errors
  carrying ``retry_after`` hints while the measured tenants' results
  stay byte-identical — degradation, not collapse.

Latency numbers are hardware-dependent and only reported; the ``--check``
gate enforces the structural claims (byte-identity, zero unexpected
errors, throttled tenant rejected-but-answered, every rejection carrying
``retry_after``).

``python -m repro.bench.serve``                    regenerate BENCH_serve.json
``python -m repro.bench.serve --check --profile smoke``   CI gate
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path
from typing import Optional

from repro.bench.common import bench_metadata
from repro.data.djia import djia_table
from repro.data.quotes import quote_table
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.pattern.predicates import AttributeDomains
from repro.resilience import ResourceLimits
from repro.serve import QueryServer, ServeClient, ServerThread, TenantQuota
from repro.serve.client import ServeError
from repro.serve.protocol import encode_frame

#: Default artefact location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_serve.json"

#: The request mix: the paper's workloads over the two demo tables.
QUERIES = {
    "example_10_djia": (
        "SELECT X.NEXT.date FROM djia SEQUENCE BY date AS (X, *Y, S) "
        "WHERE Y.price < 0.98 * Y.previous.price "
        "AND S.price > S.previous.price"
    ),
    "rising_pair_djia": (
        "SELECT X.date FROM djia SEQUENCE BY date AS (X, Y) "
        "WHERE Y.price > X.price"
    ),
    "cluster_scan_quote": (
        "SELECT X.name, X.date FROM quote CLUSTER BY name SEQUENCE BY date "
        "AS (X, Y, Z) WHERE Y.price > 1.15 * X.price "
        "AND Z.price < 0.8 * Y.price"
    ),
}

#: The under-provisioned tenant's row budget: one small query drains it.
THROTTLED_ROWS_PER_SECOND = 10.0


def _catalog() -> Catalog:
    return Catalog([djia_table(), quote_table()])


def _expected_wire_rows(catalog: Catalog) -> dict[str, list]:
    """Serial reference results, rendered exactly as the server renders
    them (one JSON encode/decode round trip)."""
    executor = Executor(catalog, domains=AttributeDomains.prices())
    expected = {}
    for name, sql in QUERIES.items():
        result = executor.execute(sql)
        frame = encode_frame({"rows": [list(row) for row in result.rows]})
        expected[name] = json.loads(frame)["rows"]
    return expected


class _ClientWorker(threading.Thread):
    """One benchmark client: its own connection, its own latency log."""

    def __init__(self, host, port, tenant, plan, expected):
        super().__init__(name=f"bench-client-{tenant}", daemon=True)
        self.host = host
        self.port = port
        self.tenant = tenant
        self.plan = plan  # list of query names to issue, in order
        self.expected = expected
        self.latencies: list[float] = []
        self.mismatches: list[str] = []
        self.errors: list[str] = []

    def run(self) -> None:
        try:
            with ServeClient(
                self.host, self.port, tenant=self.tenant
            ) as client:
                for name in self.plan:
                    started = time.perf_counter()
                    try:
                        reply = client.query(QUERIES[name])
                    except ServeError as error:
                        self.errors.append(f"{name}: [{error.code}]")
                        continue
                    self.latencies.append(time.perf_counter() - started)
                    if reply.rows != self.expected[name]:
                        self.mismatches.append(
                            f"{name}: {len(reply.rows)} rows != serial "
                            f"{len(self.expected[name])}"
                        )
        except Exception as error:  # noqa: BLE001 - recorded, not raised
            self.errors.append(f"connection: {type(error).__name__}: {error}")


def _throttled_probe(host, port, attempts: int) -> dict:
    """Hammer the under-provisioned tenant; collect its rejections."""
    outcomes = {"ok": 0, "rejected": 0, "other_error": 0}
    rejection_codes: dict[str, int] = {}
    missing_retry_after = 0
    with ServeClient(host, port, tenant="throttled") as client:
        for _ in range(attempts):
            try:
                client.query(QUERIES["rising_pair_djia"])
                outcomes["ok"] += 1
            except ServeError as error:
                if error.retryable:
                    outcomes["rejected"] += 1
                    rejection_codes[error.code] = (
                        rejection_codes.get(error.code, 0) + 1
                    )
                    if error.retry_after is None:
                        missing_retry_after += 1
                else:
                    outcomes["other_error"] += 1
    return {
        "attempts": attempts,
        "outcomes": outcomes,
        "rejection_codes": rejection_codes,
        "missing_retry_after": missing_retry_after,
    }


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def run_bench(profile: str = "full") -> dict:
    clients = 16 if profile == "smoke" else 32
    requests_per_client = 3 if profile == "smoke" else 8
    catalog = _catalog()
    expected = _expected_wire_rows(catalog)

    server = QueryServer(
        catalog,
        domains=AttributeDomains.prices(),
        default_quota=TenantQuota(max_concurrent=4, max_queued=64),
        quotas={
            "throttled": TenantQuota(
                limits=ResourceLimits(),
                max_concurrent=2,
                max_queued=2,
                rows_per_second=THROTTLED_ROWS_PER_SECOND,
            )
        },
        pool_workers=4,
        max_pending=4 * (clients + 1),
    )
    names = list(QUERIES)
    with ServerThread(server) as handle:
        host, port = handle.address
        workers = []
        for index in range(clients):
            # Deterministic round-robin mix, phase-shifted per client so
            # every query name is in flight concurrently.
            plan = [
                names[(index + step) % len(names)]
                for step in range(requests_per_client)
            ]
            workers.append(
                _ClientWorker(
                    host, port, f"tenant{index % 4}", plan, expected
                )
            )
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        throttled = _throttled_probe(host, port, attempts=8)
        for worker in workers:
            worker.join(timeout=120.0)
        wall_s = time.perf_counter() - started

        with ServeClient(host, port, tenant="bench-admin") as admin:
            stats = admin.stats()

    latencies = [lat for worker in workers for lat in worker.latencies]
    mismatches = [m for worker in workers for m in worker.mismatches]
    errors = [e for worker in workers for e in worker.errors]
    completed = len(latencies)
    return {
        "bench": "serve-latency",
        "profile": profile,
        "meta": bench_metadata(),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed_requests": completed,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(completed / wall_s, 2) if wall_s else None,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000.0, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000.0, 3),
            "mean": round(statistics.fmean(latencies) * 1000.0, 3),
            "max": round(max(latencies) * 1000.0, 3),
        }
        if latencies
        else None,
        "byte_identical": not mismatches,
        "mismatches": mismatches,
        "unexpected_errors": errors,
        "plan_cache": stats["plan_cache"],
        "distinct_queries": len(QUERIES),
        "throttled_tenant": throttled,
        "expected_rows": {
            name: len(rows) for name, rows in expected.items()
        },
    }


def check_run(current: dict) -> list[str]:
    """Structural assertions of the CI gate; empty list means pass."""
    failures: list[str] = []
    if not current["byte_identical"]:
        failures.append(
            "concurrent responses deviated from serial execution: "
            + "; ".join(current["mismatches"][:5])
        )
    if current["unexpected_errors"]:
        failures.append(
            "measured tenants saw errors: "
            + "; ".join(current["unexpected_errors"][:5])
        )
    wanted = current["clients"] * current["requests_per_client"]
    if current["completed_requests"] != wanted:
        failures.append(
            f"only {current['completed_requests']}/{wanted} requests completed"
        )
    throttled = current["throttled_tenant"]
    if throttled["outcomes"]["rejected"] < 1:
        failures.append(
            "the under-provisioned tenant was never rejected — admission "
            "control is not engaging"
        )
    if throttled["missing_retry_after"]:
        failures.append(
            f"{throttled['missing_retry_after']} rejections arrived "
            f"without a retry_after hint"
        )
    if throttled["outcomes"]["other_error"]:
        failures.append(
            f"throttled tenant saw {throttled['outcomes']['other_error']} "
            f"non-structured errors"
        )
    # Shared plan cache: each distinct query text is planned at most a
    # handful of times (first arrivals may race the cache fill), never
    # once per request.
    misses = current["plan_cache"]["misses"]
    ceiling = current["distinct_queries"] * 4
    if misses > ceiling:
        failures.append(
            f"plan cache missed {misses} times for "
            f"{current['distinct_queries']} distinct queries — the cache "
            f"is not shared across connections"
        )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["full", "smoke"], default="full",
        help="smoke shrinks the fleet to 16 clients x 3 requests for CI",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="enforce the structural assertions (byte-identity, "
        "structured rejections, shared plan cache) without rewriting "
        "the baseline",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="artefact JSON path (written without --check)",
    )
    args = parser.parse_args(argv)

    current = run_bench(args.profile)
    latency = current["latency_ms"] or {}
    print(
        f"{current['clients']} clients x "
        f"{current['requests_per_client']} requests: "
        f"p50={latency.get('p50')}ms p99={latency.get('p99')}ms "
        f"throughput={current['throughput_rps']}rps "
        f"byte_identical={current['byte_identical']}"
    )
    throttled = current["throttled_tenant"]["outcomes"]
    print(
        f"throttled tenant: {throttled['ok']} ok, "
        f"{throttled['rejected']} structured rejections, "
        f"{throttled['other_error']} other errors"
    )
    print(f"plan cache: {current['plan_cache']}")

    failures = check_run(current)
    if failures:
        for failure in failures:
            print(f"FAILURE: {failure}")
        return 1
    if args.check:
        print("serve bench check passed (latency above is informational)")
        return 0
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
