"""Columnar truth-array path vs the row path: the vectorization gate.

Times the row evaluator (compiled closures, the pre-columnar path)
against the columnar path — truth-array materialization *included* in
every timed columnar run, so the number is end-to-end honest — on the
paper's DJIA Example 10 double-bottom and, in the full profile, the
planted and random-walk series.  Before any timing, instrumented runs
assert both paths produce bit-identical matches and identical
predicate-test counts; uninstrumented timing runs then take the fast
scans (candidate-start bitsets, C-level run advancement) that the
instrumented contract deliberately disables.

``python -m repro.bench.columnar``            regenerate BENCH_columnar.json
``python -m repro.bench.columnar --check``    compare against the committed
                                              baseline; non-zero exit when
                                              the DJIA speedup falls below
                                              the floor (CI smoke gate)
``--require-vector``                          fail instead of noting when
                                              the NumPy backend is absent
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.bench.common import bench_metadata
from repro.data.djia import djia_table
from repro.data.planted import TEMPLATE_LENGTH, plant_double_bottoms
from repro.data.random_walk import geometric_walk
from repro.data.workloads import EXAMPLE_10
from repro.engine.catalog import Catalog
from repro.engine.columnar import materialize_kernels, vector_backend_active
from repro.engine.executor import Executor
from repro.match.base import Instrumentation, Matcher
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import CompiledPattern
from repro.pattern.predicates import AttributeDomains

#: Default artefact location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_columnar.json"

#: The compiled-predicate baseline whose match counts this bench must
#: reproduce exactly (same workload, same query, different evaluator).
PR3_BASELINE = Path(__file__).resolve().parents[3] / "BENCH_pr3.json"

#: The wall-clock floor the DJIA headline must clear (ROADMAP's target).
SPEEDUP_FLOOR = 5.0

BENCH_MATCHERS: tuple[tuple[str, type], ...] = (
    ("naive", NaiveMatcher),
    ("ops", OpsStarMatcher),
)


def _best_row_time(
    matcher: Matcher,
    rows: Sequence[dict],
    pattern: CompiledPattern,
    repetitions: int,
) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        matcher.find_matches(rows, pattern, None)
        best = min(best, time.perf_counter() - started)
    return best


def _best_columnar_time(
    matcher: Matcher,
    rows: Sequence[dict],
    pattern: CompiledPattern,
    repetitions: int,
) -> float:
    """Best columnar wall-clock, truth materialization included."""
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        kernels = materialize_kernels(pattern, rows)
        matcher.find_matches(rows, pattern, None, kernels=kernels)
        best = min(best, time.perf_counter() - started)
    return best


def _bench_workload(
    rows: Sequence[dict],
    pattern: CompiledPattern,
    repetitions: int,
) -> dict:
    """Time row vs columnar on one workload, verifying parity first."""
    kernels = materialize_kernels(pattern, rows)
    if kernels is None:
        raise AssertionError("benchmark pattern failed to lower any element")
    matchers: dict[str, dict] = {}
    for name, matcher_cls in BENCH_MATCHERS:
        matcher = matcher_cls()
        # Correctness before speed: instrumented runs must agree on the
        # matches AND the predicate-test counts (the columnar path under
        # instrumentation steps exactly like the row path)...
        row_inst, col_inst = Instrumentation(), Instrumentation()
        row_matches = matcher.find_matches(rows, pattern, row_inst)
        col_matches = matcher.find_matches(rows, pattern, col_inst, kernels=kernels)
        if col_matches != row_matches:
            raise AssertionError(f"{name}: columnar path changed the matches")
        if col_inst.tests != row_inst.tests:
            raise AssertionError(
                f"{name}: instrumented predicate-test count diverged "
                f"(columnar {col_inst.tests}, row {row_inst.tests})"
            )
        # ...and the uninstrumented fast scans must return those same
        # matches (candidate-bitset skipping, C-level run advancement).
        if matcher.find_matches(rows, pattern, None, kernels=kernels) != row_matches:
            raise AssertionError(f"{name}: uninstrumented fast path diverged")
        row_s = _best_row_time(matcher, rows, pattern, repetitions)
        columnar_s = _best_columnar_time(matcher, rows, pattern, repetitions)
        matchers[name] = {
            "row_s": round(row_s, 6),
            "columnar_s": round(columnar_s, 6),
            "speedup": round(row_s / columnar_s, 3),
            "predicate_tests": row_inst.tests,
            "matches": len(row_matches),
        }
    started = time.perf_counter()
    materialize_kernels(pattern, rows)
    materialize_s = time.perf_counter() - started
    return {
        "rows": len(rows),
        "kernel_backend": kernels.backend,
        "materialize_s": round(materialize_s, 6),
        "matchers": matchers,
    }


def _double_bottom_pattern() -> CompiledPattern:
    executor = Executor(
        Catalog([djia_table()]), domains=AttributeDomains.prices()
    )
    _, compiled = executor.prepare(EXAMPLE_10)
    return compiled


def _price_rows(prices: Sequence[float]) -> list[dict]:
    return [{"price": float(p), "date": i} for i, p in enumerate(prices)]


def run_bench(profile: str = "full") -> dict:
    repetitions = 3 if profile == "smoke" else 7
    pattern = _double_bottom_pattern()
    workloads: dict[str, dict] = {}

    djia_rows = list(Catalog([djia_table()]).table("djia"))
    workloads["djia_double_bottom"] = _bench_workload(
        djia_rows, pattern, repetitions
    )

    if profile != "smoke":
        n = 4000
        positions = list(range(25, n - TEMPLATE_LENGTH - 2, 300))
        planted, _anchors = plant_double_bottoms(n, positions, seed=11)
        workloads["planted_double_bottom"] = _bench_workload(
            _price_rows(planted), pattern, repetitions
        )
        walk = geometric_walk(4000, seed=2, shock_probability=0.05)
        workloads["random_walk"] = _bench_workload(
            _price_rows(walk), pattern, repetitions
        )

    headline = workloads["djia_double_bottom"]["matchers"]["naive"]
    return {
        "bench": "columnar-vectorized-kernels",
        "profile": profile,
        "vector_backend": vector_backend_active(),
        "meta": bench_metadata(),
        "workloads": workloads,
        "headline": {
            "workload": "djia_double_bottom",
            "matcher": "naive",
            "speedup": headline["speedup"],
            "matches": headline["matches"],
        },
    }


def check_run(
    current: dict,
    baseline: Optional[dict],
    floor: float,
    pr3: Optional[dict],
) -> list[str]:
    """Gate failures for the CI smoke check; empty list means pass.

    The gate is deliberately ratio-based (machine-independent): the
    DJIA headline matcher must clear the wall-clock ``floor`` (the
    other matchers' speedups are recorded but not floored — short smoke
    runs on loaded runners are too noisy for a hard ratio on every
    row), match counts must equal the committed baseline exactly, and
    the DJIA match count must equal what BENCH_pr3 recorded for the
    same query — the two artefacts describe the same ground truth.
    """
    failures: list[str] = []
    djia = current["workloads"]["djia_double_bottom"]["matchers"]
    headline = current["headline"]["matcher"]
    if djia[headline]["speedup"] < floor:
        failures.append(
            f"djia_double_bottom/{headline}: columnar speedup "
            f"{djia[headline]['speedup']:.2f}x is below the {floor:.1f}x floor"
        )
    if baseline is not None:
        for workload, recorded in current["workloads"].items():
            reference = baseline["workloads"].get(workload, {}).get("matchers", {})
            for name, run in recorded["matchers"].items():
                expected = reference.get(name)
                if expected is None:
                    continue
                for exact_key in ("matches", "predicate_tests"):
                    if run[exact_key] != expected[exact_key]:
                        failures.append(
                            f"{workload}/{name}: {exact_key} changed "
                            f"{expected[exact_key]} -> {run[exact_key]}"
                        )
    if pr3 is not None:
        for name, run in djia.items():
            pr3_run = (
                pr3["workloads"]
                .get("djia_double_bottom", {})
                .get("matchers", {})
                .get(name)
            )
            if pr3_run is not None and run["matches"] != pr3_run["matches"]:
                failures.append(
                    f"djia_double_bottom/{name}: {run['matches']} matches, "
                    f"but BENCH_pr3 recorded {pr3_run['matches']} for the "
                    "same query"
                )
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=["full", "smoke"], default="full",
        help="smoke runs only the DJIA workload with fewer repetitions",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--floor", type=float, default=SPEEDUP_FLOOR,
        help="minimum DJIA wall-clock speedup in --check mode",
    )
    parser.add_argument(
        "--require-vector", action="store_true",
        help="fail when the NumPy backend is unavailable (CI runners "
        "install it; without this flag a missing backend is only noted)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="baseline JSON path (written without --check, read with it)",
    )
    args = parser.parse_args(argv)

    if not vector_backend_active():
        message = (
            "NumPy vector backend unavailable; pure-Python kernels only "
            "— the wall-clock floor is calibrated for the vector backend"
        )
        if args.require_vector:
            print(f"error: {message}")
            return 2
        print(f"note: {message}")

    current = run_bench(args.profile)
    for workload, recorded in current["workloads"].items():
        for name, run in recorded["matchers"].items():
            print(
                f"{workload:24s} {name:6s} row={run['row_s']:.4f}s "
                f"columnar={run['columnar_s']:.4f}s "
                f"speedup={run['speedup']:.2f}x matches={run['matches']}"
            )

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output}; run without --check first")
            return 2
        baseline = json.loads(args.output.read_text())
        pr3 = json.loads(PR3_BASELINE.read_text()) if PR3_BASELINE.exists() else None
        failures = check_run(current, baseline, args.floor, pr3)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print("bench check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
