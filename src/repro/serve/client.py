"""A thin blocking client for the query service, with failover.

:class:`ServeClient` speaks the newline-delimited JSON protocol over a
plain socket — no asyncio, so it drops into scripts, tests, the bench
load generator, and the CLI without ceremony::

    with ServeClient("127.0.0.1", 7433, tenant="acme") as client:
        reply = client.query("SELECT ... FROM quote ...")
        for row in reply.rows:
            ...

Failures raise :class:`ServeError` carrying the server's stable error
``code`` and optional ``retry_after`` hint; callers that want to retry
on admission rejections catch it and check :attr:`ServeError.retryable`.

Failover (on by default, disable with ``failover=None``): when the
connection drops the client reconnects with full-jitter exponential
backoff and retries.  Queries carry an idempotent ``request_key`` so a
retry of a request the server already executed is *deduplicated*
server-side — replayed from the request ledger, not re-run.  A
``subscribe`` iterator transparently re-subscribes from the last acked
sequence, preserving exactly-once delivery across server restarts.
Only when retries are exhausted does :class:`ConnectionLostError`
escape, carrying the last acked sequence for manual resume — never a
raw socket error mid-stream.  See docs/serving.md ("Client failover").
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame


class ServeError(Exception):
    """A structured failure response from the server."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether retrying after ``retry_after`` seconds can succeed."""
        return self.code in {
            "backpressure",
            "quota_exhausted",
            "subscription_busy",
            "unavailable",
        }


class ConnectionLostError(ServeError, ConnectionError):
    """The connection died and failover could not re-establish it.

    ``last_seq`` is the highest subscription sequence acked before the
    loss (-1 outside a subscription, or before the first row): pass it
    as ``after_seq`` to a fresh ``subscribe`` call to resume manually
    with exactly-once delivery intact.  Derives from
    :class:`ConnectionError` so pre-failover callers that guarded with
    ``except (ConnectionError, OSError)`` keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        last_seq: int = -1,
        attempts: int = 0,
    ):
        ServeError.__init__(self, "connection_lost", message)
        self.last_seq = last_seq
        self.attempts = attempts


@dataclass(frozen=True)
class FailoverPolicy:
    """Reconnect/retry behavior for :class:`ServeClient`.

    Delays follow full-jitter exponential backoff: before reconnect
    attempt ``n`` the client sleeps a uniform sample from
    ``[base*(1-jitter), base)`` where ``base`` doubles from ``backoff``
    up to ``max_backoff``.  Full jitter (the default) decorrelates the
    reconnect storm after a server restart — without it every client of
    a restarted server retries on the same schedule and arrives in the
    same instant.
    """

    max_retries: int = 4
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(
        self, attempt: int, rng: Optional[Callable[[], float]] = None
    ) -> float:
        """Sleep before reconnect attempt ``attempt`` (1-based)."""
        base = min(
            self.backoff * self.backoff_factor ** max(attempt - 1, 0),
            self.max_backoff,
        )
        if self.jitter <= 0.0:
            return base
        sample = (rng if rng is not None else random.random)()
        return base * (1.0 - self.jitter) + base * self.jitter * sample


#: Sentinel distinguishing "use the default policy" from "no failover".
_DEFAULT_FAILOVER = FailoverPolicy()


@dataclass
class QueryReply:
    """A successful query response, unpacked."""

    columns: list[str]
    rows: list[list[Any]]
    matches: int
    limit_hit: bool
    limits_hit: list[str]
    elapsed_ms: float
    diagnostics: dict = field(default_factory=dict)
    deduplicated: bool = False


@dataclass(frozen=True)
class SubscriptionRow:
    """One delivered match: remember ``seq`` to resume exactly-once."""

    seq: int
    values: list[Any]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`.

    ``failover`` controls reconnect-and-retry on dropped connections
    (``None`` disables it; lost connections then raise immediately —
    still as :class:`ConnectionLostError` inside a subscription).
    ``sleep`` and ``rng`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: Optional[float] = 30.0,
        failover: Optional[FailoverPolicy] = _DEFAULT_FAILOVER,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[Callable[[], float]] = None,
    ):
        self.tenant = tenant
        self._host = host
        self._port = port
        self._timeout = timeout
        self._failover = failover
        self._sleep = sleep
        self._rng = rng
        self._next_id = 0
        # Stable per-client prefix for idempotent request keys: retries
        # of one logical request reuse its key; distinct requests never
        # collide, even across clients.
        self._client_key = uuid.uuid4().hex[:12]
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # -- plumbing -------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rb")

    def _drop_connection(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reconnect_with_backoff(self, cause: Exception, *, last_seq: int = -1) -> None:
        """Re-establish the connection or raise :class:`ConnectionLostError`.

        Counts attempts from scratch each time it is called — the retry
        budget guards one connection loss, not the client's lifetime.
        """
        policy = self._failover
        if policy is None:
            raise ConnectionLostError(
                f"connection to {self._host}:{self._port} lost and failover "
                f"is disabled ({cause})",
                last_seq=last_seq,
            ) from cause
        attempt = 0
        while True:
            attempt += 1
            if attempt > policy.max_retries:
                raise ConnectionLostError(
                    f"connection to {self._host}:{self._port} lost; "
                    f"{policy.max_retries} reconnect attempts failed "
                    f"({cause})",
                    last_seq=last_seq,
                    attempts=policy.max_retries,
                ) from cause
            self._sleep(policy.delay(attempt, rng=self._rng))
            self._drop_connection()
            try:
                self._connect()
            except OSError as error:
                cause = error
                continue
            self.reconnects += 1
            return

    def _send(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def _recv(self) -> dict:
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and return its (raw) response payload.

        Raises :class:`ServeError` for ``"ok": false`` responses.  With
        failover enabled, a dropped connection is retried transparently;
        ``query`` requests carry an idempotent ``request_key``, so the
        server deduplicates a retry it already executed.
        """
        self._next_id += 1
        rid = self._next_id
        payload = {"id": rid, "op": op, "tenant": self.tenant, **fields}
        if op == "query" and "request_key" not in payload:
            payload["request_key"] = f"{self._client_key}-{rid}"
        while True:
            try:
                if self._sock is None:
                    self._connect()
                self._send(payload)
                reply = self._recv()
            except ConnectionError as error:
                if self._failover is None:
                    self._drop_connection()
                    raise
                self._reconnect_with_backoff(error)
                continue
            return self._check(reply)

    @staticmethod
    def _check(reply: dict) -> dict:
        if reply.get("ok"):
            return reply
        error = reply.get("error") or {}
        raise ServeError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            error.get("retry_after"),
        )

    # -- operations -----------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        """The server's metrics registry in Prometheus text form."""
        return self.request("metrics")["metrics"]

    def shutdown(self) -> dict:
        """Ask the server to drain (needs ``allow_remote_shutdown``)."""
        return self.request("shutdown")

    def query(
        self,
        sql: str,
        *,
        timeout: Optional[float] = None,
        max_matches: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> QueryReply:
        fields: dict[str, Any] = {"sql": sql}
        if timeout is not None:
            fields["timeout"] = timeout
        if max_matches is not None:
            fields["max_matches"] = max_matches
        if workers is not None:
            fields["workers"] = workers
        reply = self.request("query", **fields)
        return QueryReply(
            columns=reply["columns"],
            rows=reply["rows"],
            matches=reply["matches"],
            limit_hit=reply["limit_hit"],
            limits_hit=reply["limits_hit"],
            elapsed_ms=reply["elapsed_ms"],
            diagnostics=reply.get("diagnostics", {}),
            deduplicated=bool(reply.get("deduplicated", False)),
        )

    def subscribe(
        self,
        sql: str,
        subscription: str,
        *,
        after_seq: int = -1,
        on_begin: Optional[Callable[[dict], None]] = None,
    ) -> Iterator[SubscriptionRow]:
        """Stream matches; yields :class:`SubscriptionRow` until the
        server sends ``end`` (StopIteration) or ``error`` (ServeError).

        ``after_seq`` is the exactly-once high-water mark: pass the
        highest ``seq`` previously received and the server suppresses
        everything at or below it.  The final ``end`` frame is stored on
        :attr:`last_end` after the iterator is exhausted.

        With failover enabled, a connection lost mid-stream triggers a
        reconnect and a fresh ``subscribe`` with ``after_seq`` set to
        the last sequence this iterator yielded — the server's
        checkpointed high-water mark plus that filter preserve
        exactly-once delivery across restarts.  When retries run out,
        :class:`ConnectionLostError` carries the last acked seq.
        """
        begin = self._begin_subscription(sql, subscription, after_seq)
        if on_begin is not None:
            on_begin(begin)
        self.last_end: Optional[dict] = None
        return self._subscription_rows(sql, subscription, after_seq)

    def _begin_subscription(
        self, sql: str, subscription: str, after_seq: int
    ) -> dict:
        """Send the subscribe frame and return the checked begin frame."""
        self._next_id += 1
        self._send(
            {
                "id": self._next_id,
                "op": "subscribe",
                "tenant": self.tenant,
                "sql": sql,
                "subscription": subscription,
                "after_seq": after_seq,
            }
        )
        return self._check(self._recv())

    def _resume_subscription(
        self, cause: Exception, sql: str, subscription: str, last_seq: int
    ) -> None:
        """Reconnect and re-subscribe after ``last_seq``, or raise.

        ``subscription_busy`` from the server is retried too: after a
        mid-stream disconnect the *old* producer task may briefly still
        hold the subscription until the server notices the dead socket.
        """
        policy = self._failover
        if policy is None:
            raise ConnectionLostError(
                f"subscription {subscription!r} lost its connection and "
                f"failover is disabled ({cause}); resume with "
                f"after_seq={last_seq}",
                last_seq=last_seq,
            ) from cause
        attempt = 0
        while True:
            attempt += 1
            if attempt > policy.max_retries:
                raise ConnectionLostError(
                    f"subscription {subscription!r} lost its connection; "
                    f"{policy.max_retries} resume attempts failed ({cause}); "
                    f"resume with after_seq={last_seq}",
                    last_seq=last_seq,
                    attempts=policy.max_retries,
                ) from cause
            self._sleep(policy.delay(attempt, rng=self._rng))
            self._drop_connection()
            try:
                self._connect()
                self._begin_subscription(sql, subscription, last_seq)
            except (OSError, ConnectionError) as error:
                cause = error
                continue
            except ServeError as error:
                if error.retryable:
                    cause = error
                    continue
                raise
            self.reconnects += 1
            return

    def _subscription_rows(
        self, sql: str, subscription: str, after_seq: int
    ) -> Iterator[SubscriptionRow]:
        last_seq = after_seq
        while True:
            try:
                frame = self._recv()
            except ConnectionError as error:
                self._resume_subscription(error, sql, subscription, last_seq)
                continue
            event = frame.get("event")
            if event == "row":
                last_seq = frame["seq"]
                yield SubscriptionRow(frame["seq"], frame["values"])
            elif event == "end":
                self.last_end = frame
                return
            else:  # error frame
                try:
                    self._check(frame)
                except ServeError as error:
                    # "unavailable" means the server is going away (drain
                    # or restart) mid-stream: resume like a dropped
                    # connection instead of surfacing a terminal error.
                    if error.code == "unavailable":
                        if self._failover is not None:
                            self._resume_subscription(
                                error, sql, subscription, last_seq
                            )
                            continue
                        raise ConnectionLostError(
                            f"subscription {subscription!r} interrupted by "
                            f"the server and failover is disabled "
                            f"({error.message}); resume with "
                            f"after_seq={last_seq}",
                            last_seq=last_seq,
                        ) from error
                    raise
                return

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                if self._sock is not None:
                    self._sock.close()
        elif self._sock is not None:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
