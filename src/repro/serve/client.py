"""A thin blocking client for the query service.

:class:`ServeClient` speaks the newline-delimited JSON protocol over a
plain socket — no asyncio, so it drops into scripts, tests, the bench
load generator, and the CLI without ceremony::

    with ServeClient("127.0.0.1", 7433, tenant="acme") as client:
        reply = client.query("SELECT ... FROM quote ...")
        for row in reply.rows:
            ...

Failures raise :class:`ServeError` carrying the server's stable error
``code`` and optional ``retry_after`` hint; callers that want to retry
on admission rejections catch it and check :attr:`ServeError.retryable`.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame


class ServeError(Exception):
    """A structured failure response from the server."""

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether retrying after ``retry_after`` seconds can succeed."""
        return self.code in {
            "backpressure",
            "quota_exhausted",
            "subscription_busy",
        }


@dataclass
class QueryReply:
    """A successful query response, unpacked."""

    columns: list[str]
    rows: list[list[Any]]
    matches: int
    limit_hit: bool
    limits_hit: list[str]
    elapsed_ms: float
    diagnostics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SubscriptionRow:
    """One delivered match: remember ``seq`` to resume exactly-once."""

    seq: int
    values: list[Any]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: Optional[float] = 30.0,
    ):
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    def _send(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def _recv(self) -> dict:
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and return its (raw) response payload.

        Raises :class:`ServeError` for ``"ok": false`` responses.
        """
        self._next_id += 1
        rid = self._next_id
        self._send({"id": rid, "op": op, "tenant": self.tenant, **fields})
        reply = self._recv()
        return self._check(reply)

    @staticmethod
    def _check(reply: dict) -> dict:
        if reply.get("ok"):
            return reply
        error = reply.get("error") or {}
        raise ServeError(
            error.get("code", "internal"),
            error.get("message", "unknown server error"),
            error.get("retry_after"),
        )

    # -- operations -----------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def metrics(self) -> str:
        """The server's metrics registry in Prometheus text form."""
        return self.request("metrics")["metrics"]

    def shutdown(self) -> dict:
        """Ask the server to drain (needs ``allow_remote_shutdown``)."""
        return self.request("shutdown")

    def query(
        self,
        sql: str,
        *,
        timeout: Optional[float] = None,
        max_matches: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> QueryReply:
        fields: dict[str, Any] = {"sql": sql}
        if timeout is not None:
            fields["timeout"] = timeout
        if max_matches is not None:
            fields["max_matches"] = max_matches
        if workers is not None:
            fields["workers"] = workers
        reply = self.request("query", **fields)
        return QueryReply(
            columns=reply["columns"],
            rows=reply["rows"],
            matches=reply["matches"],
            limit_hit=reply["limit_hit"],
            limits_hit=reply["limits_hit"],
            elapsed_ms=reply["elapsed_ms"],
            diagnostics=reply.get("diagnostics", {}),
        )

    def subscribe(
        self,
        sql: str,
        subscription: str,
        *,
        after_seq: int = -1,
        on_begin: Optional[Callable[[dict], None]] = None,
    ) -> Iterator[SubscriptionRow]:
        """Stream matches; yields :class:`SubscriptionRow` until the
        server sends ``end`` (StopIteration) or ``error`` (ServeError).

        ``after_seq`` is the exactly-once high-water mark: pass the
        highest ``seq`` previously received and the server suppresses
        everything at or below it.  The final ``end`` frame is stored on
        :attr:`last_end` after the iterator is exhausted.
        """
        self._next_id += 1
        rid = self._next_id
        self._send(
            {
                "id": rid,
                "op": "subscribe",
                "tenant": self.tenant,
                "sql": sql,
                "subscription": subscription,
                "after_seq": after_seq,
            }
        )
        begin = self._check(self._recv())
        if on_begin is not None:
            on_begin(begin)
        self.last_end: Optional[dict] = None
        return self._subscription_rows(rid)

    def _subscription_rows(self, rid: int) -> Iterator[SubscriptionRow]:
        while True:
            frame = self._recv()
            event = frame.get("event")
            if event == "row":
                yield SubscriptionRow(frame["seq"], frame["values"])
            elif event == "end":
                self.last_end = frame
                return
            else:  # error frame
                self._check(frame)
                return

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
