"""Per-tenant quotas and admission control for the query service.

A server shared by many tenants must decide, *before* running anything,
whether a request is affordable — the selectivity-aware admission
thinking of Aytimur & Cakmak (PAPERS.md) applied at the service
boundary.  Three independent controls compose here:

1. **Per-query resource limits** — each tenant carries a
   :class:`~repro.resilience.ResourceLimits` applied to every query it
   runs (deadline, match cap, row cap).  Request-level limits can only
   *tighten* these, never widen them.
2. **Concurrency + queue bounds** — at most ``max_concurrent`` queries
   run at once per tenant; up to ``max_queued`` more wait in a bounded
   queue.  Beyond that the tenant is rejected with ``backpressure`` and
   a ``retry_after`` hint, so a flooding client degrades itself, not
   its neighbors.
3. **A row-budget token bucket** — ``rows_per_second`` refills an
   allowance capped at ``burst_rows``; each finished query charges the
   rows it actually scanned (post-paid, so the charge is exact).  A
   tenant whose allowance is spent is rejected with ``quota_exhausted``
   and ``retry_after`` equal to the time the bucket needs to refill
   above zero.

The controller is pure bookkeeping — no asyncio, no threads of its own,
every method safe to call from any thread — so it is unit-testable with
a fake clock and reusable outside the server (the bench harness drives
it directly).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from repro.resilience import ResourceLimits

#: retry_after hint when the bound is concurrency, not budget: there is
#: no refill schedule to compute from, so suggest a short backoff.
BACKPRESSURE_RETRY_AFTER = 0.1


@dataclass(frozen=True)
class TenantQuota:
    """The declarative per-tenant contract.  ``None`` = unlimited.

    - ``limits``: resource limits applied to every query the tenant
      runs (request-supplied limits only tighten them);
    - ``max_concurrent``: queries running at once;
    - ``max_queued``: queries waiting for a slot beyond that;
    - ``rows_per_second``: token-bucket refill rate for the scanned-row
      budget (``None`` disables the budget);
    - ``burst_rows``: bucket capacity (defaults to 4 seconds of refill).
    """

    limits: ResourceLimits = field(default_factory=ResourceLimits)
    max_concurrent: int = 4
    max_queued: int = 16
    rows_per_second: Optional[float] = None
    burst_rows: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be positive, got {self.max_concurrent}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be non-negative, got {self.max_queued}"
            )
        if self.rows_per_second is not None and self.rows_per_second <= 0:
            raise ValueError(
                f"rows_per_second must be positive, got {self.rows_per_second}"
            )
        if self.burst_rows is not None and self.burst_rows <= 0:
            raise ValueError(
                f"burst_rows must be positive, got {self.burst_rows}"
            )
        if self.burst_rows is None and self.rows_per_second is not None:
            object.__setattr__(self, "burst_rows", self.rows_per_second * 4.0)

    def merge_limits(
        self,
        *,
        timeout: Optional[float] = None,
        max_matches: Optional[int] = None,
    ) -> ResourceLimits:
        """Tighten the tenant limits with request-level bounds.

        Each bound takes the minimum of the tenant's and the request's
        values — a request can never buy more than its tenant's quota.
        """

        def tightest(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        base = self.limits
        return ResourceLimits(
            max_matches=tightest(base.max_matches, max_matches),
            max_rows_scanned=base.max_rows_scanned,
            wall_clock_deadline=tightest(base.wall_clock_deadline, timeout),
            max_stream_buffer=base.max_stream_buffer,
        )


@dataclass(frozen=True)
class Rejection:
    """An admission refusal: stable code, human message, retry hint."""

    code: str
    message: str
    retry_after: Optional[float] = None


class _TenantState:
    """Mutable runtime record for one tenant (guarded by the controller
    lock)."""

    __slots__ = (
        "quota",
        "allowance",
        "last_refill",
        "running",
        "queued",
        "queries",
        "rows_charged",
        "matches",
        "admitted",
        "rejections",
    )

    def __init__(self, quota: TenantQuota, now: float):
        self.quota = quota
        self.allowance: Optional[float] = quota.burst_rows
        self.last_refill = now
        self.running = 0
        self.queued = 0
        self.queries = 0
        self.rows_charged = 0
        self.matches = 0
        self.admitted = 0
        self.rejections: dict[str, int] = {}

    def refill(self, now: float) -> None:
        rate = self.quota.rows_per_second
        if rate is None or self.allowance is None:
            return
        elapsed = max(now - self.last_refill, 0.0)
        self.last_refill = now
        self.allowance = min(
            self.allowance + elapsed * rate, self.quota.burst_rows
        )


class RequestLedger:
    """Bounded per-tenant LRU of completed idempotent request responses.

    The server-side half of client failover: a client that loses its
    connection after the server executed a query — but before the
    response arrived — retries the same logical request under the same
    ``request_key``.  The ledger replays the stored response instead of
    re-executing, so a retried query is charged and run exactly once.

    Keys are namespaced per tenant (one tenant can never replay
    another's responses) and evicted LRU beyond ``capacity`` entries per
    tenant, bounding memory under sustained traffic; an evicted entry
    simply means a sufficiently-stale retry re-executes, which is the
    at-least-once floor failover degrades to.  Thread-safe.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self._lock = threading.Lock()
        self._per_tenant: dict[str, OrderedDict[str, dict]] = {}

    def get(self, tenant: str, key: str) -> Optional[dict]:
        """The stored response for ``key``, or None (counts a hit)."""
        with self._lock:
            cache = self._per_tenant.get(tenant)
            if cache is None:
                return None
            response = cache.get(key)
            if response is None:
                return None
            cache.move_to_end(key)
            self.hits += 1
            return response

    def put(self, tenant: str, key: str, response: dict) -> None:
        """Record the completed response for ``key`` (LRU-evicting)."""
        with self._lock:
            cache = self._per_tenant.setdefault(tenant, OrderedDict())
            if key in cache:
                cache.move_to_end(key)
            cache[key] = response
            while len(cache) > self.capacity:
                cache.popitem(last=False)

    def snapshot(self) -> dict:
        """JSON-ready usage view for the ``stats`` op."""
        with self._lock:
            return {
                "hits": self.hits,
                "entries": sum(len(c) for c in self._per_tenant.values()),
                "capacity_per_tenant": self.capacity,
            }


class AdmissionController:
    """Thread-safe admission bookkeeping for all tenants of one server.

    The protocol is reserve → (promote if queued) → finish::

        decision = controller.reserve(tenant)
        if isinstance(decision, Rejection): reply with the rejection
        elif decision == "queue": wait for a slot, then promote(tenant)
        ... run the query ...
        controller.finish(tenant, rows_scanned=..., matches=...)

    ``reserve`` returns ``"run"`` (a concurrency slot was taken),
    ``"queue"`` (the caller owns a queue position and must either
    :meth:`promote` or :meth:`abandon` it), or a :class:`Rejection`.
    Unknown tenants receive ``default_quota`` — multi-tenancy here is
    quota isolation, not authentication.
    """

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self._quotas = dict(quotas or {})
        self._clock = clock
        self._lock = threading.RLock()
        self._tenants: dict[str, _TenantState] = {}
        self._draining = False

    # ------------------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(self.quota_for(tenant), self._clock())
            self._tenants[tenant] = state
        return state

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Refuse all new admissions from now on (idempotent)."""
        with self._lock:
            self._draining = True

    # ------------------------------------------------------------------

    def reserve(self, tenant: str) -> Union[str, Rejection]:
        """Admit, queue, or reject one request for ``tenant``."""
        with self._lock:
            state = self._state(tenant)
            if self._draining:
                return self._reject(
                    state,
                    Rejection(
                        "draining",
                        "server is draining; no new requests are accepted",
                    ),
                )
            now = self._clock()
            state.refill(now)
            if state.allowance is not None and state.allowance <= 0:
                rate = state.quota.rows_per_second
                retry_after = round((1.0 - state.allowance) / rate, 6)
                return self._reject(
                    state,
                    Rejection(
                        "quota_exhausted",
                        f"tenant {tenant!r} has exhausted its row budget "
                        f"(refills at {rate:g} rows/s)",
                        retry_after=retry_after,
                    ),
                )
            if state.running < state.quota.max_concurrent:
                state.running += 1
                state.admitted += 1
                return "run"
            if state.queued < state.quota.max_queued:
                state.queued += 1
                return "queue"
            return self._reject(
                state,
                Rejection(
                    "backpressure",
                    f"tenant {tenant!r} has {state.running} running and "
                    f"{state.queued} queued requests (limits "
                    f"{state.quota.max_concurrent}/{state.quota.max_queued})",
                    retry_after=BACKPRESSURE_RETRY_AFTER,
                ),
            )

    def _reject(self, state: _TenantState, rejection: Rejection) -> Rejection:
        state.rejections[rejection.code] = (
            state.rejections.get(rejection.code, 0) + 1
        )
        return rejection

    def note_rejection(self, tenant: str, code: str) -> None:
        """Count a structured refusal decided *outside* :meth:`reserve`.

        The server refuses some requests before (or instead of) an
        admission reservation — server-wide backpressure, queue-wait
        timeouts, pre-expired deadlines, busy subscriptions.  Counting
        those here keeps the per-tenant rejection counters in ``stats``
        reconciled with every structured error a client observed
        (asserted by the chaos suite).
        """
        with self._lock:
            state = self._state(tenant)
            state.rejections[code] = state.rejections.get(code, 0) + 1

    def try_promote(self, tenant: str) -> bool:
        """Move one queued request into a just-freed concurrency slot."""
        with self._lock:
            state = self._state(tenant)
            if state.queued < 1:
                raise RuntimeError(
                    f"try_promote without a queued reservation for {tenant!r}"
                )
            if state.running >= state.quota.max_concurrent:
                return False
            state.queued -= 1
            state.running += 1
            state.admitted += 1
            return True

    def abandon(self, tenant: str) -> None:
        """Give up a queue position (client disconnected while waiting)."""
        with self._lock:
            state = self._state(tenant)
            if state.queued < 1:
                raise RuntimeError(
                    f"abandon without a queued reservation for {tenant!r}"
                )
            state.queued -= 1

    def finish(
        self, tenant: str, *, rows_scanned: int = 0, matches: int = 0
    ) -> None:
        """Release a running slot and charge the work actually done."""
        with self._lock:
            state = self._state(tenant)
            if state.running < 1:
                raise RuntimeError(
                    f"finish without a running reservation for {tenant!r}"
                )
            state.running -= 1
            state.queries += 1
            state.rows_charged += rows_scanned
            state.matches += matches
            if state.allowance is not None:
                state.refill(self._clock())
                state.allowance -= rows_scanned

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of every tenant's usage (the stats op)."""
        with self._lock:
            tenants = {}
            for name, state in sorted(self._tenants.items()):
                state.refill(self._clock())
                tenants[name] = {
                    "running": state.running,
                    "queued": state.queued,
                    "queries": state.queries,
                    "admitted": state.admitted,
                    "rows_charged": state.rows_charged,
                    "matches": state.matches,
                    "allowance": (
                        round(state.allowance, 3)
                        if state.allowance is not None
                        else None
                    ),
                    "rejections": dict(state.rejections),
                }
            return {"draining": self._draining, "tenants": tenants}
