"""Always-on query service: serve SQL-TS queries to concurrent tenants.

The paper's optimized engine is meant to live *inside a database system*
serving many queries at once; this package is that front door.  It
composes the layers the previous PRs built — error policies and budgets
(:mod:`repro.resilience`), crash-recoverable streaming
(:mod:`repro.recovery`), and partition-parallel execution
(:mod:`repro.engine.parallel`) — behind one long-lived asyncio server
speaking a newline-delimited JSON protocol:

- :mod:`repro.serve.protocol` — the wire format: one JSON object per
  line, structured error payloads with stable codes and ``retry_after``
  hints;
- :mod:`repro.serve.tenants` — per-tenant quotas and admission control:
  per-query :class:`~repro.resilience.ResourceLimits`, concurrency and
  queue bounds, and a row-budget token bucket that rejects with
  ``retry_after`` when a tenant exhausts its allowance;
- :mod:`repro.serve.server` — the :class:`QueryServer`: named
  registered tables, one shared executor (and plan cache) across all
  connections, bounded queues with backpressure, per-request deadlines,
  graceful drain, and streaming subscriptions with per-subscriber
  exactly-once delivery;
- :mod:`repro.serve.client` — a thin blocking client
  (:class:`ServeClient`) for scripts, benchmarks, and the CLI, with
  transparent failover: full-jitter reconnect (:class:`FailoverPolicy`),
  idempotent request keys deduplicated server-side, subscription resume
  from the last acked sequence, and a typed
  :class:`ConnectionLostError` when retries run out.

See ``docs/serving.md`` for the protocol and semantics, and
``python -m repro serve --help`` for the CLI entry point.
"""

from repro.serve.client import (
    ConnectionLostError,
    FailoverPolicy,
    QueryReply,
    ServeClient,
    ServeError,
    SubscriptionRow,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_payload,
)
from repro.serve.server import QueryServer, ServerThread
from repro.serve.tenants import (
    AdmissionController,
    Rejection,
    RequestLedger,
    TenantQuota,
)

__all__ = [
    "AdmissionController",
    "ConnectionLostError",
    "FailoverPolicy",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueryReply",
    "QueryServer",
    "Rejection",
    "RequestLedger",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "SubscriptionRow",
    "TenantQuota",
    "decode_frame",
    "encode_frame",
    "error_payload",
]
