"""The always-on query server.

One :class:`QueryServer` wraps one :class:`~repro.engine.executor.Executor`
over a catalog of named registered tables and serves it to any number of
concurrent connections over the newline-delimited JSON protocol
(:mod:`repro.serve.protocol`).  The composition rules:

- **Shared plan cache.**  Every connection executes through the same
  executor, so a query planned for one tenant is a cache hit for the
  next — the ``stats`` op exposes the hit/miss counters.
- **Admission before execution.**  Each request passes the
  :class:`~repro.serve.tenants.AdmissionController` first; rejected
  requests cost the server one JSON frame, never a planner invocation.
- **Bounded queues everywhere.**  Queries run on a fixed thread pool;
  at most ``max_pending`` requests may be dispatched-but-unfinished
  server-wide (beyond that: ``backpressure`` rejections), and each
  tenant's queue is bounded by its quota.  Subscription delivery flows
  through a bounded per-subscriber queue, so a slow consumer throttles
  its own matcher instead of buffering the server into the ground.
- **Deadlines and cancellation.**  Per-request timeouts tighten the
  tenant's :class:`~repro.resilience.ResourceLimits`; every running
  query holds a :class:`~repro.resilience.CancelToken` that the drain
  sequence (and a subscriber disconnect) trips, unwinding the matcher
  loops through the ordinary budget machinery.
- **Graceful drain.**  :meth:`QueryServer.drain` refuses new work,
  lets in-flight queries finish within a grace period, then cancels
  stragglers (streams write a final checkpoint on the way out), and
  closes every connection.
- **Exactly-once subscriptions.**  Streaming subscriptions run on the
  PR3 :class:`~repro.recovery.RecoveringStreamRunner` with a per-
  subscription checkpoint file; checkpoints are written *behind* the
  delivery point (``on_emit=False``), so after a crash the server
  re-emits a suffix and the subscriber's ``after_seq`` high-water mark
  filters it — each match reaches the client exactly once across any
  number of reconnects and server restarts (see ``docs/serving.md``).

``fault_injector`` is the chaos-harness hook: a callable invoked inside
the worker thread before each query/subscription body; raising from it
simulates a worker dying mid-request and must surface as a structured
``internal`` error response while every other tenant's results stay
byte-identical (``tests/integration/test_serve_chaos.py``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping, Optional

from repro import failpoints
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor
from repro.errors import ExecutionError, ReproError
from repro.obs import MetricsRegistry, SlowQueryLog
from repro.pattern.predicates import AttributeDomains
from repro.recovery import (
    CheckpointPolicy,
    CheckpointStore,
    ReplicatedCheckpointStore,
    RunnerCheckpoint,
    StoreLike,
)
from repro.resilience import CancelToken, Diagnostics
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_for_exception,
    error_payload,
)
from repro.serve.tenants import (
    BACKPRESSURE_RETRY_AFTER,
    AdmissionController,
    Rejection,
    RequestLedger,
    TenantQuota,
)
from repro.sqlts.parser import parse_query

#: Bounded per-subscriber delivery queue (frames), the backpressure
#: coupling between a slow consumer and its matcher thread.
SUBSCRIPTION_QUEUE_DEPTH = 64

#: How long a queued request waits for a concurrency slot before it is
#: bounced with ``backpressure`` (seconds).
QUEUE_WAIT_TIMEOUT = 30.0

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


def _safe_filename(text: str) -> str:
    return _SAFE_NAME.sub("_", text)


def _checkpoint_high_water(store: CheckpointStore) -> float:
    """The highest ``seq`` the checkpoint believes was delivered.

    An unreadable or foreign checkpoint returns ``inf`` so the caller
    falls back to a from-scratch replay (which also rewrites the bad
    checkpoint) instead of a resume that would immediately fail.
    """
    try:
        state = store.load()
    except Exception:  # noqa: BLE001 - any corruption means "do not resume"
        return float("inf")
    if not isinstance(state, RunnerCheckpoint):
        return float("inf")
    return state.matcher.high_water


class QueryServer:
    """Serve SQL-TS queries and subscriptions to concurrent tenants.

    Construct with a catalog of registered tables, then ``await
    start()`` inside a running event loop (or use :class:`ServerThread`
    from synchronous code).  ``port=0`` binds an ephemeral port exposed
    via :attr:`address` after start.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        domains: Optional[AttributeDomains] = None,
        matcher: str = "ops",
        policy: str = "raise",
        evaluator: str = "auto",
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        pool_workers: int = 4,
        max_pending: Optional[int] = None,
        query_workers: int = 1,
        parallel_mode: str = "auto",
        checkpoint_dir: Optional[str] = None,
        checkpoint_replicas: int = 1,
        subscription_checkpoint_every: int = 256,
        drain_grace: float = 5.0,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_remote_shutdown: bool = False,
        fault_injector: Optional[Callable[[str, str, str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        slow_query_threshold: float = 1.0,
        slow_query_log: Optional[object] = None,
        slow_query_log_max_bytes: Optional[int] = None,
        request_ledger_size: int = 256,
    ):
        if pool_workers < 1:
            raise ExecutionError(
                f"pool_workers must be positive, got {pool_workers}"
            )
        if checkpoint_replicas < 1:
            raise ExecutionError(
                f"checkpoint_replicas must be positive, got {checkpoint_replicas}"
            )
        self._catalog = catalog
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor = Executor(
            catalog,
            domains=domains,
            matcher=matcher,
            policy=policy,
            parallel_mode=parallel_mode,
            metrics=self.metrics,
            evaluator=evaluator,
        )
        self._query_workers = query_workers
        self._admission = AdmissionController(
            default_quota=default_quota, quotas=quotas
        )
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="repro-serve"
        )
        self._max_pending = (
            max_pending if max_pending is not None else pool_workers * 4
        )
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_replicas = checkpoint_replicas
        self._subscription_checkpoint_every = subscription_checkpoint_every
        self._drain_grace = drain_grace
        self._host = host
        self._port = port
        self._allow_remote_shutdown = allow_remote_shutdown
        self._fault_injector = fault_injector
        self._ledger = RequestLedger(request_ledger_size)
        self._slow_log = (
            SlowQueryLog(
                slow_query_log,
                threshold_s=slow_query_threshold,
                max_bytes=slow_query_log_max_bytes,
            )
            if slow_query_log is not None
            else None
        )
        self._requests_counter = self.metrics.counter(
            "repro_serve_requests_total",
            "Requests dispatched, by protocol op.",
            labelnames=("op",),
        )
        self._rejections_counter = self.metrics.counter(
            "repro_serve_rejections_total",
            "Structured admission refusals, by tenant and error code.",
            labelnames=("tenant", "code"),
        )
        self._slow_queries_counter = self.metrics.counter(
            "repro_serve_slow_queries_total",
            "Queries whose wall time crossed the slow-query threshold.",
        )
        self._dedup_counter = self.metrics.counter(
            "repro_serve_request_dedup_total",
            "Retried requests replayed from the ledger instead of re-run.",
            labelnames=("tenant",),
        )
        self._replica_repair_counter = self.metrics.counter(
            "repro_checkpoint_replica_repairs_total",
            "Stale/corrupt/missing checkpoint replicas rewritten on load.",
        )
        # When a chaos harness armed failpoints before constructing this
        # server, surface their hit/fire counters through its registry so
        # the metrics op shows exactly which faults actually fired.
        if failpoints.armed():
            failpoints.set_metrics(self.metrics)

        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slot_cond = asyncio.Condition()
        self._inflight = 0
        self._active_tokens: set[CancelToken] = set()
        self._active_subscriptions: set[tuple[str, str]] = set()
        self._subscription_state: dict[tuple[str, str], dict] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._drain_started = False
        self.started_at = time.time()
        # Uptime is measured on the monotonic clock — wall-clock time is
        # for display only and jumps under NTP steps.
        self._started_monotonic = time.monotonic()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self._checkpoint_dir:
            os.makedirs(self._checkpoint_dir, exist_ok=True)
            for index in range(self._checkpoint_replicas):
                if self._checkpoint_replicas > 1:
                    os.makedirs(
                        os.path.join(self._checkpoint_dir, f"replica{index}"),
                        exist_ok=True,
                    )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_FRAME_BYTES + 2,
        )
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._drain_started

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def _note_rejection(
        self, tenant: str, code: str, *, counted: bool = False
    ) -> None:
        """Record a structured refusal in both the per-tenant admission
        stats and the metrics registry.

        ``counted=True`` means the :class:`AdmissionController` already
        incremented the tenant's rejection counter on the reserve path;
        only the registry counter is missing then.
        """
        if not counted:
            self._admission.note_rejection(tenant, code)
        self._rejections_counter.labels(tenant=tenant, code=code).inc()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self, grace: Optional[float] = None) -> None:
        """Graceful shutdown: refuse new work, finish or cancel old work.

        New requests (and queued waiters) get structured ``draining``
        errors immediately.  In-flight queries get ``grace`` seconds to
        finish; whatever remains is cooperatively cancelled — budgets
        trip, matchers return partial results, streaming subscriptions
        write a final checkpoint — before every connection is closed.
        """
        if self._drain_started:
            return
        self._drain_started = True
        grace = self._drain_grace if grace is None else grace
        self._admission.drain()
        if self._server is not None:
            self._server.close()
        await self._notify_slots()  # bounce queued waiters with "draining"
        await self._await_inflight(grace)
        if self._inflight > 0:
            for token in list(self._active_tokens):
                token.cancel("server draining: grace period expired")
            await self._await_inflight(2.0)
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    async def force_stop(self) -> None:
        """Abrupt shutdown (the chaos harness's "forced restart"): cancel
        everything now, abort connections, skip the grace period.
        Durable state (subscription checkpoints) is what makes this
        survivable."""
        self._drain_started = True
        self._admission.drain()
        if self._server is not None:
            self._server.close()
        for token in list(self._active_tokens):
            token.cancel("server restarting")
        await self._notify_slots()
        await self._await_inflight(1.0)
        for writer in list(self._connections):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._server is not None:
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)

    async def _await_inflight(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    async def _notify_slots(self) -> None:
        async with self._slot_cond:
            self._slot_cond.notify_all()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # An overlong line is unanswerable in-stream: drain
                    # the rest of it (closing with unread bytes would
                    # RST the socket and destroy the error frame), then
                    # answer once and drop the connection.
                    await self._drain_oversize_line(reader)
                    await self._send(
                        writer,
                        error_payload(
                            "corrupt_frame",
                            f"frame exceeds {MAX_FRAME_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_frame(line)
                except ProtocolError as error:
                    # The line framing held (we read a full line), so a
                    # bad frame is answerable without killing the
                    # connection.
                    await self._send(writer, error_for_exception(error))
                    continue
                await self._dispatch(request, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _drain_oversize_line(reader: asyncio.StreamReader) -> None:
        """Discard the remainder of an overlong line (bounded)."""
        discarded = 0
        while discarded < 16 * MAX_FRAME_BYTES:
            chunk = await reader.read(65536)
            if not chunk or b"\n" in chunk:
                return
            discarded += len(chunk)

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        # serve.send_frame raising an OSError here is indistinguishable,
        # from the connection's point of view, from the peer vanishing:
        # the handler unwinds and closes the socket, which is exactly how
        # the chaos matrix simulates a dropped connection at a chosen
        # frame (see repro.failpoints).
        failpoints.maybe_fail("serve.send_frame")
        writer.write(encode_frame(payload))
        await writer.drain()

    async def _dispatch(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        rid = request.get("id")
        op = request.get("op")
        tenant = request.get("tenant", "default")
        if not isinstance(op, str):
            await self._send(
                writer,
                error_payload(
                    "bad_request", "request needs a string 'op'", request_id=rid
                ),
            )
            return
        if not isinstance(tenant, str) or not tenant:
            await self._send(
                writer,
                error_payload(
                    "bad_request",
                    "'tenant' must be a non-empty string",
                    request_id=rid,
                ),
            )
            return
        self._requests_counter.labels(
            op=op
            if op in ("ping", "stats", "metrics", "shutdown", "query", "subscribe")
            else "unknown"
        ).inc()
        try:
            if op == "ping":
                await self._send(
                    writer,
                    {
                        "id": rid,
                        "ok": True,
                        "pong": True,
                        "draining": self._drain_started,
                    },
                )
            elif op == "stats":
                await self._send(writer, self._stats_payload(rid))
            elif op == "metrics":
                await self._send(
                    writer,
                    {"id": rid, "ok": True, "metrics": self.metrics.expose()},
                )
            elif op == "shutdown":
                await self._handle_shutdown(rid, writer)
            elif op == "query":
                await self._handle_query(request, rid, tenant, writer)
            elif op == "subscribe":
                await self._handle_subscribe(request, rid, tenant, writer)
            else:
                await self._send(
                    writer,
                    error_payload(
                        "unknown_op", f"unknown op {op!r}", request_id=rid
                    ),
                )
        except (ConnectionResetError, BrokenPipeError, OSError):
            raise
        except Exception as error:  # defense in depth: never kill the loop
            await self._send(writer, error_for_exception(error, rid))

    def _stats_payload(self, rid: Any) -> dict:
        subscriptions = {}
        for (tenant, name), state in sorted(self._subscription_state.items()):
            streaming = state.get("streaming")
            subscriptions[f"{tenant}/{name}"] = {
                "delivered": state["delivered"],
                "last_seq": state["last_seq"],
                "queue_depth": state["queue"].qsize(),
                "source_offset": (
                    streaming.runner.source_offset
                    if streaming is not None
                    else 0
                ),
            }
        return {
            "id": rid,
            "ok": True,
            "stats": {
                "uptime_s": round(self.uptime_s, 3),
                "plan_cache": {
                    "hits": self._executor.plan_cache_hits,
                    "misses": self._executor.plan_cache_misses,
                },
                "admission": self._admission.snapshot(),
                "inflight": self._inflight,
                "draining": self._drain_started,
                "subscriptions": len(self._active_subscriptions),
                "subscription_detail": subscriptions,
                "slow_queries": int(self._slow_queries_counter.value),
                "request_dedup": self._ledger.snapshot(),
                "checkpoint_replicas": self._checkpoint_replicas,
                "replica_repairs": int(self._replica_repair_counter.value),
                "tables": sorted(table.name for table in self._catalog),
            },
        }

    async def _handle_shutdown(
        self, rid: Any, writer: asyncio.StreamWriter
    ) -> None:
        if not self._allow_remote_shutdown:
            await self._send(
                writer,
                error_payload(
                    "unauthorized",
                    "remote shutdown is disabled "
                    "(start the server with --allow-remote-shutdown)",
                    request_id=rid,
                ),
            )
            return
        await self._send(writer, {"id": rid, "ok": True, "draining": True})
        asyncio.get_running_loop().create_task(self.drain())

    # -- admission ------------------------------------------------------

    async def _admit(
        self, tenant: str, rid: Any, writer: asyncio.StreamWriter
    ) -> bool:
        """Reserve a run slot; on failure a structured error has been
        sent and False is returned."""
        if self._inflight >= self._max_pending:
            self._note_rejection(tenant, "backpressure")
            await self._send(
                writer,
                error_payload(
                    "backpressure",
                    f"server request queue is full "
                    f"({self._inflight} in flight, limit {self._max_pending})",
                    retry_after=BACKPRESSURE_RETRY_AFTER,
                    request_id=rid,
                ),
            )
            return False
        decision = self._admission.reserve(tenant)
        if isinstance(decision, Rejection):
            self._note_rejection(tenant, decision.code, counted=True)
            await self._send(
                writer,
                error_payload(
                    decision.code,
                    decision.message,
                    retry_after=decision.retry_after,
                    request_id=rid,
                ),
            )
            return False
        if decision == "queue":
            promoted = False

            def slot_free() -> bool:
                nonlocal promoted
                if self._admission.draining:
                    return True
                promoted = self._admission.try_promote(tenant)
                return promoted

            try:
                async with self._slot_cond:
                    await asyncio.wait_for(
                        self._slot_cond.wait_for(slot_free),
                        timeout=QUEUE_WAIT_TIMEOUT,
                    )
            except asyncio.TimeoutError:
                self._admission.abandon(tenant)
                self._note_rejection(tenant, "backpressure")
                await self._send(
                    writer,
                    error_payload(
                        "backpressure",
                        f"timed out after {QUEUE_WAIT_TIMEOUT:g}s waiting "
                        f"for a concurrency slot",
                        retry_after=BACKPRESSURE_RETRY_AFTER,
                        request_id=rid,
                    ),
                )
                return False
            if not promoted:
                self._admission.abandon(tenant)
                self._note_rejection(tenant, "draining")
                await self._send(
                    writer,
                    error_payload(
                        "draining",
                        "server began draining while the request was queued",
                        request_id=rid,
                    ),
                )
                return False
        return True

    # -- query ----------------------------------------------------------

    @staticmethod
    def _bad(rid: Any, message: str) -> dict:
        return error_payload("bad_request", message, request_id=rid)

    async def _handle_query(
        self, request: dict, rid: Any, tenant: str, writer: asyncio.StreamWriter
    ) -> None:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await self._send(writer, self._bad(rid, "'sql' must be a query string"))
            return
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            await self._send(writer, self._bad(rid, "'timeout' must be a number"))
            return
        if timeout is not None and timeout <= 0:
            # The chaos suite's expired-deadline fault class: a request
            # whose deadline has already passed is refused up front.
            self._note_rejection(tenant, "deadline")
            await self._send(
                writer,
                error_payload(
                    "deadline",
                    f"request deadline already expired (timeout={timeout})",
                    request_id=rid,
                ),
            )
            return
        max_matches = request.get("max_matches")
        if max_matches is not None and (
            not isinstance(max_matches, int) or max_matches < 0
        ):
            await self._send(
                writer, self._bad(rid, "'max_matches' must be a non-negative int")
            )
            return
        workers = request.get("workers")
        if workers is not None and (not isinstance(workers, int) or workers < 1):
            await self._send(
                writer, self._bad(rid, "'workers' must be a positive int")
            )
            return
        request_key = request.get("request_key")
        if request_key is not None and (
            not isinstance(request_key, str) or not request_key
        ):
            await self._send(
                writer,
                self._bad(rid, "'request_key' must be a non-empty string"),
            )
            return
        if request_key is not None:
            # Idempotent retry: a client that lost its connection after
            # we executed (but before it read the response) resends under
            # the same key.  Replay the stored outcome — checked *before*
            # admission, so a replay costs no quota and cannot be bounced
            # by backpressure the original already paid for.
            cached = self._ledger.get(tenant, request_key)
            if cached is not None:
                self._dedup_counter.labels(tenant=tenant).inc()
                response = dict(cached)
                response["id"] = rid
                response["deduplicated"] = True
                await self._send(writer, response)
                return

        if not await self._admit(tenant, rid, writer):
            return
        quota = self._admission.quota_for(tenant)
        limits = quota.merge_limits(timeout=timeout, max_matches=max_matches)
        token = CancelToken()
        self._active_tokens.add(token)
        self._inflight += 1
        started = time.perf_counter()
        rows_scanned = 0
        matches = 0
        try:
            try:
                result, report = await asyncio.get_running_loop().run_in_executor(
                    self._pool,
                    self._run_query,
                    tenant,
                    sql,
                    limits,
                    token,
                    workers,
                )
            except Exception as error:
                response = error_for_exception(error, rid)
            else:
                rows_scanned = report.rows_scanned
                matches = report.matches
                diagnostics = result.diagnostics
                response = {
                    "id": rid,
                    "ok": True,
                    "columns": list(result.columns),
                    "rows": [list(row) for row in result.rows],
                    "row_count": len(result.rows),
                    "matches": report.matches,
                    "limit_hit": diagnostics.limit_hit,
                    "limits_hit": list(diagnostics.limits_hit),
                    "elapsed_ms": round(
                        (time.perf_counter() - started) * 1000.0, 3
                    ),
                    "diagnostics": diagnostics.to_dict(),
                }
        finally:
            self._active_tokens.discard(token)
            self._inflight -= 1
            self._admission.finish(
                tenant, rows_scanned=rows_scanned, matches=matches
            )
            await self._notify_slots()
        if self._slow_log is not None and self._slow_log.maybe_record(
            elapsed_s=time.perf_counter() - started,
            sql=sql,
            tenant=tenant,
            ok=bool(response.get("ok")),
            rows_scanned=rows_scanned,
            matches=matches,
        ):
            self._slow_queries_counter.inc()
        if request_key is not None:
            # Record the outcome (success *or* execution error: the
            # request ran once; a retry deserves its result, not a second
            # execution) before attempting the send — the send is the
            # step a connection loss can destroy.
            self._ledger.put(tenant, request_key, dict(response))
        await self._send(writer, response)

    def _run_query(self, tenant, sql, limits, token, workers):
        """Worker-thread body of one query (the chaos hook lives here)."""
        if self._fault_injector is not None:
            self._fault_injector("query", tenant, sql)
        return self._executor.execute_with_report(
            sql,
            limits=limits,
            cancel=token,
            workers=workers if workers is not None else self._query_workers,
        )

    # -- subscriptions ---------------------------------------------------

    def _subscription_store(
        self,
        tenant: str,
        subscription: str,
        diagnostics: Optional[Diagnostics] = None,
    ) -> StoreLike:
        """The checkpoint store for one subscription.

        With ``checkpoint_replicas > 1`` the same filename fans out to
        ``replica0..N-1`` subdirectories of the checkpoint dir — one
        failure domain per subdirectory (mount them on different volumes
        in production), repaired on load and counted in the registry.
        """
        filename = (
            f"{_safe_filename(tenant)}__{_safe_filename(subscription)}.ckpt"
        )
        if self._checkpoint_replicas <= 1:
            return CheckpointStore(os.path.join(self._checkpoint_dir, filename))
        return ReplicatedCheckpointStore(
            [
                os.path.join(self._checkpoint_dir, f"replica{index}", filename)
                for index in range(self._checkpoint_replicas)
            ],
            repair_counter=self._replica_repair_counter,
            diagnostics=diagnostics,
        )

    def _table_source(self, sql: str):
        """An offset-addressable source over the query's registered table.

        The table snapshot is sorted by the SEQUENCE BY key (the same
        order batch execution imposes per cluster), so the streaming
        order guard always passes and ``seq`` values are deterministic.
        """
        parsed = parse_query(sql)
        table = self._catalog.table(parsed.table)
        rows = list(table)
        if parsed.sequence_by:
            missing = [
                attr
                for attr in parsed.sequence_by
                if attr not in table.schema.names
            ]
            if missing:
                raise ExecutionError(
                    f"unknown SEQUENCE BY attribute(s) "
                    f"{', '.join(repr(a) for a in missing)} "
                    f"on table {parsed.table!r}"
                )
            rows.sort(
                key=lambda row: tuple(row[attr] for attr in parsed.sequence_by)
            )

        def factory(start: int):
            return (
                (offset, row)
                for offset, row in enumerate(rows)
                if offset >= start
            )

        return factory

    async def _handle_subscribe(
        self, request: dict, rid: Any, tenant: str, writer: asyncio.StreamWriter
    ) -> None:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            await self._send(writer, self._bad(rid, "'sql' must be a query string"))
            return
        subscription = request.get("subscription")
        if not isinstance(subscription, str) or not subscription:
            await self._send(
                writer,
                self._bad(rid, "'subscription' must be a non-empty string id"),
            )
            return
        after_seq = request.get("after_seq", -1)
        if not isinstance(after_seq, int):
            await self._send(writer, self._bad(rid, "'after_seq' must be an int"))
            return
        key = (tenant, subscription)
        if key in self._active_subscriptions:
            self._note_rejection(tenant, "subscription_busy")
            await self._send(
                writer,
                error_payload(
                    "subscription_busy",
                    f"subscription {subscription!r} is already being served "
                    f"for tenant {tenant!r}",
                    retry_after=BACKPRESSURE_RETRY_AFTER,
                    request_id=rid,
                ),
            )
            return
        if not await self._admit(tenant, rid, writer):
            return

        loop = asyncio.get_running_loop()
        token = CancelToken()
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIPTION_QUEUE_DEPTH)
        self._active_subscriptions.add(key)
        # Live lag view for the stats op: delivery high-water mark vs.
        # the runner's source offset, plus the queue depth between them.
        sub_state = {
            "queue": queue,
            "streaming": None,
            "delivered": 0,
            "last_seq": after_seq,
        }
        self._subscription_state[key] = sub_state
        self._active_tokens.add(token)
        self._inflight += 1
        delivered = 0
        rows_scanned = 0
        try:
            try:
                store = None
                resumed = False
                diagnostics = Diagnostics()
                if self._checkpoint_dir:
                    store = self._subscription_store(
                        tenant, subscription, diagnostics
                    )
                    # Resume from the checkpoint ONLY if the client
                    # confirms (via after_seq) receipt of every match
                    # the checkpoint's high-water mark would suppress.
                    # A crash can persist a high-water mark for matches
                    # that never reached the subscriber; resuming then
                    # would silently drop them.  Replaying from scratch
                    # re-emits everything and the after_seq filter
                    # below restores exactly-once.
                    resumed = (
                        store.exists()
                        and after_seq >= _checkpoint_high_water(store)
                    )
                streaming = self._executor.stream(
                    sql,
                    self._table_source(sql),
                    store=store,
                    checkpoints=CheckpointPolicy(
                        # Checkpoint *behind* delivery: after a crash the
                        # runner re-emits a suffix and the subscriber's
                        # after_seq filter dedups it — exactly-once
                        # end-to-end (docs/serving.md).
                        every_rows=self._subscription_checkpoint_every,
                        on_emit=False,
                    ),
                    resume=resumed,
                    stop=token,
                    diagnostics=diagnostics,
                )
            except ReproError as error:
                await self._send(writer, error_for_exception(error, rid))
                return
            sub_state["streaming"] = streaming

            await self._send(
                writer,
                {
                    "id": rid,
                    "ok": True,
                    "event": "begin",
                    "columns": list(streaming.columns),
                    "resumed": resumed,
                },
            )
            producer = loop.run_in_executor(
                self._pool,
                self._pump_subscription,
                tenant,
                sql,
                streaming,
                after_seq,
                token,
                queue,
            )
            last_seq = after_seq
            try:
                while True:
                    kind, a, b = await queue.get()
                    if kind == "row":
                        await self._send(
                            writer,
                            {"id": rid, "event": "row", "seq": a, "values": b},
                        )
                        delivered += 1
                        last_seq = a
                        sub_state["delivered"] = delivered
                        sub_state["last_seq"] = last_seq
                    elif kind == "end":
                        if token.cancelled:
                            # The SERVER cut this stream short (drain or
                            # forced restart), not the query: a clean
                            # ``end`` would tell the subscriber the
                            # stream is complete.  Send a retryable
                            # ``unavailable`` error instead so failover
                            # clients resume from last_seq elsewhere.
                            payload = error_payload(
                                "unavailable",
                                f"subscription interrupted ({token()}); "
                                f"resume with after_seq={last_seq}",
                                retry_after=BACKPRESSURE_RETRY_AFTER,
                                request_id=rid,
                            )
                            payload["event"] = "error"
                            await self._send(writer, payload)
                            break
                        await self._send(
                            writer,
                            {
                                "id": rid,
                                "ok": True,
                                "event": "end",
                                "rows": delivered,
                                "last_seq": last_seq,
                                "limit_hit": diagnostics.limit_hit,
                                "diagnostics": diagnostics.to_dict(),
                            },
                        )
                        break
                    else:  # error
                        payload = error_for_exception(a, rid)
                        payload["event"] = "error"
                        await self._send(writer, payload)
                        break
            except (ConnectionResetError, BrokenPipeError, OSError):
                token.cancel("client disconnected mid-stream")
                raise
            finally:
                token.cancel("subscription closed")
                await self._drain_subscription_queue(queue, producer)
                rows_scanned = streaming.runner.source_offset
        finally:
            self._active_subscriptions.discard(key)
            self._subscription_state.pop(key, None)
            self._active_tokens.discard(token)
            self._inflight -= 1
            self._admission.finish(
                tenant, rows_scanned=rows_scanned, matches=delivered
            )
            await self._notify_slots()

    def _pump_subscription(
        self, tenant, sql, streaming, after_seq, token, queue
    ) -> None:
        """Worker-thread body of one subscription: drive the recovering
        runner and push frames at the consumer's pace (a full queue
        blocks here, which *is* the backpressure onto the matcher)."""

        def put(item) -> bool:
            while True:
                try:
                    future = asyncio.run_coroutine_threadsafe(
                        queue.put(item), self._loop
                    )
                except RuntimeError:  # loop already closed (forced stop)
                    return False
                try:
                    future.result(timeout=0.5)
                    return True
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    if token.cancelled:
                        return False
                except Exception:
                    return False

        try:
            if self._fault_injector is not None:
                self._fault_injector("subscribe", tenant, sql)
            for seq, values in streaming.keyed_rows:
                if seq <= after_seq:
                    # Already delivered to this subscriber before a
                    # reconnect/restart; suppress for exactly-once.
                    continue
                if not put(("row", seq, list(values))):
                    return
            put(("end", None, None))
        except BaseException as error:  # noqa: BLE001 - reported to client
            put(("error", error, None))

    @staticmethod
    async def _drain_subscription_queue(queue: asyncio.Queue, producer) -> None:
        """Unblock the producer thread after the consumer stops reading."""
        while True:
            while not queue.empty():
                queue.get_nowait()
            if producer.done():
                break
            await asyncio.sleep(0.005)


class ServerThread:
    """Run a :class:`QueryServer` on a dedicated event-loop thread.

    The synchronous embedding used by the CLI-less callers — tests, the
    bench load generator, and notebooks::

        with ServerThread(server) as handle:
            client = ServeClient(*handle.address)
            ...

    ``stop()`` drains gracefully; ``force_stop()`` is the chaos
    harness's kill switch (abrupt, skips the grace period).
    """

    def __init__(self, server: QueryServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stopped = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as error:  # surfaced from start()
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise ExecutionError("server failed to start within 10s")
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def _finish(self, make_coroutine) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            asyncio.run_coroutine_threadsafe(
                make_coroutine(), self._loop
            ).result(timeout=30.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)

    def stop(self, grace: Optional[float] = None) -> None:
        """Graceful drain, then stop the loop and join the thread."""
        self._finish(lambda: self.server.drain(grace))

    def force_stop(self) -> None:
        """Abrupt stop (simulated crash/restart)."""
        self._finish(self.server.force_stop)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        if not self._stopped:
            self.stop(grace=1.0)
