"""The serve wire protocol: newline-delimited JSON frames.

Every message — request or response — is one JSON object on one line,
UTF-8 encoded, at most :data:`MAX_FRAME_BYTES` long.  Requests carry::

    {"id": <any scalar>, "op": "query", "tenant": "acme", ...}

and every response echoes the request ``id``.  Success responses have
``"ok": true``; failures have ``"ok": false`` plus a structured
``"error"`` object::

    {"id": 7, "ok": false,
     "error": {"code": "quota_exhausted",
               "message": "tenant 'acme' row budget exhausted",
               "retry_after": 1.25}}

``retry_after`` (seconds, or null) is the server's hint for when a
rejected request is worth retrying — the admission controller computes
it from the tenant's token-bucket refill rate.  Error codes are stable
strings (see :data:`ERROR_CODES` for the exception mapping); clients
must treat unknown codes as non-retryable failures.

Streaming subscriptions multiplex multiple frames per request ``id``:
a ``{"event": "begin"}`` header, one ``{"event": "row", "seq": n}``
frame per match, and a closing ``{"event": "end"}`` summary.  ``seq``
is the match's absolute end position in the stream — stable across
server restarts — so a reconnecting subscriber passes its highest seen
``seq`` as ``after_seq`` and receives each match exactly once.

``query`` requests may carry an idempotency token::

    {"id": 3, "op": "query", "sql": "...", "request_key": "a1b2c3-3"}

``request_key`` is an opaque non-empty string, unique per *logical*
request and reused verbatim when the client retries after a dropped
connection.  The server keeps a bounded per-tenant LRU of completed
responses keyed by it; a retried key is answered from that ledger —
flagged ``"deduplicated": true`` — instead of re-executing, so
connection loss between execution and delivery cannot double-run a
query.  Keys are scoped per tenant; admission rejections are never
stored (a retry re-attempts admission).

A subscription the *server* cuts short (graceful drain or forced
restart) ends with a retryable ``unavailable`` error frame rather than
a clean ``end`` — a clean ``end`` means the stream truly completed.
Failover clients treat ``unavailable`` like a dropped connection and
resume from their last acked ``seq``.  The client-side failover layer
additionally defines the code ``connection_lost`` for the typed error
it raises when reconnect retries are exhausted — that code never
crosses the wire; it is produced by the client itself.
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Optional

from repro.errors import (
    ExecutionError,
    LimitExceeded,
    PlanningError,
    RecoveryError,
    ReproError,
    SchemaError,
    SemanticError,
    SqlTsSyntaxError,
    StatementError,
)

#: Hard cap on one frame (request or response line), in bytes.  A frame
#: over the cap is a protocol violation: the server answers with a
#: ``corrupt_frame`` error and closes the connection (there is no way to
#: resynchronize a line protocol mid-line).
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Stable error codes for library exceptions crossing the wire.
ERROR_CODES: dict[type, str] = {
    SqlTsSyntaxError: "syntax",
    SemanticError: "semantic",
    PlanningError: "planning",
    SchemaError: "schema",
    LimitExceeded: "limit",
    RecoveryError: "recovery",
    StatementError: "statement",
    ExecutionError: "execution",
}


class ProtocolError(ReproError):
    """A malformed frame: bad encoding, bad JSON, not an object, or
    oversize.  ``code`` is the stable error code to send back."""

    def __init__(self, message: str, code: str = "corrupt_frame"):
        super().__init__(message)
        self.code = code


def _json_default(value: Any) -> str:
    """Encode the non-JSON values that flow through result rows.

    Dates and datetimes become ISO strings (matching the CSV renderer's
    textual form); anything else exotic falls back to ``str`` so a
    response can always be serialized — a response that cannot be sent
    is worse than a lossy rendering of an unusual cell value.
    """
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def encode_frame(payload: dict) -> bytes:
    """Serialize one message to its wire form (JSON line + ``\\n``)."""
    return (
        json.dumps(
            payload, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
        + b"\n"
    )


def decode_frame(line: bytes) -> dict:
    """Parse one received line into a request/response object.

    Raises :class:`ProtocolError` for anything that is not a single
    UTF-8 JSON object within :data:`MAX_FRAME_BYTES` — the corrupt-frame
    fault class of the chaos suite.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(f"frame is not valid UTF-8 ({error})") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON ({error})") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def error_payload(
    code: str,
    message: str,
    *,
    retry_after: Optional[float] = None,
    request_id: Any = None,
) -> dict:
    """Build a structured failure response."""
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retry_after": retry_after,
        },
    }


def error_code_for(error: BaseException) -> str:
    """The stable wire code for an exception (most specific type wins)."""
    if isinstance(error, ProtocolError):
        return error.code
    for cls, code in ERROR_CODES.items():
        if isinstance(error, cls):
            return code
    if isinstance(error, ReproError):
        return "execution"
    return "internal"


def error_for_exception(error: BaseException, request_id: Any = None) -> dict:
    """Map an exception to a structured failure response.

    Library errors keep their message (they are user-actionable: a
    syntax error names the offending token); unexpected internal errors
    are reported by class name so a fault in one request can never leak
    another tenant's data through an interpolated message.
    """
    code = error_code_for(error)
    if code == "internal":
        message = f"internal error ({type(error).__name__}: {error})"
    else:
        message = str(error)
    return error_payload(code, message, request_id=request_id)
