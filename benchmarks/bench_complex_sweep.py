"""E5 / Section 7 — complex-pattern sweep: "speedups up to 800 times".

The paper reports speedups "of more than two orders of magnitude" on
complex patterns.  The mechanism is that a restart-at-start+1 baseline
pays the full remaining pattern span from every interior position of
every starred run, while OPS shifts in whole elements: naive cost grows
with (alternations x run length) per input element, OPS stays near one
test per element.

This bench sweeps the staircase family (*rise, *fall, ..., price < 5)
over alternation count and run length and prints the speedup surface;
an ablation row shows OPS with all implication knowledge erased.
"""

from __future__ import annotations

import pytest

from repro.bench.ablation import compile_blind
from repro.bench.harness import compare_on_rows
from repro.bench.report import format_table
from repro.bench.workloads import staircase_rows, staircase_spec
from repro.pattern.compiler import compile_pattern

N_ROWS = 4000


def _sweep_cell(alternations, min_run, max_run, matchers=("naive", "ops")):
    rows = staircase_rows(N_ROWS, min_run=min_run, max_run=max_run, seed=1)
    pattern = compile_pattern(staircase_spec(alternations))
    return compare_on_rows(rows, pattern, matchers)


@pytest.mark.parametrize("alternations", [2, 4, 8])
def test_sweep_alternations(benchmark, alternations):
    rows = staircase_rows(N_ROWS, seed=1)
    pattern = compile_pattern(staircase_spec(alternations))
    runs = compare_on_rows(rows, pattern, ("naive",))
    ops = benchmark(
        lambda: compare_on_rows(rows, pattern, ("ops",), require_identical=False)["ops"]
    )
    naive = runs["naive"]
    speedup = ops.speedup_over(naive)
    print(
        f"\nalternations={alternations}: naive={naive.predicate_tests:,} "
        f"ops={ops.predicate_tests:,} speedup={speedup:.1f}x"
    )
    benchmark.extra_info.update(
        alternations=alternations,
        naive_tests=naive.predicate_tests,
        ops_tests=ops.predicate_tests,
        speedup=round(speedup, 1),
    )
    assert speedup > 2.0
    # The speedup mechanism: OPS stays near-linear in the input.
    assert ops.predicate_tests < 4 * N_ROWS


def test_speedup_surface():
    """The full table: speedup grows with both sweep axes, reaching the
    paper's >100x regime at long runs and many alternations."""
    table = []
    peak = 0.0
    for alternations in (2, 4, 8, 12):
        for min_run, max_run in ((5, 10), (15, 30), (40, 80)):
            runs = _sweep_cell(alternations, min_run, max_run)
            speedup = runs["ops"].speedup_over(runs["naive"])
            peak = max(peak, speedup)
            table.append(
                (
                    alternations,
                    f"{min_run}-{max_run}",
                    runs["naive"].predicate_tests,
                    runs["ops"].predicate_tests,
                    round(speedup, 1),
                )
            )
    print()
    print(
        format_table(
            ["alternations", "run length", "naive tests", "ops tests", "speedup"],
            table,
            title="Complex-pattern sweep (paper: 'up to 800 times')",
        )
    )
    # Two-orders-of-magnitude regime reached somewhere on the surface.
    assert peak > 100.0
    # Monotone trend along the alternation axis at fixed long runs.
    long_run = [row[4] for row in table if row[1] == "40-80"]
    assert long_run == sorted(long_run)


def test_ablation_structure_blind():
    """Erasing the theta/phi knowledge must cost most of the speedup:
    the implication reasoning, not the control structure, is the win."""
    rows = staircase_rows(N_ROWS, min_run=15, max_run=30, seed=1)
    spec = staircase_spec(8)
    full = compare_on_rows(rows, compile_pattern(spec), ("naive", "ops"))
    blind = compare_on_rows(
        rows, compile_blind(spec), ("ops",), require_identical=False
    )["ops"]
    full_speedup = full["ops"].speedup_over(full["naive"])
    blind_speedup = blind.speedup_over(full["naive"])
    print(
        f"\nablation: full={full_speedup:.1f}x blind={blind_speedup:.1f}x "
        f"(naive={full['naive'].predicate_tests:,}, "
        f"ops={full['ops'].predicate_tests:,}, blind-ops={blind.predicate_tests:,})"
    )
    assert blind.matches == full["ops"].matches  # still correct
    assert full_speedup > 2 * blind_speedup  # knowledge carries the win


def test_ablation_equivalence_refinement():
    """The equivalent-star refinement's contribution on the staircase."""
    rows = staircase_rows(N_ROWS, min_run=15, max_run=30, seed=1)
    spec = staircase_spec(8)
    refined = compare_on_rows(rows, compile_pattern(spec), ("ops",), require_identical=False)["ops"]
    literal = compare_on_rows(
        rows, compile_pattern(spec, use_equivalence=False), ("ops",), require_identical=False
    )["ops"]
    print(
        f"\nequivalence refinement: refined={refined.predicate_tests:,} "
        f"paper-literal={literal.predicate_tests:,}"
    )
    assert refined.matches == literal.matches
    assert refined.predicate_tests <= literal.predicate_tests
