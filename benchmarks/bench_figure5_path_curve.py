"""E1 / Figure 5 — naive vs OPS search-path curves on the paper's sequence.

The paper plots the evolution of (i, j) for both algorithms on the input

    55 50 45 57 54 50 47 49 45 42 55 57 59 60 57

searched with the Example 4 pattern.  This bench regenerates both curves,
prints them as the series the figure plots, and checks the figure's
qualitative claims: the OPS path is shorter, and its backtracking
episodes are less frequent and less deep.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table
from repro.data.workloads import FIGURE5_SEQUENCE
from repro.match.base import Instrumentation
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def example4_pattern():
    p1 = predicate(comparison(PRICE, "<", PREV), domains=DOMAINS, label="p1")
    p2 = predicate(
        comparison(PRICE, "<", PREV),
        comparison(40, "<", PRICE),
        comparison(PRICE, "<", 50),
        domains=DOMAINS,
        label="p2",
    )
    p3 = predicate(
        comparison(PRICE, ">", PREV), comparison(PRICE, "<", 52), domains=DOMAINS, label="p3"
    )
    p4 = predicate(comparison(PRICE, ">", PREV), domains=DOMAINS, label="p4")
    return PatternSpec(
        [PatternElement(n, p) for n, p in zip("YZTU", (p1, p2, p3, p4))]
    )


ROWS = [{"price": float(v)} for v in FIGURE5_SEQUENCE]


def _trace(matcher):
    inst = Instrumentation(record_trace=True)
    matcher.find_matches(ROWS, compile_pattern(example4_pattern()), inst)
    return inst


def _backtracks(trace):
    return [
        previous - current
        for (previous, _), (current, _) in zip(trace, trace[1:])
        if current < previous
    ]


def test_figure5_series(benchmark):
    """Regenerate the two path curves and the figure's claims."""
    naive = _trace(NaiveMatcher())
    ops = benchmark(lambda: _trace(OpsMatcher()))

    from repro.bench.figures import render_path_curves

    print()
    print(render_path_curves(naive.trace, ops.trace))
    print()
    print("Figure 5 — search path curves (step, i, j):")
    print(
        format_table(
            ["step", "naive (i,j)", "ops (i,j)"],
            [
                (
                    step + 1,
                    str(naive.trace[step]) if step < len(naive.trace) else "",
                    str(ops.trace[step]) if step < len(ops.trace) else "",
                )
                for step in range(max(len(naive.trace), len(ops.trace)))
            ],
        )
    )
    print(
        format_table(
            ["metric", "naive", "ops"],
            [
                ("path length (tests)", naive.tests, ops.tests),
                ("backtrack episodes", len(_backtracks(naive.trace)), len(_backtracks(ops.trace))),
                ("backtrack depth", sum(_backtracks(naive.trace)), sum(_backtracks(ops.trace))),
            ],
            title="Figure 5 summary",
        )
    )
    benchmark.extra_info["naive_tests"] = naive.tests
    benchmark.extra_info["ops_tests"] = ops.tests

    # Shape assertions: the figure's qualitative content.
    assert ops.tests < naive.tests
    assert len(_backtracks(ops.trace)) < len(_backtracks(naive.trace))
    assert sum(_backtracks(ops.trace)) < sum(_backtracks(naive.trace))
    # The sequence contains no complete occurrence of the pattern.
    assert OpsMatcher().find_matches(ROWS, compile_pattern(example4_pattern())) == []
