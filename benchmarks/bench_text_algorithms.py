"""E9 / Section 8 — KMP vs Boyer–Moore vs Karp–Rabin on plain text.

"Although there is evidence that KMP provides better performance on the
average than other algorithms, those by Karp&Rabin and Boyer&Moore could
offer some advantage in special situations."  This bench measures
character comparisons for the four matchers on three text regimes and
checks the folklore the paper cites:

- on periodic, small-alphabet text KMP beats naive soundly;
- on random large-alphabet text Boyer–Moore is sublinear (its special
  situation);
- Karp–Rabin's comparisons collapse to verification-only.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.report import format_table
from repro.match.text import (
    TextStats,
    boyer_moore_search,
    karp_rabin_search,
    kmp_search,
    naive_search,
)

ALGORITHMS = {
    "naive": naive_search,
    "kmp": kmp_search,
    "boyer-moore": boyer_moore_search,
    "karp-rabin": karp_rabin_search,
}


def _workloads():
    rng = random.Random(12)
    random_text = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(20000))
    return {
        "periodic": ("ab" * 10000 + "aa", "ab" * 8 + "aa"),
        "random-26": (random_text, "qzjxkvbw"),
        "dna-like": (
            "".join(rng.choice("acgt") for _ in range(20000)),
            "acgtacgtac",
        ),
    }


def _counts(text, pattern):
    results = {}
    occurrence_counts = set()
    for name, algorithm in ALGORITHMS.items():
        stats = TextStats()
        found = algorithm(text, pattern, stats)
        occurrence_counts.add(len(found))
        results[name] = stats
    assert len(occurrence_counts) == 1, "algorithms disagree on occurrences"
    return results


@pytest.mark.parametrize("workload", ["periodic", "random-26", "dna-like"])
def test_text_comparison(benchmark, workload):
    text, pattern = _workloads()[workload]
    counts = _counts(text, pattern)

    def run_kmp():
        stats = TextStats()
        kmp_search(text, pattern, stats)
        return stats

    benchmark(run_kmp)
    rows = [
        (name, stats.comparisons, stats.hash_operations)
        for name, stats in counts.items()
    ]
    print()
    print(
        format_table(
            ["algorithm", "char comparisons", "hash ops"],
            rows,
            title=f"{workload} (n={len(text)}, m={len(pattern)})",
        )
    )
    benchmark.extra_info.update(
        {name: stats.comparisons for name, stats in counts.items()}
    )

    # Shape claims.
    if workload == "periodic":
        assert counts["kmp"].comparisons < counts["naive"].comparisons
        assert counts["kmp"].comparisons <= 2 * len(text)
    if workload == "random-26":
        # Boyer–Moore's special situation: sublinear scanning.
        assert counts["boyer-moore"].comparisons < 0.5 * len(text)
        assert counts["boyer-moore"].comparisons < counts["kmp"].comparisons
    # Karp–Rabin compares characters only to verify hash hits.
    assert counts["karp-rabin"].comparisons <= counts["naive"].comparisons
