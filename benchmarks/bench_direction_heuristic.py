"""E8 / Section 8 — forward vs reverse search and the direction heuristic.

"We can optimize searches in both directions, and then select the better
... a large average value for shift and next is a good indication of
effective optimization.  Specially a larger value of shift has more
effect on the speedup."

This bench builds direction-asymmetric patterns (a rare, highly selective
element at one end), measures both scan directions on run-structured
data, and checks that the heuristic's preferred direction is never the
measurably worse one on these workloads.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table
from repro.data.random_walk import sawtooth
from repro.match.base import Instrumentation
from repro.match.direction import (
    ReverseMatcher,
    choose_direction,
    direction_scores,
    reverse_pattern,
)
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def _pred(*conds, label=""):
    return predicate(*conds, domains=DOMAINS, label=label)


def rare_tail_pattern():
    """(*rise, *fall, price < 9): the selective element is at the END, so
    a reverse scan can anchor on it."""
    return PatternSpec(
        [
            PatternElement("A", _pred(comparison(PRICE, ">", PREV)), star=True),
            PatternElement("B", _pred(comparison(PRICE, "<", PREV)), star=True),
            PatternElement("S", _pred(comparison(PRICE, "<", 9))),
        ]
    )


def rare_head_pattern():
    """(price < 9, *rise, *fall): selective element at the START."""
    return PatternSpec(
        [
            PatternElement("S", _pred(comparison(PRICE, "<", 9))),
            PatternElement("A", _pred(comparison(PRICE, ">", PREV)), star=True),
            PatternElement("B", _pred(comparison(PRICE, "<", PREV)), star=True),
        ]
    )


ROWS = [{"price": price} for price in sawtooth(3000, floor=10.0, seed=2)]


def _measure(spec):
    forward_inst = Instrumentation()
    OpsStarMatcher().find_matches(ROWS, compile_pattern(spec), forward_inst)
    backward_inst = Instrumentation()
    ReverseMatcher().find_matches(ROWS, compile_pattern(spec), backward_inst)
    return forward_inst.tests, backward_inst.tests


@pytest.mark.parametrize(
    "name, spec_factory", [("rare-tail", rare_tail_pattern), ("rare-head", rare_head_pattern)]
)
def test_direction_measurement(benchmark, name, spec_factory):
    spec = spec_factory()
    forward_tests, backward_tests = benchmark.pedantic(
        lambda: _measure(spec), rounds=3, iterations=1
    )
    forward_plan = compile_pattern(spec)
    backward_plan = compile_pattern(reverse_pattern(spec))
    fwd_score, bwd_score = direction_scores(forward_plan, backward_plan)
    chosen, _ = choose_direction(spec)
    print(
        f"\n{name}: forward={forward_tests:,} backward={backward_tests:,} "
        f"scores fwd={fwd_score.value:.2f} bwd={bwd_score.value:.2f} chosen={chosen}"
    )
    benchmark.extra_info.update(
        forward_tests=forward_tests, backward_tests=backward_tests, chosen=chosen
    )
    # The heuristic must not pick a direction that measures worse by more
    # than 20% on these workloads.
    measured = {"forward": forward_tests, "backward": backward_tests}
    best = min(measured.values())
    assert measured[chosen] <= 1.2 * best


def test_score_table():
    rows = []
    for name, factory in (("rare-tail", rare_tail_pattern), ("rare-head", rare_head_pattern)):
        spec = factory()
        forward = compile_pattern(spec)
        backward = compile_pattern(reverse_pattern(spec))
        fwd, bwd = direction_scores(forward, backward)
        rows.append((name, round(fwd.mean_shift, 2), round(fwd.mean_next, 2),
                     round(bwd.mean_shift, 2), round(bwd.mean_next, 2)))
    print()
    print(
        format_table(
            ["pattern", "fwd shift", "fwd next", "bwd shift", "bwd next"],
            rows,
            title="Direction heuristic inputs (mean shift / next per direction)",
        )
    )


def test_both_directions_find_same_count():
    """Non-overlapping resolution differs in tie cases, but the number of
    disjoint occurrences on sawtooth data must agree."""
    spec = rare_tail_pattern()
    cp = compile_pattern(spec)
    forward = OpsStarMatcher().find_matches(ROWS, cp)
    backward = ReverseMatcher().find_matches(ROWS, cp)
    assert len(forward) == len(backward)
