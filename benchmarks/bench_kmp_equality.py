"""E6 / Section 3 (Example 3) — constant-equality patterns, the KMP case.

"The text searching algorithm by Knuth, Morris and Pratt provides a
solution of proven optimality for this query."  For equality-with-constant
patterns, OPS must recover KMP's behaviour: the compiled shift/next encode
the same skips, the match sets agree with naive, and the test count stays
within the KMP 2n bound while naive is quadratic on periodic data.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import compare_on_rows
from repro.bench.report import format_table
from repro.bench.workloads import constant_pattern_spec
from repro.pattern.compiler import compile_pattern


def periodic_rows(n, period, spike_every=0):
    """Prices cycling through `period`, the worst case for naive restart."""
    values = []
    for index in range(n):
        values.append(float(period[index % len(period)]))
    return [{"price": v} for v in values]


def test_example3_pattern_on_quotes(benchmark, paper_catalog, domains):
    """The literal Example 3 query via SQL (no exact hits on float data,
    but the full pipeline must run and agree)."""
    from repro.bench.harness import compare_matchers
    from repro.data.workloads import EXAMPLE_3

    runs = compare_matchers(
        paper_catalog, EXAMPLE_3, matchers=("naive", "ops"), domains=domains
    )
    ops = benchmark(
        lambda: compare_matchers(
            paper_catalog, EXAMPLE_3, matchers=("ops",), domains=domains
        )["ops"]
    )
    assert runs["naive"].matches == ops.matches
    assert ops.predicate_tests <= runs["naive"].predicate_tests


def test_periodic_worst_case(benchmark):
    """Pattern 'a a a ... a b' over text 'a a a ...': naive is O(n*m),
    OPS (=KMP here) is O(n)."""
    m = 12
    pattern = compile_pattern(constant_pattern_spec([10.0] * (m - 1) + [11.0]))
    rows = periodic_rows(3000, [10.0])
    naive = compare_on_rows(rows, pattern, ("naive",))["naive"]
    ops = benchmark(
        lambda: compare_on_rows(rows, pattern, ("ops",), require_identical=False)["ops"]
    )
    speedup = ops.speedup_over(naive)
    print(
        f"\nperiodic worst case (m={m}, n={len(rows)}): naive={naive.predicate_tests:,} "
        f"ops={ops.predicate_tests:,} speedup={speedup:.1f}x"
    )
    benchmark.extra_info.update(
        naive_tests=naive.predicate_tests, ops_tests=ops.predicate_tests
    )
    assert naive.matches == ops.matches == 0
    assert ops.predicate_tests <= 2 * len(rows)  # the KMP bound
    # Naive pays ~m per position; OPS (like KMP here) pays exactly 2 per
    # position (fail as the last element, re-succeed as its predecessor),
    # so the speedup is exactly m/2.
    assert speedup >= m / 2


def test_kmp_skip_structure():
    """The compiled arrays for 'abcabcacab'-style constant patterns match
    KMP's: where characters repeat, next points back into the pattern."""
    values = [float(ord(c)) for c in "abcabcacab"]
    pattern = compile_pattern(constant_pattern_spec(values))
    rows_of = [
        (j, pattern.shift(j), pattern.next(j)) for j in range(1, pattern.m + 1)
    ]
    print()
    print(format_table(["j", "shift(j)", "next(j)"], rows_of, title="OPS arrays for 'abcabcacab'"))
    # KMP next for this pattern: 0 1 1 0 1 1 0 5 0 1.  OPS expresses the
    # same information through (shift, next) pairs; verify the two famous
    # entries: a mismatch at j=8 resumes at pattern position 5 (next=5
    # with shift 3), and mismatches at j=1,4,7,9 advance the input.
    assert (pattern.shift(8), pattern.next(8)) == (3, 5)
    for j in (1, 4, 7, 9):
        assert pattern.next(j) == 0, j

    # And the occurrence structure agrees with string search.
    text = "babcbabcabcaabcabcabcacabc"
    rows = [{"price": float(ord(c))} for c in text]
    runs = compare_on_rows(rows, pattern, ("naive", "ops"))
    assert runs["ops"].matches == 1


@pytest.mark.parametrize("m", [4, 8, 16])
def test_distinct_constants_scale(benchmark, m):
    """All-distinct constants: mismatch at any j shifts the whole window;
    both algorithms are ~n but OPS never retests."""
    pattern = compile_pattern(constant_pattern_spec([float(i) for i in range(m)]))
    rows = periodic_rows(2000, [1.0, 2.0, 3.0])
    ops = benchmark(
        lambda: compare_on_rows(rows, pattern, ("ops",), require_identical=False)["ops"]
    )
    naive = compare_on_rows(rows, pattern, ("naive",))["naive"]
    assert ops.matches == naive.matches == 0
    assert ops.predicate_tests <= naive.predicate_tests
