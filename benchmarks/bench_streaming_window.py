"""Extension bench — streaming OPS: bounded memory, batch-equal output.

Not a paper table (the paper only gestures at the streaming deployment
via user-defined aggregates); this bench documents the design claim in
DESIGN.md: the OPS runtime never revisits input before the live attempt,
so a stream needs O(attempt + look-back) buffered rows, not O(stream).
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table
from repro.data.random_walk import regime_switching_walk
from repro.match.ops_star import OpsStarMatcher
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains, col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()

N = 20_000


def watch_pattern():
    anchor = predicate(domains=DOMAINS)
    falling = predicate(comparison(PRICE, "<", 0.99 * PREV), domains=DOMAINS)
    reversal = predicate(comparison(PRICE, ">", 1.015 * PREV), domains=DOMAINS)
    return compile_pattern(
        PatternSpec(
            [
                PatternElement("X", anchor),
                PatternElement("D", falling, star=True),
                PatternElement("R", reversal),
            ]
        )
    )


@pytest.fixture(scope="module")
def feed():
    return [
        {"price": price}
        for price in regime_switching_walk(N, turbulent_volatility=0.03, seed=77)
    ]


def test_streaming_window_bounded(benchmark, feed):
    pattern = watch_pattern()

    def run_stream():
        matcher = OpsStreamMatcher(pattern)
        peak = 0
        for row in feed:
            matcher.push(row)
            peak = max(peak, matcher.buffered_rows)
        matcher.finish()
        return matcher.matches, peak

    matches, peak = benchmark.pedantic(run_stream, rounds=3, iterations=1)
    batch = OpsStarMatcher().find_matches(feed, pattern)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("stream length", N),
                ("matches (streaming)", len(matches)),
                ("matches (batch)", len(batch)),
                ("peak buffered rows", peak),
            ],
            title="Streaming OPS window",
        )
    )
    benchmark.extra_info.update(peak_window=peak, matches=len(matches))
    assert matches == batch
    assert peak < 100  # bounded by the live attempt, not the 20k stream
