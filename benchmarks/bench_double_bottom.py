"""E4 / Section 7 + Figure 7 — the relaxed double-bottom on 25y of DJIA.

The paper's headline experiment: Example 10 over 25 years of DJIA daily
closes finds 12 matches, and OPS "executes 93 [times] faster than the
naive execution".  This bench runs the same query over the synthetic DJIA
substitute under three evaluators and reports the paper's metric
(predicate-test counts).

Shape expectations (see EXPERIMENTS.md for the full gap analysis):

- all evaluators return the identical, small set of double bottoms
  (the paper found 12; the calibrated synthetic series yields a count in
  the same regime);
- OPS beats the greedy naive baseline and runs close to the absolute
  floor of one test per input tuple;
- the paper's 93x is not reachable against a *greedy-commit* naive (that
  baseline is itself near 2.4 tests/tuple, and no evaluator can go below
  1/tuple); the backtracking baseline — the naive evaluation of the
  declarative star semantics — pushes the gap wider, and the staircase
  sweep (bench_complex_sweep) shows the two-orders-of-magnitude regime
  the paper reports.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import compare_matchers
from repro.bench.report import format_table
from repro.data.workloads import EXAMPLE_10


def test_double_bottom_djia(benchmark, paper_catalog, domains):
    runs = compare_matchers(
        paper_catalog,
        EXAMPLE_10,
        matchers=("naive", "backtracking", "ops"),
        domains=domains,
    )

    def run_ops():
        return compare_matchers(
            paper_catalog, EXAMPLE_10, matchers=("ops",), domains=domains
        )["ops"]

    ops = benchmark(run_ops)
    naive = runs["naive"]
    backtracking = runs["backtracking"]

    n_days = len(paper_catalog.table("djia"))
    rows = [
        (
            run.name,
            run.predicate_tests,
            run.predicate_tests / n_days,
            run.matches,
            ops.speedup_over(run),
        )
        for run in (naive, backtracking, ops)
    ]
    print()
    print(
        format_table(
            ["evaluator", "predicate tests", "tests/day", "matches", "ops speedup vs"],
            rows,
            title=f"Relaxed double-bottom on synthetic DJIA ({n_days} days); paper: 12 matches, 93x",
        )
    )
    benchmark.extra_info.update(
        naive_tests=naive.predicate_tests,
        backtracking_tests=backtracking.predicate_tests,
        ops_tests=ops.predicate_tests,
        matches=ops.matches,
    )

    # Shape assertions.
    assert naive.matches == backtracking.matches == ops.matches
    assert 5 <= ops.matches <= 25  # paper: 12
    assert ops.predicate_tests < naive.predicate_tests
    assert ops.predicate_tests < backtracking.predicate_tests
    assert ops.predicate_tests < 1.8 * n_days  # near the 1 test/tuple floor


def test_double_bottom_matches_are_plausible(paper_catalog, domains):
    """Figure 7 sanity: each reported double bottom spans a real interval
    and the pattern endpoints carry the expected prices/dates."""
    from repro.engine.executor import Executor

    result = Executor(paper_catalog, domains=domains).execute(EXAMPLE_10)
    print()
    print("Figure 7 — double bottoms found (pattern start/end):")
    print(result.pretty(max_rows=None))
    for start_date, start_price, end_date, end_price in result:
        assert start_date < end_date
        assert start_price > 0 and end_price > 0
