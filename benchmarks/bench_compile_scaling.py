"""E7 / Section 5.1 — compile-time cost of shift/next for star patterns.

The paper bounds the computation of all (shift(j), next(j)) pairs by
O(m^3): m failure graphs, each with O(m^2) nodes/arcs traversed once
(reverse reachability), plus a linear walk for next.  This bench sweeps
the pattern length and checks the empirical growth stays polynomial with
exponent ~<= 3 (measured on the staircase family, whose graphs are dense
in U entries — the worst case for reachability).
"""

from __future__ import annotations

import math
import time

import pytest

from repro.bench.report import format_table
from repro.bench.workloads import staircase_spec
from repro.pattern.compiler import compile_pattern


@pytest.mark.parametrize("alternations", [4, 8, 16])
def test_compile_time(benchmark, alternations):
    spec = staircase_spec(alternations)
    plan = benchmark(lambda: compile_pattern(spec))
    assert plan.m == alternations + 1
    benchmark.extra_info["m"] = plan.m


def test_cubic_growth_bound():
    """Fit the growth exponent over a length sweep; demand it stays at or
    below the paper's O(m^3) (with generous slack for small-m noise)."""
    sizes = [4, 8, 16, 32]
    timings = []
    for alternations in sizes:
        spec = staircase_spec(alternations)
        best = math.inf
        for _ in range(3):
            start = time.perf_counter()
            compile_pattern(spec)
            best = min(best, time.perf_counter() - start)
        timings.append(best)
    rows = [
        (a + 1, f"{t * 1000:.2f} ms")
        for a, t in zip(sizes, timings)
    ]
    print()
    print(format_table(["m", "compile time"], rows, title="shift/next compile scaling"))
    # Exponent between the largest two points (most reliable).
    exponent = math.log(timings[-1] / timings[-2]) / math.log(sizes[-1] / sizes[-2])
    print(f"empirical exponent (m={sizes[-2]+1} -> {sizes[-1]+1}): {exponent:.2f}")
    assert exponent < 4.0, "compile cost grew faster than the paper's O(m^3)"


def test_compile_is_input_independent():
    """The arrays depend only on the pattern — 'computed once as part of
    the query compilation, then used repeatedly'."""
    spec = staircase_spec(6)
    first = compile_pattern(spec)
    second = compile_pattern(spec)
    assert first.shift_next == second.shift_next
    assert first.theta == second.theta
    assert first.phi == second.phi
