"""Shared benchmark fixtures: paper catalogs and domains."""

from __future__ import annotations

import pytest

from repro.data.djia import djia_table
from repro.data.quotes import quote_table
from repro.engine.catalog import Catalog
from repro.pattern.predicates import AttributeDomains


@pytest.fixture(scope="session")
def domains():
    return AttributeDomains.prices()


@pytest.fixture(scope="session")
def paper_catalog():
    """quote (8 tickers x 500 days) and the 25-year synthetic DJIA."""
    catalog = Catalog()
    catalog.register(quote_table(days=500, seed=7))
    catalog.register(djia_table())
    return catalog
