"""A multi-pattern stock screener built on SQL-TS.

The application the paper's introduction motivates: scan a universe of
stocks for several technical patterns at once — V-shaped recoveries,
sustained rallies, and spike-and-crash events — each expressed as one
declarative SQL-TS query and executed with the OPS optimizer.

Note the SQL-TS idiom for "depth" conditions on starred runs: conditions
are evaluated per tuple (the paper's running semantics), so a constraint
on where a falling run *bottomed out* is written on the turn-day element
that follows the run, via ``T.previous`` — exactly how the paper's
Example 2 reads off the end of a falling period.

Run:  python examples/stock_screener.py
"""

from repro import AttributeDomains, Catalog, Executor, Instrumentation
from repro.bench.report import format_table
from repro.data import quote_table

SCREENS = {
    "V-shaped recovery (>=5% down-leg, full retrace)": """
        SELECT X.name, X.date AS leg_start, T.previous.date AS bottom,
               R.previous.date AS recovered
        FROM quote
          CLUSTER BY name
          SEQUENCE BY date
          AS (X, *D, T, *U, R)
        WHERE D.price < D.previous.price
          AND T.price > T.previous.price
          AND T.previous.price < 0.95 * X.price
          AND U.price > U.previous.price
          AND R.previous.price > X.price
    """,
    "Five-day rally (each day higher, +6% total)": """
        SELECT X.name, A.date AS day1, E.date AS day5, E.price
        FROM quote
          CLUSTER BY name
          SEQUENCE BY date
          AS (X, A, B, C, D, E)
        WHERE A.price > X.price
          AND B.price > A.price
          AND C.price > B.price
          AND D.price > C.price
          AND E.price > D.price
          AND E.price > 1.06 * X.price
    """,
    "Spike and crash (+3% day, -3% within two days)": """
        SELECT X.name, Y.date AS spike_day, Y.price AS peak
        FROM quote
          CLUSTER BY name
          SEQUENCE BY date
          AS (X, Y, Z, W)
        WHERE Y.price > 1.03 * X.price
          AND W.price < 0.97 * Y.price
    """,
}


def main() -> None:
    catalog = Catalog([quote_table(days=750, seed=11)])
    executor = Executor(catalog, domains=AttributeDomains.prices())
    universe = {row["name"] for row in catalog.table("quote")}
    print(f"Screening {len(universe)} tickers x 750 trading days\n")

    summary = []
    for title, query in SCREENS.items():
        instrumentation = Instrumentation()
        result, report = executor.execute_with_report(query, instrumentation)
        summary.append((title, report.matches, instrumentation.tests))
        print(f"== {title} ==")
        if result:
            print(result.pretty(max_rows=8))
        else:
            print("(no hits)")
        print()

    print(
        format_table(
            ["screen", "hits", "predicate tests"],
            summary,
            title="Screener summary",
        )
    )


if __name__ == "__main__":
    main()
