"""Live pattern alerts over a price stream with bounded memory.

Uses :class:`~repro.match.streaming.OpsStreamMatcher` — the incremental
OPS runtime — to watch a simulated tick-by-tick price feed and fire an
alert the moment a pattern completes, while keeping only a small
look-back window (the paper's "user-defined aggregates on input streams"
deployment, made truly streaming).

Run:  python examples/streaming_alerts.py
"""

from repro import AttributeDomains, compile_pattern
from repro.data.random_walk import regime_switching_walk
from repro.match.streaming import OpsStreamMatcher
from repro.pattern.predicates import col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def capitulation_bounce_pattern() -> PatternSpec:
    """Two or more >1% down days, then a >1.5% reversal day."""
    falling = predicate(
        comparison(PRICE, "<", 0.99 * PREV), domains=DOMAINS, label="down>1%"
    )
    reversal = predicate(
        comparison(PRICE, ">", 1.015 * PREV), domains=DOMAINS, label="up>1.5%"
    )
    return PatternSpec(
        [
            PatternElement("X", predicate(domains=DOMAINS)),  # anchor day
            PatternElement("D", falling, star=True),
            PatternElement("R", reversal),
        ]
    )


def main() -> None:
    pattern = compile_pattern(capitulation_bounce_pattern())
    matcher = OpsStreamMatcher(pattern)

    feed = regime_switching_walk(
        4000, start=100.0, turbulent_volatility=0.03, seed=77
    )
    print("Watching a 4000-tick feed for capitulation-bounce setups...\n")

    alerts = 0
    peak_window = 0
    for tick, price in enumerate(feed):
        completed = matcher.push({"price": price})
        peak_window = max(peak_window, matcher.buffered_rows)
        for match in completed:
            alerts += 1
            down_days = match.span_of("D").length
            print(
                f"tick {tick:5d}: ALERT — {down_days} consecutive >1% down "
                f"days then a >1.5% bounce to {price:.2f} "
                f"(setup started at tick {match.start})"
            )
    matcher.finish()

    print(
        f"\n{alerts} alerts on 4000 ticks; peak look-back window: "
        f"{peak_window} rows (bounded by the live attempt, not the stream)."
    )


if __name__ == "__main__":
    main()
