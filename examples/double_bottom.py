"""The paper's headline experiment: relaxed double-bottoms in the DJIA.

Runs Example 10 (the relaxed double-bottom query, Section 7 / Figure 6)
over the synthetic 25-year DJIA substitute, compares the naive,
backtracking, and OPS evaluators on the paper's metric (predicate-test
counts), and sketches one found pattern as ASCII art the way Figure 7
zooms into the June-1990 match.

Run:  python examples/double_bottom.py
"""

from repro import AttributeDomains, Catalog, Executor, Instrumentation
from repro.bench.harness import compare_matchers
from repro.bench.report import format_table
from repro.data import djia_table, synthetic_djia
from repro.data.workloads import EXAMPLE_10


def sparkline(values, height=12, width=64):
    """Plain-ASCII rendering of a price window."""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    rows = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        rows.append(
            "".join("*" if v >= threshold else " " for v in values)
        )
    return "\n".join(rows)


def main() -> None:
    catalog = Catalog([djia_table()])
    domains = AttributeDomains.prices()
    n_days = len(catalog.table("djia"))

    print(f"Synthetic DJIA: {n_days} trading days (1976-01-02 .. 2000-12-29)")
    print("Searching for relaxed double bottoms (Example 10, 2% band)...\n")

    runs = compare_matchers(
        catalog,
        EXAMPLE_10,
        matchers=("naive", "backtracking", "ops"),
        domains=domains,
    )
    ops = runs["ops"]
    print(
        format_table(
            ["evaluator", "predicate tests", "tests/day", "speedup vs naive"],
            [
                (
                    run.name,
                    run.predicate_tests,
                    round(run.predicate_tests / n_days, 2),
                    round(runs["naive"].predicate_tests / run.predicate_tests, 2),
                )
                for run in runs.values()
            ],
            title="Paper metric: input-element vs pattern-element tests",
        )
    )
    print(f"\nPaper reports 12 matches; we find {ops.matches}.")

    result = Executor(catalog, domains=domains).execute(EXAMPLE_10)
    print("\nDouble bottoms (pattern start / end):")
    print(result.pretty(max_rows=None))

    # Figure 7's top panel: the whole series with match regions marked.
    from repro.bench.figures import render_series_with_matches

    series = synthetic_djia()
    dates = [day for day, _ in series]
    prices = [price for _, price in series]
    spans = [
        (dates.index(start_date) - 1, dates.index(end_date) + 1)
        for start_date, _, end_date, _ in result.rows
    ]
    print("\n25-year overview (match regions marked with ^):")
    print(render_series_with_matches(prices, spans))

    # And the bottom panel: zoom into the first match.
    start_date, _, end_date, _ = result.rows[0]
    start = max(0, dates.index(start_date) - 5)
    end = min(len(series), dates.index(end_date) + 6)
    window = prices[start:end]
    print(f"\nZoom: {dates[start]} .. {dates[end - 1]}")
    print(sparkline(window))


if __name__ == "__main__":
    main()
