"""Quickstart: create a table, run an SQL-TS pattern query, read results.

This is the paper's Example 1 — find stocks that spiked 15% in a day and
then crashed 20% the next — end to end through the public API.

Run:  python examples/quickstart.py
"""

import datetime as dt

from repro import AttributeDomains, Catalog, Executor, Instrumentation, Table


def build_quote_table() -> Table:
    """The paper's quote(name, date, price) table with a planted spike."""
    table = Table("quote", [("name", "str"), ("date", "date"), ("price", "float")])
    day = dt.date(1999, 1, 25)
    prices = {
        "IBM": [100.0, 120.0, 90.0, 95.0],  # +20% then -25%: a hit
        "INTC": [60.0, 61.0, 62.0, 61.5],  # nothing interesting
        "GE": [80.0, 95.0, 88.0, 70.0],  # +18.75% but only -7.4% after
    }
    for name, series in prices.items():
        for offset, price in enumerate(series):
            table.insert(
                {"name": name, "date": day + dt.timedelta(days=offset), "price": price}
            )
    return table


QUERY = """
SELECT X.name, Y.date AS spike_day, Y.price AS peak, Z.price AS after
FROM quote
  CLUSTER BY name
  SEQUENCE BY date
  AS (X, Y, Z)
WHERE Y.price > 1.15 * X.price
  AND Z.price < 0.80 * Y.price
"""


def main() -> None:
    catalog = Catalog([build_quote_table()])

    # AttributeDomains.prices() declares `price` positive, enabling the
    # Section 6 ratio rewrite that lets the optimizer reason about the
    # 1.15x / 0.80x conditions.
    executor = Executor(catalog, domains=AttributeDomains.prices())

    print("Query:")
    print(QUERY)

    instrumentation = Instrumentation()
    result, report = executor.execute_with_report(QUERY, instrumentation)

    print("Result:")
    print(result.pretty())
    print()
    print(
        f"Scanned {report.rows_scanned} rows in {report.clusters} clusters, "
        f"{report.predicate_tests} predicate tests, {report.matches} match(es)."
    )
    print()
    print("What the OPS compiler precomputed for this pattern:")
    print(report.pattern.describe())


if __name__ == "__main__":
    main()
