"""A guided tour of the OPS compiler internals.

Reproduces the paper's worked Examples 5-7 (theta, phi, S, shift/next for
the Example 4 pattern) and Example 9 (the star-case implication graphs)
as live output, then shows the Figure 5 path-curve comparison.

Run:  python examples/optimizer_tour.py
"""

from repro import AttributeDomains, Instrumentation, compile_pattern
from repro.data.workloads import FIGURE5_SEQUENCE
from repro.match.naive import NaiveMatcher
from repro.match.ops import OpsMatcher
from repro.pattern.predicates import col, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec

PRICE = col("price")
PREV = PRICE.previous
DOMAINS = AttributeDomains.prices()


def pred(*conds, label=""):
    return predicate(*conds, domains=DOMAINS, label=label)


def example4():
    return PatternSpec(
        [
            PatternElement("Y", pred(comparison(PRICE, "<", PREV), label="p1")),
            PatternElement(
                "Z",
                pred(
                    comparison(PRICE, "<", PREV),
                    comparison(40, "<", PRICE),
                    comparison(PRICE, "<", 50),
                    label="p2",
                ),
            ),
            PatternElement(
                "T",
                pred(
                    comparison(PRICE, ">", PREV),
                    comparison(PRICE, "<", 52),
                    label="p3",
                ),
            ),
            PatternElement("U", pred(comparison(PRICE, ">", PREV), label="p4")),
        ]
    )


def example9():
    rise = lambda label: pred(comparison(PRICE, ">", PREV), label=label)
    fall = lambda label: pred(comparison(PRICE, "<", PREV), label=label)
    return PatternSpec(
        [
            PatternElement("X", rise("p1"), star=True),
            PatternElement(
                "Y", pred(comparison(30, "<", PRICE), comparison(PRICE, "<", 40), label="p2")
            ),
            PatternElement("Z", fall("p3"), star=True),
            PatternElement("T", rise("p4"), star=True),
            PatternElement(
                "U", pred(comparison(35, "<", PRICE), comparison(PRICE, "<", 40), label="p5")
            ),
            PatternElement("V", fall("p6"), star=True),
            PatternElement("S", pred(comparison(PRICE, "<", 30), label="p7")),
        ]
    )


def main() -> None:
    print("=" * 68)
    print("Part 1 — Example 4 (Sections 4.2, Examples 5-7)")
    print("=" * 68)
    plan4 = compile_pattern(example4())
    print(plan4.describe())
    print()
    print("Reading: a mismatch at element 4 can shift the pattern by 3")
    print("(S[4,1] = S[4,2] = 0) and resume checking at element 1.")

    print()
    print("=" * 68)
    print("Part 2 — Example 9 (Section 5, star patterns)")
    print("=" * 68)
    plan9_paper = compile_pattern(example9(), use_equivalence=False)
    print(plan9_paper.describe())
    print()
    print("G_P (theta with star-aware arcs):")
    print(plan9_paper.graph.render())
    print()
    print("G_P^6 (failure at element 6, row 6 replaced by phi):")
    print(plan9_paper.graph.render(6))
    print()
    print(
        f"Paper's worked result: shift(6) = {plan9_paper.shift(6)}, "
        f"next(6) = {plan9_paper.next(6)}"
    )
    plan9 = compile_pattern(example9())
    print(
        f"With the equivalence refinement (this library's default): "
        f"shift(6) = {plan9.shift(6)} — greedy-maximality lets the "
        "optimizer rule the paper's shift of 3 out."
    )

    print()
    print("=" * 68)
    print("Part 3 — Figure 5 path curves")
    print("=" * 68)
    rows = [{"price": float(v)} for v in FIGURE5_SEQUENCE]
    naive_inst = Instrumentation(record_trace=True)
    ops_inst = Instrumentation(record_trace=True)
    NaiveMatcher().find_matches(rows, plan4, naive_inst)
    OpsMatcher().find_matches(rows, plan4, ops_inst)
    print(f"input: {' '.join(str(v) for v in FIGURE5_SEQUENCE)}")
    print(f"naive path ({naive_inst.tests} tests): {naive_inst.trace}")
    print(f"ops path   ({ops_inst.tests} tests): {ops_inst.trace}")


if __name__ == "__main__":
    main()
