"""Meteorological event extraction with SQL-TS.

The paper's introduction spans "very simple [patterns], such as finding
three consecutive sunny days" up to geoscience event extraction [9].
This example runs both ends of that range over a synthetic multi-station
weather table — note that SQL-TS patterns are not only about numbers:
the sky conditions are categorical string predicates, which the OPS
analyzer reasons about too (sunny contradicts rain, so theta entries go
to 0 and failed attempts shift further).

Run:  python examples/weather_events.py
"""

from repro import Catalog, Executor, Instrumentation
from repro.bench.report import format_table
from repro.data.weather import weather_table

QUERIES = {
    "Three consecutive sunny days (the paper's intro example)": """
        SELECT A.station, A.date AS first_day
        FROM weather
          CLUSTER BY station
          SEQUENCE BY date
          AS (A, B, C)
        WHERE A.sky = 'sunny' AND B.sky = 'sunny' AND C.sky = 'sunny'
    """,
    "Storm breaks: a rain spell of 3+ days ending in sunshine": """
        SELECT R.station, FIRST(R).date AS spell_start,
               LAST(R).date AS spell_end, S.date AS clear_day
        FROM weather
          CLUSTER BY station
          SEQUENCE BY date
          AS (*R, S)
        WHERE R.sky = 'rain'
          AND R.next.sky != 'cloudy'
          AND S.sky = 'sunny'
          AND S.previous.previous.previous.sky = 'rain'
    """,
    "Warming trend into a hot sunny day (> 24 C)": """
        SELECT W.station, FIRST(W).date AS trend_start, H.date AS hot_day,
               H.temp
        FROM weather
          CLUSTER BY station
          SEQUENCE BY date
          AS (*W, H)
        WHERE W.temp > W.previous.temp
          AND H.temp > 24
          AND H.sky = 'sunny'
    """,
}


def main() -> None:
    catalog = Catalog([weather_table(days=730)])
    executor = Executor(catalog)
    station_count = len({row["station"] for row in catalog.table("weather")})
    print(f"Scanning {station_count} stations x 730 days of observations\n")

    summary = []
    for title, query in QUERIES.items():
        instrumentation = Instrumentation()
        result, report = executor.execute_with_report(query, instrumentation)
        summary.append((title, report.matches, instrumentation.tests))
        print(f"== {title} ==")
        print(result.pretty(max_rows=5))
        print()

    print(format_table(["event query", "events", "predicate tests"], summary))


if __name__ == "__main__":
    main()
