"""Hypothesis property tests for the GSW solver.

The key meta-properties: verdicts must be consistent with brute-force
model evaluation, closed under logical identities, and stable under
syntactic permutation.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constraints.atoms import Atom, Op, atom
from repro.constraints.gsw import GswSolver
from repro.constraints.terms import Variable, ZERO

VARIABLES = [Variable("a"), Variable("b"), Variable("c")]

operators = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])
constants = st.integers(-4, 4).map(float)


@st.composite
def atoms(draw):
    x = draw(st.sampled_from(VARIABLES))
    op = draw(operators)
    if draw(st.booleans()):
        return atom(x, op, draw(constants))
    y = draw(st.sampled_from([v for v in VARIABLES if v != x]))
    return atom(x, op, y, draw(constants))


atom_lists = st.lists(atoms(), min_size=1, max_size=5)

#: Grid assignments dense enough to witness satisfiability of integer-offset
#: systems over three variables (the solver's own domain is the reals, but
#: half-integer grids catch all strict-inequality corner cases here).
assignments = st.tuples(
    st.integers(-12, 12), st.integers(-12, 12), st.integers(-12, 12)
).map(
    lambda triple: {
        VARIABLES[0]: triple[0] / 2.0,
        VARIABLES[1]: triple[1] / 2.0,
        VARIABLES[2]: triple[2] / 2.0,
        ZERO: 0.0,
    }
)


@settings(max_examples=400, deadline=None)
@given(atom_lists, assignments)
def test_unsat_has_no_models(premises, assignment):
    """If the solver says unsatisfiable, no assignment satisfies it."""
    if not GswSolver.satisfiable(premises):
        assert not all(a.evaluate(assignment) for a in premises)


@settings(max_examples=400, deadline=None)
@given(atom_lists, atoms(), assignments)
def test_implication_holds_on_models(premises, conclusion, assignment):
    """If premises => conclusion, every model of the premises satisfies it."""
    if GswSolver.implies(premises, conclusion):
        if all(a.evaluate(assignment) for a in premises):
            assert conclusion.evaluate(assignment)


@settings(max_examples=200, deadline=None)
@given(atom_lists)
def test_satisfiability_is_order_insensitive(premises):
    shuffled = list(reversed(premises))
    assert GswSolver.satisfiable(premises) == GswSolver.satisfiable(shuffled)


@settings(max_examples=200, deadline=None)
@given(atom_lists, atoms())
def test_implication_monotone_in_premises(premises, extra):
    """Adding premises never invalidates an implication."""
    conclusion = premises[0]
    assert GswSolver.implies(premises, conclusion)
    assert GswSolver.implies(premises + [extra], conclusion)


@settings(max_examples=200, deadline=None)
@given(atom_lists, atoms())
def test_contrapositive_consistency(premises, conclusion):
    """premises => c and premises => NOT c together force unsat premises."""
    implies_c = GswSolver.implies(premises, conclusion)
    implies_not_c = GswSolver.implies(premises, conclusion.negate())
    if implies_c and implies_not_c:
        assert not GswSolver.satisfiable(premises)


@settings(max_examples=200, deadline=None)
@given(atoms())
def test_atom_self_implication(a):
    assert GswSolver.implies([a], a)


@settings(max_examples=200, deadline=None)
@given(atoms(), assignments)
def test_negation_is_complementary(a, assignment):
    assert a.evaluate(assignment) != a.negate().evaluate(assignment)


@settings(max_examples=300, deadline=None)
@given(atom_lists, assignments)
def test_models_imply_sat_verdict(premises, assignment):
    """A concrete model forces the solver to answer satisfiable."""
    assume(all(a.evaluate(assignment) for a in premises))
    assert GswSolver.satisfiable(premises)
