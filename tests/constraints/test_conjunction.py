"""Conjunction: the four queries theta/phi need, plus algebra."""

import pytest

from repro.constraints.atoms import atom, cat_atom
from repro.constraints.conjunction import Conjunction, TRUE_CONJUNCTION
from repro.constraints.terms import Domain, Variable

A = Variable("a")
B = Variable("b")
NAME = Variable("name", Domain.CATEGORICAL)


class TestBasics:
    def test_empty_is_true(self):
        assert TRUE_CONJUNCTION.satisfiable()
        assert TRUE_CONJUNCTION.is_tautology()
        assert len(TRUE_CONJUNCTION) == 0

    def test_and_with_atom(self):
        conj = TRUE_CONJUNCTION & atom(A, "<", 5)
        assert len(conj) == 1

    def test_and_with_conjunction(self):
        left = Conjunction([atom(A, "<", 5)])
        right = Conjunction([atom(B, ">", 2)])
        assert len(left & right) == 2

    def test_rejects_non_atoms(self):
        with pytest.raises(TypeError):
            Conjunction(["a < 5"])  # type: ignore[list-item]

    def test_variables(self):
        conj = Conjunction([atom(A, "<", B), cat_atom(NAME, "=", "IBM")])
        assert conj.variables == frozenset({A, B, NAME})

    def test_equality_and_hash(self):
        a = Conjunction([atom(A, "<", 5)])
        b = Conjunction([atom(A, "<", 5)])
        assert a == b and hash(a) == hash(b)
        assert a != Conjunction([atom(A, "<", 6)])


class TestDecisions:
    def test_satisfiable(self):
        assert Conjunction([atom(A, ">", 1), atom(A, "<", 2)]).satisfiable()
        assert not Conjunction([atom(A, ">", 2), atom(A, "<", 1)]).satisfiable()

    def test_tautology_requires_all_atoms_tautological(self):
        assert Conjunction([atom(A, "<=", A, 0), atom(A, "<", A, 1)]).is_tautology()
        assert not Conjunction([atom(A, "<", 5)]).is_tautology()

    def test_implies(self):
        narrow = Conjunction([atom(A, ">", 40), atom(A, "<", 50)])
        wide = Conjunction([atom(A, ">", 30)])
        assert narrow.implies(wide)
        assert not wide.implies(narrow)

    def test_unsat_premise_implies_everything(self):
        broken = Conjunction([atom(A, "<", A, 0)])
        anything = Conjunction([atom(B, ">", 1000)])
        assert broken.implies(anything)

    def test_conjunction_satisfiable_with(self):
        low = Conjunction([atom(A, "<", 5)])
        high = Conjunction([atom(A, ">", 10)])
        mid = Conjunction([atom(A, ">", 3)])
        assert not low.conjunction_satisfiable_with(high)
        assert low.conjunction_satisfiable_with(mid)

    def test_negation_implies(self):
        # NOT (a >= b)  =>  a < b
        ge = Conjunction([atom(A, ">=", B)])
        lt = Conjunction([atom(A, "<", B)])
        assert ge.negation_implies(lt)
        # NOT (a < b) is a >= b, which does not imply a > b.
        gt = Conjunction([atom(A, ">", B)])
        lt_conj = Conjunction([atom(A, "<", B)])
        assert not lt_conj.negation_implies(gt)

    def test_negation_implies_multi_atom_premise(self):
        # NOT (a > 40 AND a < 50) = a <= 40 OR a >= 50; neither disjunct
        # implies a > 30 (a could be 20), so the answer must be False.
        band = Conjunction([atom(A, ">", 40), atom(A, "<", 50)])
        wide = Conjunction([atom(A, ">", 30)])
        assert not band.negation_implies(wide)

    def test_negation_of_true_implies_everything(self):
        anything = Conjunction([atom(A, ">", 1000)])
        assert TRUE_CONJUNCTION.negation_implies(anything)

    def test_equivalent(self):
        a = Conjunction([atom(A, "<=", B)])
        b = Conjunction([atom(B, ">=", A)])
        assert a.equivalent(b)
        assert not a.equivalent(Conjunction([atom(A, "<", B)]))


class TestEvaluation:
    def test_mixed_evaluation(self):
        from repro.constraints.terms import ZERO

        conj = Conjunction([atom(A, "<", B), cat_atom(NAME, "=", "IBM")])
        good = {A: 1.0, B: 2.0, NAME: "IBM", ZERO: 0.0}
        bad = {A: 3.0, B: 2.0, NAME: "IBM", ZERO: 0.0}
        assert conj.evaluate(good)
        assert not conj.evaluate(bad)
