"""Interval sets and the Section 8 set-inclusion reduction.

Includes the cross-check: on single-variable constant-bound predicates,
the interval oracle and the GSW solver must agree exactly.
"""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.atoms import atom
from repro.constraints.gsw import GswSolver
from repro.constraints.intervals import (
    FULL_LINE,
    Interval,
    IntervalSet,
    atom_to_interval_set,
    atoms_to_interval_set,
    interval_implies,
    interval_satisfiable,
)
from repro.constraints.terms import Variable
from repro.errors import ConstraintError

X = Variable("x")
Y = Variable("y")


class TestInterval:
    def test_empty_detection(self):
        assert Interval(2, 1, True, True).empty
        assert Interval(1, 1, True, False).empty
        assert not Interval(1, 1, True, True).empty
        assert not Interval(1, 2, False, False).empty

    def test_contains_respects_openness(self):
        iv = Interval(1, 2, False, True)
        assert not iv.contains(1)
        assert iv.contains(2)
        assert iv.contains(1.5)
        assert not iv.contains(2.5)

    def test_infinite_endpoints_must_be_open(self):
        with pytest.raises(ValueError):
            Interval(-math.inf, 0, True, True)
        with pytest.raises(ValueError):
            Interval(0, math.inf, True, True)

    def test_intersection(self):
        a = Interval(0, 10, True, True)
        b = Interval(5, 15, False, True)
        got = a.intersect(b)
        assert (got.low, got.high, got.low_closed, got.high_closed) == (5, 10, False, True)

    def test_subset(self):
        inner = Interval(1, 2, False, False)
        outer = Interval(1, 2, True, True)
        assert inner.subset_of(outer)
        assert not outer.subset_of(inner)
        assert inner.subset_of(FULL_LINE)


class TestIntervalSet:
    def test_normalization_merges_overlaps(self):
        s = IntervalSet([Interval(0, 2, True, True), Interval(1, 3, True, True)])
        assert len(s.intervals) == 1
        assert s.intervals[0].high == 3

    def test_touching_closed_open_merges(self):
        s = IntervalSet([Interval(0, 1, True, True), Interval(1, 2, False, True)])
        assert len(s.intervals) == 1

    def test_touching_open_open_does_not_merge(self):
        s = IntervalSet([Interval(0, 1, True, False), Interval(1, 2, False, True)])
        assert len(s.intervals) == 2

    def test_complement_roundtrip_membership(self):
        s = IntervalSet([Interval(0, 1, True, False), Interval(3, 4, False, True)])
        c = s.complement()
        for x in (-1, 0, 0.5, 1, 2, 3, 3.5, 4, 5):
            assert s.contains(x) != c.contains(x)

    def test_complement_of_full_is_empty(self):
        assert IntervalSet.full().complement().is_empty

    def test_subset_of(self):
        small = IntervalSet([Interval(1, 2, True, True)])
        big = IntervalSet([Interval(0, 3, True, True)])
        split = IntervalSet(
            [Interval(0, 1.5, True, True), Interval(1.6, 3, True, True)]
        )
        assert small.subset_of(big)
        assert not big.subset_of(small)
        assert not small.subset_of(split)  # the gap breaks inclusion
        assert IntervalSet.empty().subset_of(small)


class TestAtomTranslation:
    @pytest.mark.parametrize(
        "op, probe_in, probe_out",
        [
            ("<", 4.9, 5.0),
            ("<=", 5.0, 5.1),
            (">", 5.1, 5.0),
            (">=", 5.0, 4.9),
            ("=", 5.0, 5.1),
        ],
    )
    def test_operator_boundaries(self, op, probe_in, probe_out):
        s = atom_to_interval_set(atom(X, op, 5), X)
        assert s.contains(probe_in)
        assert not s.contains(probe_out)

    def test_disequality_is_complement_of_point(self):
        s = atom_to_interval_set(atom(X, "!=", 5), X)
        assert not s.contains(5.0)
        assert s.contains(4.9999) and s.contains(5.0001)

    def test_two_variable_atom_rejected(self):
        with pytest.raises(ConstraintError):
            atom_to_interval_set(atom(X, "<", Y), X)

    def test_wrong_variable_rejected(self):
        with pytest.raises(ConstraintError):
            atom_to_interval_set(atom(X, "<", 5), Y)


class TestDecisions:
    def test_satisfiable(self):
        assert interval_satisfiable([atom(X, ">", 1), atom(X, "<", 2)], X)
        assert not interval_satisfiable([atom(X, ">", 2), atom(X, "<", 1)], X)

    def test_implication_by_inclusion(self):
        narrow = [atom(X, ">", 40), atom(X, "<", 50)]
        wide = [atom(X, ">", 30)]
        assert interval_implies(narrow, wide, X)
        assert not interval_implies(wide, narrow, X)


class TestGswCrossCheck:
    """The two provers must agree on the single-variable fragment."""

    OPS = ["<", "<=", ">", ">=", "=", "!="]

    def _random_atoms(self, rng):
        return [
            atom(X, rng.choice(self.OPS), rng.randint(-4, 4))
            for _ in range(rng.randint(1, 4))
        ]

    def test_satisfiability_agreement(self):
        rng = random.Random(3)
        for _ in range(400):
            atoms = self._random_atoms(rng)
            assert GswSolver.satisfiable(atoms) == interval_satisfiable(atoms, X)

    def test_implication_agreement(self):
        rng = random.Random(4)
        disagreements = []
        for _ in range(400):
            premises = self._random_atoms(rng)
            conclusion = atom(X, rng.choice(self.OPS), rng.randint(-4, 4))
            gsw = GswSolver.implies(premises, conclusion)
            ivl = interval_implies(premises, [conclusion], X)
            if gsw != ivl:
                disagreements.append((premises, conclusion, gsw, ivl))
        assert not disagreements, disagreements[:3]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
            st.integers(-5, 5),
        ),
        min_size=1,
        max_size=5,
    ),
    st.integers(-6, 6),
)
def test_property_membership_matches_atom_evaluation(spec, probe):
    """x is in intervals(conjunction) iff every atom holds at x."""
    from repro.constraints.terms import ZERO

    atoms = [atom(X, op, c) for op, c in spec]
    s = atoms_to_interval_set(atoms, X)
    expected = all(a.evaluate({X: float(probe), ZERO: 0.0}) for a in atoms)
    assert s.contains(float(probe)) == expected
