"""The GSW decision procedures: satisfiability and implication.

Includes the worked implications of the paper's Example 5 and a
brute-force soundness check: whenever the solver says "unsatisfiable" or
"implied", random sampling must never find a counterexample.
"""

import random

import pytest

from repro.constraints.atoms import atom, cat_atom
from repro.constraints.gsw import BoundClosure, GswSolver, Weight
from repro.constraints.terms import Domain, Variable

A = Variable("a")
B = Variable("b")
C = Variable("c")
NAME = Variable("name", Domain.CATEGORICAL)


class TestWeight:
    def test_ordering_prefers_smaller_constant(self):
        assert Weight(1.0, 0) < Weight(2.0, -1)

    def test_strict_is_tighter_at_equal_constant(self):
        assert Weight(1.0, -1) < Weight(1.0, 0)

    def test_addition_propagates_strictness(self):
        assert (Weight(1.0, 0) + Weight(2.0, -1)) == Weight(3.0, -1)
        assert (Weight(1.0, 0) + Weight(2.0, 0)) == Weight(3.0, 0)

    def test_entails(self):
        assert Weight(1.0, 0).entails(Weight(2.0, 0))
        assert Weight(2.0, 0).entails(Weight(2.0, 0))
        assert not Weight(2.0, 0).entails(Weight(2.0, -1))
        assert Weight(2.0, -1).entails(Weight(2.0, 0))
        assert not Weight(3.0, -1).entails(Weight(2.0, 0))

    def test_negative_cycle(self):
        assert Weight(-0.5, 0).is_negative_cycle()
        assert Weight(0.0, -1).is_negative_cycle()
        assert not Weight(0.0, 0).is_negative_cycle()


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert GswSolver.satisfiable([])

    def test_simple_bounds(self):
        assert GswSolver.satisfiable([atom(A, ">", 10), atom(A, "<", 20)])
        assert not GswSolver.satisfiable([atom(A, ">", 20), atom(A, "<", 10)])

    def test_boundary_strictness(self):
        assert GswSolver.satisfiable([atom(A, ">=", 10), atom(A, "<=", 10)])
        assert not GswSolver.satisfiable([atom(A, ">", 10), atom(A, "<=", 10)])
        assert not GswSolver.satisfiable([atom(A, ">=", 10), atom(A, "<", 10)])

    def test_transitive_chain(self):
        chain = [atom(A, "<", B), atom(B, "<", C), atom(C, "<", A)]
        assert not GswSolver.satisfiable(chain)

    def test_transitive_chain_with_offsets(self):
        # a <= b - 1, b <= c - 1, c <= a + 2  -> feasible exactly
        assert GswSolver.satisfiable(
            [atom(A, "<=", B, -1), atom(B, "<=", C, -1), atom(C, "<=", A, 2)]
        )
        # tighten to c <= a + 1: cycle weight -1 -> infeasible
        assert not GswSolver.satisfiable(
            [atom(A, "<=", B, -1), atom(B, "<=", C, -1), atom(C, "<=", A, 1)]
        )

    def test_equality_chains(self):
        assert not GswSolver.satisfiable(
            [atom(A, "=", B, 1), atom(B, "=", C, 1), atom(A, "=", C, 3)]
        )
        assert GswSolver.satisfiable(
            [atom(A, "=", B, 1), atom(B, "=", C, 1), atom(A, "=", C, 2)]
        )

    def test_self_contradiction(self):
        assert not GswSolver.satisfiable([atom(A, "<", A, 0)])

    def test_self_tautology_ignored(self):
        assert GswSolver.satisfiable([atom(A, "<=", A, 0), atom(A, ">", 5)])

    def test_disequality_forced_equality(self):
        assert not GswSolver.satisfiable(
            [atom(A, ">=", 5), atom(A, "<=", 5), atom(A, "!=", 5)]
        )

    def test_disequality_with_room(self):
        assert GswSolver.satisfiable([atom(A, ">=", 5), atom(A, "!=", 5)])

    def test_disequality_between_variables(self):
        assert not GswSolver.satisfiable(
            [atom(A, "=", B, 2), atom(A, "!=", B, 2)]
        )
        assert GswSolver.satisfiable([atom(A, "<=", B, 2), atom(A, "!=", B, 2)])

    def test_self_disequality(self):
        assert not GswSolver.satisfiable([atom(A, "!=", A, 0)])
        assert GswSolver.satisfiable([atom(A, "!=", A, 1)])

    def test_categorical(self):
        assert not GswSolver.satisfiable(
            [cat_atom(NAME, "=", "IBM"), cat_atom(NAME, "=", "INTC")]
        )
        assert not GswSolver.satisfiable(
            [cat_atom(NAME, "=", "IBM"), cat_atom(NAME, "!=", "IBM")]
        )
        assert GswSolver.satisfiable(
            [cat_atom(NAME, "!=", "IBM"), cat_atom(NAME, "!=", "INTC")]
        )

    def test_categorical_independent_of_numeric(self):
        assert GswSolver.satisfiable(
            [cat_atom(NAME, "=", "IBM"), atom(A, ">", 5), atom(A, "<", 6)]
        )


class TestImplication:
    def test_reflexive(self):
        a = atom(A, "<", B, 2)
        assert GswSolver.implies([a], a)

    def test_weakening_constant(self):
        assert GswSolver.implies([atom(A, "<", 5)], atom(A, "<", 6))
        assert not GswSolver.implies([atom(A, "<", 6)], atom(A, "<", 5))

    def test_strict_vs_nonstrict(self):
        assert GswSolver.implies([atom(A, "<", 5)], atom(A, "<=", 5))
        assert not GswSolver.implies([atom(A, "<=", 5)], atom(A, "<", 5))

    def test_transitivity(self):
        premises = [atom(A, "<", B), atom(B, "<", C)]
        assert GswSolver.implies(premises, atom(A, "<", C))
        assert not GswSolver.implies(premises, atom(C, "<", A))

    def test_offset_arithmetic(self):
        premises = [atom(A, "<=", B, -2), atom(B, "<=", C, 1)]
        assert GswSolver.implies(premises, atom(A, "<=", C, -1))
        assert not GswSolver.implies(premises, atom(A, "<=", C, -2))

    def test_equality_implication(self):
        assert GswSolver.implies(
            [atom(A, "=", B, 1)], atom(B, "=", A, -1)
        )
        assert GswSolver.implies([atom(A, "=", 5)], atom(A, "!=", 6))

    def test_disequality_conclusion(self):
        assert GswSolver.implies([atom(A, "<", 5)], atom(A, "!=", 5))
        assert not GswSolver.implies([atom(A, "<=", 5)], atom(A, "!=", 5))

    def test_paper_example5_relations(self):
        """The six entailments the paper derives for Example 4."""
        b = Variable("price@0")
        a = Variable("price@-1")
        p1 = [atom(b, "<", a)]
        p2 = [atom(b, "<", a), atom(b, ">", 40), atom(b, "<", 50)]
        p3 = [atom(b, ">", a), atom(b, "<", 52)]
        p4 = [atom(b, ">", a)]
        assert GswSolver.implies_all(p2, p1)  # theta_21 = 1
        assert not GswSolver.satisfiable(p3 + p1)  # theta_31 = 0
        assert not GswSolver.satisfiable(p3 + p2)  # theta_32 = 0
        assert not GswSolver.satisfiable(p4 + p2)  # theta_42 = 0
        assert not GswSolver.satisfiable(p4 + p1)  # theta_41 = 0
        assert GswSolver.implies_all(p3, p4)  # phi_43 = 0

    def test_equivalent(self):
        assert GswSolver.equivalent(
            [atom(A, "<=", B, 0)], [atom(B, ">=", A, 0)]
        )
        assert not GswSolver.equivalent([atom(A, "<", B)], [atom(A, "<=", B)])


class TestBoundClosure:
    def test_tightest_bound(self):
        closure = BoundClosure([atom(A, "<=", B, 3), atom(A, "<", B, 5)])
        assert closure.bound(A, B) == Weight(3.0, 0)

    def test_unrelated_variables_unbounded(self):
        closure = BoundClosure([atom(A, "<", 5)])
        assert closure.bound(A, B) is None

    def test_forces_equality(self):
        closure = BoundClosure([atom(A, "<=", B, 2), atom(A, ">=", B, 2)])
        assert closure.forces_equality(A, B, 2)
        assert not closure.forces_equality(A, B, 1)


class TestBruteForceSoundness:
    """Random sampling must never contradict the solver's verdicts."""

    VARIABLES = [A, B, C]

    def _random_atoms(self, rng, count):
        atoms = []
        for _ in range(count):
            x = rng.choice(self.VARIABLES)
            op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
            if rng.random() < 0.5:
                atoms.append(atom(x, op, rng.randint(-5, 5)))
            else:
                y = rng.choice([v for v in self.VARIABLES if v != x])
                atoms.append(atom(x, op, y, rng.randint(-3, 3)))
        return atoms

    def _satisfied_by_sampling(self, atoms, rng, samples=4000):
        from repro.constraints.terms import ZERO

        for _ in range(samples):
            assignment = {v: float(rng.randint(-8, 8)) for v in self.VARIABLES}
            assignment[ZERO] = 0.0
            if all(a.evaluate(assignment) for a in atoms):
                return True
        return False

    def test_unsat_verdicts_have_no_models(self):
        rng = random.Random(0)
        checked = 0
        for _ in range(300):
            atoms = self._random_atoms(rng, rng.randint(2, 5))
            if not GswSolver.satisfiable(atoms):
                checked += 1
                assert not self._satisfied_by_sampling(atoms, rng, samples=800)
        assert checked > 10  # the generator must actually produce unsat sets

    def test_implication_verdicts_hold_on_models(self):
        rng = random.Random(1)
        from repro.constraints.terms import ZERO

        checked = 0
        for _ in range(300):
            premises = self._random_atoms(rng, rng.randint(2, 4))
            conclusion = self._random_atoms(rng, 1)[0]
            if GswSolver.implies(premises, conclusion):
                for _ in range(600):
                    assignment = {v: float(rng.randint(-8, 8)) for v in self.VARIABLES}
                    assignment[ZERO] = 0.0
                    if all(a.evaluate(assignment) for a in premises):
                        checked += 1
                        assert conclusion.evaluate(assignment)
        assert checked > 50


class TestCompleteness:
    """Known-decidable cases must not be reported unknown/unproven."""

    @pytest.mark.parametrize("bound", [0, 1, -1, 2.5])
    def test_sharp_constant_bounds(self, bound):
        assert GswSolver.implies([atom(A, "<", bound)], atom(A, "<=", bound))

    def test_combined_chain_and_constants(self):
        premises = [atom(A, "<", B), atom(B, "<=", 10)]
        assert GswSolver.implies(premises, atom(A, "<", 10))
        assert GswSolver.implies(premises, atom(A, "<", 11))
        assert not GswSolver.implies(premises, atom(A, "<", 9))
