"""Multidimensional interval boxes (the [13] extension)."""

import math

from repro.constraints.boxes import Box, BoxSet
from repro.constraints.intervals import Interval
from repro.constraints.terms import Variable

X = Variable("x")
Y = Variable("y")
T = Variable("t")


def iv(low, high, low_closed=True, high_closed=True):
    return Interval(low, high, low_closed, high_closed)


class TestBox:
    def test_unconstrained_contains_everything(self):
        box = Box.unconstrained()
        assert not box.empty
        assert box.contains({X: 1e9, Y: -1e9})

    def test_membership(self):
        box = Box({X: iv(0, 10), Y: iv(0, 5)})
        assert box.contains({X: 5.0, Y: 2.0})
        assert not box.contains({X: 5.0, Y: 7.0})

    def test_openness_respected(self):
        box = Box({X: iv(0, 10, False, True)})
        assert not box.contains({X: 0.0})
        assert box.contains({X: 10.0})

    def test_empty_dimension_empties_box(self):
        assert Box({X: iv(5, 4)}).empty
        assert not Box({X: iv(4, 5)}).empty

    def test_intersection(self):
        a = Box({X: iv(0, 10), Y: iv(0, 5)})
        b = Box({X: iv(5, 20), T: iv(0, 1)})
        c = a.intersect(b)
        assert c.interval(X) == iv(5, 10)
        assert c.interval(Y) == iv(0, 5)
        assert c.interval(T) == iv(0, 1)

    def test_subset(self):
        inner = Box({X: iv(1, 2), Y: iv(1, 2)})
        outer = Box({X: iv(0, 3)})  # Y unconstrained
        assert inner.subset_of(outer)
        assert not outer.subset_of(inner)

    def test_empty_is_subset_of_anything(self):
        assert Box({X: iv(5, 4)}).subset_of(Box({Y: iv(0, 1)}))

    def test_disjoint(self):
        a = Box({X: iv(0, 1)})
        b = Box({X: iv(2, 3)})
        c = Box({Y: iv(0, 1)})
        assert a.disjoint_from(b)
        assert not a.disjoint_from(c)  # different axes overlap

    def test_touching_closed_boxes_not_disjoint(self):
        a = Box({X: iv(0, 1)})
        b = Box({X: iv(1, 2)})
        assert not a.disjoint_from(b)
        open_b = Box({X: iv(1, 2, False, True)})
        assert a.disjoint_from(open_b)

    def test_equality_ignores_redundant_full_axes(self):
        from repro.constraints.intervals import FULL_LINE

        assert Box({X: iv(0, 1)}) == Box({X: iv(0, 1), Y: FULL_LINE})


class TestBoxSet:
    def test_empty_boxes_dropped(self):
        s = BoxSet([Box({X: iv(5, 4)}), Box({X: iv(0, 1)})])
        assert len(s.boxes) == 1

    def test_membership(self):
        s = BoxSet([Box({X: iv(0, 1)}), Box({X: iv(5, 6)})])
        assert s.contains({X: 0.5})
        assert s.contains({X: 5.5})
        assert not s.contains({X: 3.0})

    def test_intersection(self):
        left = BoxSet([Box({X: iv(0, 10)})])
        right = BoxSet([Box({X: iv(5, 20)}), Box({X: iv(30, 40)})])
        inter = left.intersect(right)
        assert len(inter.boxes) == 1
        assert inter.boxes[0].interval(X) == iv(5, 10)

    def test_subset_single_witness(self):
        small = BoxSet([Box({X: iv(1, 2), Y: iv(1, 2)})])
        big = BoxSet([Box({X: iv(0, 3), Y: iv(0, 3)})])
        assert small.subset_of(big)
        assert not big.subset_of(small)

    def test_subset_conservatism_documented(self):
        """A union covering a box collectively is (soundly) not proven."""
        whole = BoxSet([Box({X: iv(0, 10)})])
        halves = BoxSet([Box({X: iv(0, 5)}), Box({X: iv(5, 10)})])
        assert halves.subset_of(whole)
        assert not whole.subset_of(halves)  # conservative, never wrong-True

    def test_disjointness_exact(self):
        storm_region = BoxSet(
            [Box({X: iv(0, 10), Y: iv(0, 10), T: iv(0, 24)})]
        )
        sensor = BoxSet([Box({X: iv(20, 30), Y: iv(0, 10)})])
        overlapping_sensor = BoxSet([Box({X: iv(5, 30)})])
        assert storm_region.disjoint_from(sensor)
        assert not storm_region.disjoint_from(overlapping_sensor)

    def test_projection(self):
        s = BoxSet([Box({X: iv(0, 1), Y: iv(0, 9)}), Box({X: iv(5, 6)})])
        shadow = s.projection(X)
        assert shadow.contains(0.5) and shadow.contains(5.5)
        assert not shadow.contains(3.0)
        # Unconstrained axis projects to the whole line.
        assert s.projection(T).contains(math.pi * 1e6)


class TestSpatioTemporalScenario:
    """The Section 8 motivation: implication between spatio-temporal
    predicates becomes box inclusion."""

    def test_storm_cell_implication(self):
        # "within the inner basin during hour 6-12"
        specific = Box({X: iv(2, 4), Y: iv(2, 4), T: iv(6, 12)})
        # "within the basin during the first day"
        general = Box({X: iv(0, 10), Y: iv(0, 10), T: iv(0, 24)})
        assert specific.subset_of(general)  # p_specific => p_general
        night = Box({T: iv(30, 40)})
        assert specific.disjoint_from(night)  # p_specific => NOT p_night
