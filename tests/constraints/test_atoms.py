"""Atom construction, negation, evaluation, tautology/contradiction."""

import pytest

from repro.constraints.atoms import Atom, CategoricalAtom, Op, atom, cat_atom
from repro.constraints.terms import Domain, Variable, ZERO, ratio_variable
from repro.errors import ConstraintError

X = Variable("x")
Y = Variable("y")
NAME = Variable("name", Domain.CATEGORICAL)


class TestOp:
    @pytest.mark.parametrize(
        "op, negated",
        [
            (Op.EQ, Op.NE),
            (Op.NE, Op.EQ),
            (Op.LT, Op.GE),
            (Op.LE, Op.GT),
            (Op.GT, Op.LE),
            (Op.GE, Op.LT),
        ],
    )
    def test_negation_pairs(self, op, negated):
        assert op.negated is negated
        assert negated.negated is op

    @pytest.mark.parametrize(
        "op, flipped",
        [(Op.EQ, Op.EQ), (Op.NE, Op.NE), (Op.LT, Op.GT), (Op.LE, Op.GE)],
    )
    def test_flip(self, op, flipped):
        assert op.flipped is flipped

    def test_holds(self):
        assert Op.LT.holds(1, 2)
        assert not Op.LT.holds(2, 2)
        assert Op.LE.holds(2, 2)
        assert Op.NE.holds(1, 2)
        assert Op.EQ.holds(2, 2)
        assert Op.GE.holds(2, 2)
        assert Op.GT.holds(3, 2)


class TestAtomConstruction:
    def test_constant_form(self):
        a = atom(X, "<", 50)
        assert a.y == ZERO and a.c == 50.0 and a.op is Op.LT

    def test_variable_form_with_offset(self):
        a = atom(X, ">=", Y, 3)
        assert a.y == Y and a.c == 3.0

    def test_constant_plus_offset_folds(self):
        a = atom(X, "<", 10, 5)
        assert a.y == ZERO and a.c == 15.0

    def test_zero_on_left_rejected(self):
        with pytest.raises(ConstraintError):
            Atom(ZERO, Op.LT, X)

    def test_bad_rhs_rejected(self):
        with pytest.raises(ConstraintError):
            atom(X, "<", "fifty")  # type: ignore[arg-type]

    def test_categorical_variable_in_numeric_atom_rejected(self):
        with pytest.raises(ConstraintError):
            atom(NAME, "<", 5)


class TestAtomNegation:
    def test_negate_is_involution(self):
        a = atom(X, "<", Y, 2)
        assert a.negate().negate() == a

    def test_negate_operator(self):
        assert atom(X, "<", 5).negate().op is Op.GE
        assert atom(X, "=", 5).negate().op is Op.NE


class TestAtomSemantics:
    def test_evaluate_constant(self):
        a = atom(X, "<", 5)
        assert a.evaluate({X: 4.0, ZERO: 0.0})
        assert not a.evaluate({X: 6.0, ZERO: 0.0})

    def test_evaluate_two_variables(self):
        a = atom(X, ">=", Y, 1)
        assert a.evaluate({X: 5.0, Y: 4.0})
        assert not a.evaluate({X: 4.5, Y: 4.0})

    def test_self_comparison_tautology(self):
        assert atom(X, "<=", X, 0.0).is_tautology()
        assert atom(X, "<", X, 1.0).is_tautology()
        assert not atom(X, "<", X, 0.0).is_tautology()
        assert not atom(X, "<", Y).is_tautology()

    def test_self_comparison_contradiction(self):
        assert atom(X, "<", X, 0.0).is_contradiction()
        assert atom(X, "=", X, 1.0).is_contradiction()
        assert not atom(X, "=", X, 0.0).is_contradiction()

    def test_variables_property(self):
        assert atom(X, "<", 5).variables == frozenset({X})
        assert atom(X, "<", Y).variables == frozenset({X, Y})

    def test_str_forms(self):
        assert str(atom(X, "<", 50)) == "x < 50"
        assert str(atom(X, "<", Y)) == "x < y"
        assert str(atom(X, "<", Y, 2)) == "x < y + 2"
        assert str(atom(X, "<", Y, -2)) == "x < y - 2"


class TestCategoricalAtoms:
    def test_roundtrip(self):
        a = cat_atom(NAME, "=", "IBM")
        assert a.evaluate({NAME: "IBM"})
        assert not a.evaluate({NAME: "INTC"})

    def test_negate(self):
        a = cat_atom(NAME, "=", "IBM").negate()
        assert a.op is Op.NE
        assert a.evaluate({NAME: "INTC"})

    def test_ordering_op_rejected(self):
        with pytest.raises(ConstraintError):
            cat_atom(NAME, "<", "IBM")

    def test_numeric_variable_rejected(self):
        with pytest.raises(ConstraintError):
            cat_atom(X, "=", "IBM")

    def test_never_tautology_or_contradiction(self):
        a = cat_atom(NAME, "=", "IBM")
        assert not a.is_tautology()
        assert not a.is_contradiction()


class TestRatioVariable:
    def test_naming_is_canonical(self):
        assert ratio_variable(X, Y) == ratio_variable(X, Y)
        assert ratio_variable(X, Y).name == "x/y"

    def test_categorical_operand_rejected(self):
        with pytest.raises(ValueError):
            ratio_variable(NAME, Y)
