"""The Section 6 multiplicative rewrite X op C*Y -> X/Y op C."""

import pytest

from repro.constraints.atoms import Op
from repro.constraints.gsw import GswSolver
from repro.constraints.rewrite import MultiplicativeAtom, ratio_value, rewrite_multiplicative
from repro.constraints.terms import Variable, ZERO
from repro.errors import ConstraintError

X = Variable("price@0")
Y = Variable("price@-1")


class TestRewrite:
    def test_produces_ratio_bound(self):
        rewritten = rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, 0.98, Y))
        assert rewritten.x.name == "price@0/price@-1"
        assert rewritten.y == ZERO
        assert rewritten.c == pytest.approx(0.98)
        assert rewritten.op is Op.LT

    def test_nonpositive_coefficient_rejected(self):
        with pytest.raises(ConstraintError):
            rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, 0.0, Y))
        with pytest.raises(ConstraintError):
            rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, -1.5, Y))

    def test_rewritten_atoms_compose_in_gsw(self):
        """The paper's point: drop >2% contradicts rise >2% via the ratio."""
        drop = rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, 0.98, Y))
        rise = rewrite_multiplicative(MultiplicativeAtom(X, Op.GT, 1.02, Y))
        flat_low = rewrite_multiplicative(MultiplicativeAtom(X, Op.GT, 0.98, Y))
        flat_high = rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, 1.02, Y))
        assert not GswSolver.satisfiable([drop, rise])
        assert not GswSolver.satisfiable([drop, flat_low])
        assert GswSolver.satisfiable([flat_low, flat_high])
        assert GswSolver.implies([rise], flat_low)  # >1.02 implies >0.98

    def test_semantics_preserved_on_positive_domain(self):
        """x < c*y  iff  x/y < c whenever y > 0."""
        import random

        rng = random.Random(9)
        rewritten = rewrite_multiplicative(MultiplicativeAtom(X, Op.LT, 0.98, Y))
        for _ in range(500):
            x = rng.uniform(0.1, 100)
            y = rng.uniform(0.1, 100)
            original = x < 0.98 * y
            via_ratio = rewritten.evaluate(
                {rewritten.x: ratio_value(x, y), ZERO: 0.0}
            )
            assert original == via_ratio


class TestRatioValue:
    def test_positive_denominator(self):
        assert ratio_value(3.0, 2.0) == pytest.approx(1.5)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ConstraintError):
            ratio_value(3.0, 0.0)

    def test_negative_denominator_rejected(self):
        with pytest.raises(ConstraintError):
            ratio_value(3.0, -1.0)
