"""Disjunctive predicates (Section 8 extension): DNF algebra + decisions."""

import pytest

from repro.constraints.atoms import atom
from repro.constraints.conjunction import Conjunction
from repro.constraints.dnf import Disjunction
from repro.constraints.terms import Variable, ZERO

A = Variable("a")
B = Variable("b")


def band(low, high):
    return Conjunction([atom(A, ">", low), atom(A, "<", high)])


class TestConstruction:
    def test_needs_a_disjunct(self):
        with pytest.raises(ValueError):
            Disjunction([])

    def test_of_wraps_single(self):
        d = Disjunction.of(band(0, 1))
        assert len(d) == 1

    def test_or_concatenates(self):
        d = Disjunction.of(band(0, 1)) | Disjunction.of(band(5, 6))
        assert len(d) == 2

    def test_and_distributes(self):
        left = Disjunction([band(0, 10), band(20, 30)])
        right = Disjunction([band(5, 25)])
        combined = left & right
        assert len(combined) == 2
        assert combined.satisfiable()


class TestDecisions:
    def test_satisfiable_if_any_disjunct_is(self):
        dead = band(5, 4)
        assert not Disjunction([dead]).satisfiable()
        assert Disjunction([dead, band(0, 1)]).satisfiable()

    def test_implies_conjunction(self):
        d = Disjunction([band(40, 45), band(46, 50)])
        assert d.implies_conjunction(Conjunction([atom(A, ">", 30)]))
        assert not d.implies_conjunction(Conjunction([atom(A, ">", 42)]))

    def test_implies_dnf_sound(self):
        narrow = Disjunction([band(1, 2)])
        wide = Disjunction([band(0, 3), band(10, 20)])
        assert narrow.implies(wide)
        assert not wide.implies(narrow)

    def test_implies_is_incomplete_not_unsound(self):
        # (0,10) implies (0,5] OR [5,10) collectively but no single
        # disjunct contains it; a False answer here is the documented
        # conservatism, never a wrong True.
        whole = Disjunction([band(0, 10)])
        halves = Disjunction(
            [
                Conjunction([atom(A, ">", 0), atom(A, "<=", 5)]),
                Conjunction([atom(A, ">=", 5), atom(A, "<", 10)]),
            ]
        )
        assert halves.implies(whole)  # each half fits in the whole
        assert not whole.implies(halves)  # undetected, conservatively False

    def test_conjunction_satisfiable_with(self):
        left = Disjunction([band(0, 1), band(10, 11)])
        right = Disjunction([band(10.5, 20)])
        assert left.conjunction_satisfiable_with(right)
        assert not left.conjunction_satisfiable_with(Disjunction([band(30, 40)]))


class TestNegation:
    def test_negate_band(self):
        d = Disjunction([band(0, 10)])
        negated = d.negate()
        # NOT (a>0 AND a<10) = a<=0 OR a>=10
        assert negated.satisfiable()
        assignments = [
            ({A: -1.0, ZERO: 0.0}, True),
            ({A: 5.0, ZERO: 0.0}, False),
            ({A: 11.0, ZERO: 0.0}, True),
        ]
        for assignment, expected in assignments:
            assert negated.evaluate(assignment) == expected

    def test_negate_of_true_is_unsatisfiable(self):
        true_dnf = Disjunction([Conjunction([])])
        assert not true_dnf.negate().satisfiable()

    def test_double_negation_preserves_models(self):
        d = Disjunction([band(0, 2), band(5, 7)])
        dd = d.negate().negate()
        for probe in (-1.0, 1.0, 3.0, 6.0, 8.0):
            assignment = {A: probe, ZERO: 0.0}
            assert d.evaluate(assignment) == dd.evaluate(assignment)

    def test_tautology(self):
        taut = Disjunction(
            [
                Conjunction([atom(A, "<=", 5)]),
                Conjunction([atom(A, ">", 5)]),
            ]
        )
        assert taut.is_tautology()
        assert not Disjunction([band(0, 10)]).is_tautology()

    def test_negation_implies(self):
        # NOT (a < 5) = a >= 5, which implies a > 0.
        d = Disjunction([Conjunction([atom(A, "<", 5)])])
        target = Disjunction([Conjunction([atom(A, ">", 0)])])
        assert d.negation_implies(target)
        assert not d.negation_implies(Disjunction([Conjunction([atom(A, ">", 10)])]))
