"""Synthetic data generators: determinism, calibration, structure."""

import datetime as dt

import pytest

from repro.data.djia import DEFAULT_SEED, business_days, djia_table, synthetic_djia
from repro.data.quotes import DEFAULT_TICKERS, quote_table, synthetic_quotes
from repro.data.random_walk import (
    geometric_walk,
    regime_switching_walk,
    runs_histogram,
    sawtooth,
)


class TestGeometricWalk:
    def test_deterministic(self):
        assert geometric_walk(100, seed=5) == geometric_walk(100, seed=5)
        assert geometric_walk(100, seed=5) != geometric_walk(100, seed=6)

    def test_length_and_positivity(self):
        prices = geometric_walk(500, seed=1)
        assert len(prices) == 500
        assert all(p > 0 for p in prices)

    def test_zero_length(self):
        assert geometric_walk(0) == []

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            geometric_walk(-1)

    def test_volatility_scales_moves(self):
        calm = geometric_walk(2000, volatility=0.001, shock_probability=0, seed=2)
        wild = geometric_walk(2000, volatility=0.05, shock_probability=0, seed=2)
        calm_moves = runs_histogram(calm, band=0.02)
        wild_moves = runs_histogram(wild, band=0.02)
        assert calm_moves["flat"] > wild_moves["flat"]


class TestRegimeSwitchingWalk:
    def test_deterministic(self):
        assert regime_switching_walk(200, seed=3) == regime_switching_walk(200, seed=3)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            regime_switching_walk(10, calm_persistence=1.5)

    def test_volatility_clusters(self):
        """>2% moves must be clustered: the probability that a big-move
        day follows a big-move day far exceeds the base rate."""
        prices = regime_switching_walk(6000, seed=4)
        big = []
        for previous, current in zip(prices, prices[1:]):
            big.append(abs(current / previous - 1.0) > 0.02)
        base_rate = sum(big) / len(big)
        followers = [b for a, b in zip(big, big[1:]) if a]
        conditional = sum(followers) / max(1, len(followers))
        assert conditional > 2 * base_rate


class TestSawtooth:
    def test_respects_floor(self):
        prices = sawtooth(2000, floor=8.0, seed=7)
        assert min(prices) >= 8.0

    def test_run_structure(self):
        prices = sawtooth(500, min_run=10, max_run=10, seed=7)
        # Direction flips exactly every 10 steps (after the first run).
        directions = [1 if b > a else -1 for a, b in zip(prices, prices[1:])]
        changes = [i for i in range(1, len(directions)) if directions[i] != directions[i - 1]]
        gaps = [b - a for a, b in zip(changes, changes[1:])]
        assert gaps and all(g == 10 for g in gaps[:-1])

    def test_run_bounds_validated(self):
        with pytest.raises(ValueError):
            sawtooth(10, min_run=0)
        with pytest.raises(ValueError):
            sawtooth(10, min_run=5, max_run=3)


class TestRunsHistogram:
    def test_exact_counts(self):
        prices = [100, 103, 102, 102.5, 90]
        h = runs_histogram(prices, band=0.02)
        assert h == {"up": 1, "down": 1, "flat": 2}

    def test_band_zero_counts_ties_as_flat(self):
        assert runs_histogram([1, 1, 2], band=0.0) == {"up": 1, "down": 0, "flat": 1}

    def test_total_is_n_minus_one(self):
        prices = geometric_walk(100, seed=9)
        h = runs_histogram(prices, band=0.02)
        assert sum(h.values()) == 99


class TestSyntheticDjia:
    def test_calendar_span(self):
        series = synthetic_djia()
        dates = [day for day, _ in series]
        assert dates[0] == dt.date(1976, 1, 2)
        assert dates[-1] == dt.date(2000, 12, 29)
        assert all(day.weekday() < 5 for day in dates)
        assert 6000 < len(series) < 6600  # ~25 years of business days

    def test_deterministic_default_seed(self):
        assert synthetic_djia() == synthetic_djia(DEFAULT_SEED)

    def test_band_statistics_in_historical_ballpark(self):
        """A few percent of days beyond the 2% band, like the real DJIA."""
        prices = [price for _, price in synthetic_djia()]
        h = runs_histogram(prices, band=0.02)
        beyond = (h["up"] + h["down"]) / sum(h.values())
        assert 0.01 < beyond < 0.10

    def test_table_wrapper(self):
        table = djia_table()
        assert table.name == "djia"
        assert len(table) == len(synthetic_djia())
        assert set(table.schema.names) == {"date", "price"}

    def test_business_days_helper(self):
        days = business_days(dt.date(2000, 1, 1), dt.date(2000, 1, 9))
        # Jan 1/2 2000 = Sat/Sun; 3-7 = Mon-Fri; 8/9 = Sat/Sun.
        assert [d.day for d in days] == [3, 4, 5, 6, 7]


class TestSyntheticQuotes:
    def test_all_tickers_present(self):
        rows = synthetic_quotes(days=50)
        assert {row["name"] for row in rows} == set(DEFAULT_TICKERS)

    def test_days_per_ticker(self):
        rows = synthetic_quotes(days=50)
        per = [row for row in rows if row["name"] == "IBM"]
        assert len(per) == 50

    def test_rows_not_fully_sorted(self):
        """Figure 1: cluster input need not arrive ordered."""
        rows = synthetic_quotes(days=100)
        dates = [row["date"] for row in rows if row["name"] == rows[0]["name"]]
        assert dates != sorted(dates)

    def test_table_wrapper_validates(self):
        table = quote_table(days=30)
        assert len(table) == 30 * len(DEFAULT_TICKERS)

    def test_deterministic(self):
        assert synthetic_quotes(days=20, seed=5) == synthetic_quotes(days=20, seed=5)


class TestSyntheticWeather:
    def test_deterministic(self):
        from repro.data.weather import synthetic_weather

        assert synthetic_weather(days=30, seed=5) == synthetic_weather(days=30, seed=5)

    def test_schema_and_volume(self):
        from repro.data.weather import DEFAULT_STATIONS, weather_table

        table = weather_table(days=60)
        assert len(table) == 60 * len(DEFAULT_STATIONS)
        assert set(table.schema.names) == {"station", "date", "sky", "temp", "rain"}

    def test_rain_only_on_rain_days(self):
        from repro.data.weather import synthetic_weather

        for row in synthetic_weather(days=120):
            if row["sky"] == "rain":
                assert row["rain"] > 0
            else:
                assert row["rain"] == 0.0

    def test_sky_states_valid_and_persistent(self):
        from repro.data.weather import synthetic_weather

        rows = [r for r in synthetic_weather(days=365) if r["station"] == "LAX"]
        skies = [r["sky"] for r in rows]
        assert set(skies) <= {"sunny", "cloudy", "rain"}
        # Markov persistence: same-state transitions dominate uniform chance.
        same = sum(1 for a, b in zip(skies, skies[1:]) if a == b)
        assert same / (len(skies) - 1) > 0.40

    def test_sunny_days_query_matches_manual_count(self):
        """The intro example, checked against a direct scan."""
        from repro.data.weather import weather_table
        from repro.engine.catalog import Catalog
        from repro.engine.executor import Executor

        table = weather_table(days=200)
        catalog = Catalog([table])
        result = Executor(catalog).execute(
            "SELECT A.station, A.date FROM weather CLUSTER BY station "
            "SEQUENCE BY date AS (A, B, C) "
            "WHERE A.sky = 'sunny' AND B.sky = 'sunny' AND C.sky = 'sunny'"
        )
        expected = 0
        by_station = {}
        for row in table:
            by_station.setdefault(row["station"], []).append(row)
        for rows in by_station.values():
            rows.sort(key=lambda r: r["date"])
            index = 0
            while index + 2 < len(rows):
                if all(rows[index + k]["sky"] == "sunny" for k in range(3)):
                    expected += 1
                    index += 3  # non-overlapping
                else:
                    index += 1
        assert len(result) == expected
