"""AST node behaviour: conjunct flattening, rendering, output names."""

from repro.sqlts import ast


def num(value):
    return ast.NumberLit(value)


def path(var, attr="price"):
    return ast.VarPath(var, None, (), attr)


def cmp_(op, left, right):
    return ast.Comparison(op, left, right)


class TestConjuncts:
    def test_none_is_empty(self):
        assert ast.conjuncts(None) == []

    def test_single_comparison(self):
        c = cmp_("<", path("X"), num(5))
        assert ast.conjuncts(c) == [c]

    def test_nested_ands_flatten(self):
        a = cmp_("<", path("X"), num(1))
        b = cmp_("<", path("Y"), num(2))
        c = cmp_("<", path("Z"), num(3))
        tree = ast.And(ast.And(a, b), c)
        assert ast.conjuncts(tree) == [a, b, c]

    def test_or_is_one_conjunct(self):
        a = cmp_("<", path("X"), num(1))
        b = cmp_("<", path("X"), num(2))
        either = ast.Or(a, b)
        assert ast.conjuncts(either) == [either]

    def test_not_is_one_conjunct(self):
        negated = ast.Not(cmp_("<", path("X"), num(1)))
        assert ast.conjuncts(negated) == [negated]


class TestRendering:
    def test_varpath_forms(self):
        assert str(ast.VarPath("X", None, (), "price")) == "X.price"
        assert str(ast.VarPath("X", None, ("previous",), "price")) == "X.previous.price"
        assert str(ast.VarPath("X", "first", (), "date")) == "FIRST(X).date"
        assert str(ast.VarPath("Y", "last", ("next",), "date")) == "LAST(Y).next.date"

    def test_literals(self):
        assert str(num(5)) == "5"
        assert str(num(1.15)) == "1.15"
        assert str(ast.StringLit("IBM")) == "'IBM'"

    def test_arithmetic(self):
        expr = ast.BinOp("*", num(1.15), path("X"))
        assert str(expr) == "(1.15 * X.price)"
        assert str(ast.Neg(num(5))) == "(-5)"

    def test_boolean(self):
        a = cmp_("<", path("X"), num(1))
        b = cmp_(">", path("Y"), num(2))
        assert str(ast.And(a, b)) == "(X.price < 1 AND Y.price > 2)"
        assert str(ast.Or(a, b)) == "(X.price < 1 OR Y.price > 2)"
        assert str(ast.Not(a)) == "(NOT X.price < 1)"

    def test_pattern_var(self):
        assert str(ast.PatternVar("Y", star=True)) == "*Y"
        assert str(ast.PatternVar("Y")) == "Y"


class TestSelectItem:
    def test_alias_wins(self):
        item = ast.SelectItem(path("X"), alias="p")
        assert item.output_name(3) == "p"

    def test_varpath_renders(self):
        item = ast.SelectItem(path("X"))
        assert item.output_name(3) == "X.price"

    def test_positional_fallback(self):
        item = ast.SelectItem(ast.BinOp("+", num(1), num(2)))
        assert item.output_name(3) == "col3"
