"""NOT normalization in the semantic analyzer."""

import pytest

from repro.pattern.predicates import (
    AttributeDomains,
    ComparisonCondition,
    OrCondition,
)
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze

DOMAINS = AttributeDomains.prices()


def element(sql, name):
    analyzed = analyze(parse_query(sql), DOMAINS)
    return {e.name: e for e in analyzed.spec.elements}[name]


class TestNotComparison:
    def test_not_less_becomes_ge(self):
        e = element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE NOT Y.price < 10 AND X.price > 0",
            "Y",
        )
        (condition,) = e.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        assert condition.op.value == ">="
        assert not e.predicate.has_residual

    def test_double_negation(self):
        e = element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE NOT (NOT Y.price < 10) AND X.price > 0",
            "Y",
        )
        (condition,) = e.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        assert condition.op.value == "<"

    def test_not_equality(self):
        e = element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE NOT Y.price = 10 AND X.price > 0",
            "Y",
        )
        (condition,) = e.predicate.conditions
        assert condition.op.value == "!="


class TestDeMorgan:
    def test_not_or_splits_into_conjuncts(self):
        """NOT (a OR b) = NOT a AND NOT b: two analyzable conditions."""
        e = element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE NOT (Y.price < 10 OR Y.price > 90) AND X.price > 0",
            "Y",
        )
        assert len(e.predicate.conditions) == 2
        ops = sorted(c.op.value for c in e.predicate.conditions)
        assert ops == ["<=", ">="]
        assert not e.predicate.has_residual

    def test_not_and_becomes_or_condition(self):
        """NOT (a AND b) = NOT a OR NOT b: an analyzable OrCondition."""
        e = element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE NOT (Y.price > 10 AND Y.price < 90) AND X.price > 0",
            "Y",
        )
        (condition,) = e.predicate.conditions
        assert isinstance(condition, OrCondition)
        assert not e.predicate.has_residual
        assert len(e.predicate.symbolic) == 2


class TestSemanticsPreserved:
    def test_not_queries_run_identically_under_both_matchers(self):
        import datetime as dt

        from repro.engine.catalog import Catalog
        from repro.engine.executor import Executor
        from repro.engine.table import Table

        table = Table("t", [("date", "date"), ("price", "float")])
        base = dt.date(2000, 1, 3)
        for offset, price in enumerate([5.0, 50.0, 95.0, 50.0, 5.0, 60.0]):
            table.insert({"date": base + dt.timedelta(days=offset), "price": price})
        catalog = Catalog([table])
        query = """
            SELECT A.date
            FROM t SEQUENCE BY date AS (A, B)
            WHERE NOT (A.price < 10 OR A.price > 90)
              AND NOT B.price >= 90
        """
        ops = Executor(catalog, domains=DOMAINS, matcher="ops").execute(query)
        naive = Executor(catalog, domains=DOMAINS, matcher="naive").execute(query)
        assert ops == naive
        assert len(ops) >= 1
