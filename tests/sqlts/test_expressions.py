"""Runtime expression/condition evaluation with bindings and navigation."""

import pytest

from repro.errors import ExecutionError
from repro.sqlts import ast
from repro.sqlts.expressions import evaluate_condition, evaluate_expr

ROWS = [
    {"price": 10.0, "name": "IBM"},
    {"price": 12.0, "name": "IBM"},
    {"price": 9.0, "name": "IBM"},
    {"price": 15.0, "name": "IBM"},
]


def path(var, attr="price", navigation=(), accessor=None):
    return ast.VarPath(var, accessor, tuple(navigation), attr)


class TestVarResolution:
    def test_bare_variable_is_span_start(self):
        bindings = {"X": (1, 1)}
        assert evaluate_expr(path("X"), ROWS, bindings, {}) == 12.0

    def test_bare_starred_variable_is_first_tuple(self):
        bindings = {"Y": (1, 3)}
        assert evaluate_expr(path("Y"), ROWS, bindings, {"Y": True}) == 12.0

    def test_first_last_accessors(self):
        bindings = {"Y": (1, 3)}
        assert evaluate_expr(path("Y", accessor="first"), ROWS, bindings, {}) == 12.0
        assert evaluate_expr(path("Y", accessor="last"), ROWS, bindings, {}) == 15.0

    def test_navigation(self):
        bindings = {"X": (1, 1)}
        assert evaluate_expr(path("X", navigation=["previous"]), ROWS, bindings, {}) == 10.0
        assert evaluate_expr(path("X", navigation=["next"]), ROWS, bindings, {}) == 9.0
        assert (
            evaluate_expr(path("X", navigation=["next", "next"]), ROWS, bindings, {})
            == 15.0
        )

    def test_navigation_off_end_is_null(self):
        bindings = {"X": (0, 0)}
        assert evaluate_expr(path("X", navigation=["previous"]), ROWS, bindings, {}) is None
        bindings = {"X": (3, 3)}
        assert evaluate_expr(path("X", navigation=["next"]), ROWS, bindings, {}) is None

    def test_unbound_variable_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_expr(path("Q"), ROWS, {}, {})

    def test_unknown_attribute_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_expr(path("X", attr="volume"), ROWS, {"X": (0, 0)}, {})


class TestArithmetic:
    B = {"X": (1, 1)}

    def test_binops(self):
        expr = ast.BinOp("*", ast.NumberLit(2), path("X"))
        assert evaluate_expr(expr, ROWS, self.B, {}) == 24.0
        expr = ast.BinOp("-", path("X"), ast.NumberLit(2))
        assert evaluate_expr(expr, ROWS, self.B, {}) == 10.0
        expr = ast.BinOp("/", path("X"), ast.NumberLit(4))
        assert evaluate_expr(expr, ROWS, self.B, {}) == 3.0

    def test_negation(self):
        expr = ast.Neg(path("X"))
        assert evaluate_expr(expr, ROWS, self.B, {}) == -12.0

    def test_division_by_zero(self):
        expr = ast.BinOp("/", path("X"), ast.NumberLit(0))
        with pytest.raises(ExecutionError):
            evaluate_expr(expr, ROWS, self.B, {})

    def test_arithmetic_on_string_raises(self):
        expr = ast.BinOp("+", path("X", attr="name"), ast.NumberLit(1))
        with pytest.raises(ExecutionError):
            evaluate_expr(expr, ROWS, self.B, {})


class TestConditions:
    B = {"X": (1, 1), "Y": (2, 2)}

    def test_comparison(self):
        cond = ast.Comparison("<", path("Y"), path("X"))
        assert evaluate_condition(cond, ROWS, self.B, {})
        cond = ast.Comparison(">", path("Y"), path("X"))
        assert not evaluate_condition(cond, ROWS, self.B, {})

    def test_string_equality(self):
        cond = ast.Comparison("=", path("X", attr="name"), ast.StringLit("IBM"))
        assert evaluate_condition(cond, ROWS, self.B, {})

    def test_off_end_navigation_makes_condition_false(self):
        cond = ast.Comparison(
            ">", path("X", navigation=["previous"] * 5), ast.NumberLit(0)
        )
        assert not evaluate_condition(cond, ROWS, self.B, {})

    def test_boolean_connectives(self):
        true_cond = ast.Comparison(">", path("X"), ast.NumberLit(0))
        false_cond = ast.Comparison("<", path("X"), ast.NumberLit(0))
        assert evaluate_condition(ast.And(true_cond, true_cond), ROWS, self.B, {})
        assert not evaluate_condition(ast.And(true_cond, false_cond), ROWS, self.B, {})
        assert evaluate_condition(ast.Or(false_cond, true_cond), ROWS, self.B, {})
        assert evaluate_condition(ast.Not(false_cond), ROWS, self.B, {})

    def test_incomparable_values(self):
        cond = ast.Comparison("<", path("X", attr="name"), ast.NumberLit(0))
        with pytest.raises(ExecutionError):
            evaluate_condition(cond, ROWS, self.B, {})
