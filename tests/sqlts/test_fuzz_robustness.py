"""Robustness fuzzing: garbage input must fail cleanly, never crash.

Every failure mode of the lexer/parser/analyzer on arbitrary text must be
a :class:`ReproError` subclass (so the CLI's single except clause covers
everything), never a raw ``IndexError``/``RecursionError``/etc.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import AttributeDomains
from repro.sqlts.lexer import tokenize
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze

DOMAINS = AttributeDomains.prices()


@settings(max_examples=400, deadline=None)
@given(st.text(max_size=120))
def test_lexer_never_crashes(text):
    try:
        tokens = tokenize(text)
    except ReproError:
        return
    assert tokens[-1].type.value == "eof"


@settings(max_examples=400, deadline=None)
@given(st.text(max_size=120))
def test_parser_never_crashes(text):
    try:
        parse_query(text)
    except ReproError:
        pass


# Structured near-miss fuzz: SQL-ish fragments shuffled together are far
# more likely to reach deep parser states than raw unicode noise.
_FRAGMENTS = [
    "SELECT", "FROM", "WHERE", "CLUSTER BY", "SEQUENCE BY", "AS", "AND",
    "OR", "NOT", "FIRST", "LAST", "(", ")", ",", ".", "*", "X", "Y",
    "price", "date", "quote", "1.5", "'IBM'", "<", ">", "=", "+", "previous",
]


@settings(max_examples=400, deadline=None)
@given(st.lists(st.sampled_from(_FRAGMENTS), max_size=25))
def test_sql_fragment_soup_never_crashes(fragments):
    text = " ".join(fragments)
    try:
        query = parse_query(text)
    except ReproError:
        return
    # If it parsed, analysis must also either succeed or fail cleanly.
    try:
        analyzed = analyze(query, DOMAINS)
    except ReproError:
        return
    compile_pattern(analyzed.spec)


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="SELECTFROMWHEREASandor()*.,'<>=+-0123456789 \n", max_size=200))
def test_keywordish_noise_never_crashes(text):
    try:
        analyze(parse_query(text), DOMAINS)
    except ReproError:
        pass
