"""SQL-TS parser: every paper query, structure assertions, error cases."""

import pytest

from repro.data import workloads
from repro.errors import SqlTsSyntaxError
from repro.sqlts import ast
from repro.sqlts.parser import parse_query


class TestPaperQueriesParse:
    @pytest.mark.parametrize("name", sorted(workloads.ALL_EXAMPLES))
    def test_example_parses(self, name):
        query = parse_query(workloads.ALL_EXAMPLES[name])
        assert query.select and query.pattern

    def test_example1_structure(self):
        q = parse_query(workloads.EXAMPLE_1)
        assert q.table == "quote"
        assert q.cluster_by == ("name",)
        assert q.sequence_by == ("date",)
        assert [v.name for v in q.pattern] == ["X", "Y", "Z"]
        assert not any(v.star for v in q.pattern)
        assert len(ast.conjuncts(q.where)) == 2

    def test_example2_star_flags(self):
        q = parse_query(workloads.EXAMPLE_2)
        assert [(v.name, v.star) for v in q.pattern] == [
            ("X", False),
            ("Y", True),
            ("Z", False),
        ]

    def test_example9_star_flags(self):
        q = parse_query(workloads.EXAMPLE_9)
        assert [v.star for v in q.pattern] == [True, False, True, True, False, True, False]

    def test_example10_no_cluster_by(self):
        q = parse_query(workloads.EXAMPLE_10)
        assert q.cluster_by == ()
        assert q.table == "djia"
        assert len(q.pattern) == 9


class TestSelectList:
    def test_aliases(self):
        q = parse_query(workloads.EXAMPLE_2)
        assert [item.alias for item in q.select] == [None, "start_date", "end_date"]
        assert q.select[1].output_name(2) == "start_date"

    def test_output_name_defaults_to_path(self):
        q = parse_query("SELECT X.name FROM t AS (X) WHERE X.price > 1")
        assert q.select[0].output_name(1) == "X.name"

    def test_first_last_accessors(self):
        q = parse_query(workloads.EXAMPLE_8)
        first = q.select[1].expr
        last = q.select[2].expr
        assert isinstance(first, ast.VarPath) and first.accessor == "first"
        assert isinstance(last, ast.VarPath) and last.accessor == "last"

    def test_next_navigation_case_insensitive(self):
        q = parse_query(workloads.EXAMPLE_10)
        path = q.select[0].expr
        assert isinstance(path, ast.VarPath)
        assert path.navigation == ("next",) and path.attr == "date"


class TestExpressions:
    def _where(self, condition):
        return parse_query(
            f"SELECT X.price FROM t AS (X, Y) WHERE {condition}"
        ).where

    def test_multiplication_binds_tighter_than_comparison(self):
        cond = self._where("Y.price > 1.15 * X.price")
        assert isinstance(cond, ast.Comparison)
        assert isinstance(cond.right, ast.BinOp) and cond.right.op == "*"

    def test_chained_navigation(self):
        cond = self._where("X.previous.previous.price > 1")
        assert isinstance(cond, ast.Comparison)
        path = cond.left
        assert isinstance(path, ast.VarPath)
        assert path.navigation == ("previous", "previous")

    def test_arithmetic_precedence(self):
        cond = self._where("X.price + 2 * 3 > 1")
        left = cond.left
        assert isinstance(left, ast.BinOp) and left.op == "+"
        assert isinstance(left.right, ast.BinOp) and left.right.op == "*"

    def test_parenthesized_expression(self):
        cond = self._where("(X.price + 2) * 3 > 1")
        left = cond.left
        assert isinstance(left, ast.BinOp) and left.op == "*"

    def test_unary_minus(self):
        cond = self._where("X.price > -5")
        assert isinstance(cond.right, ast.Neg)

    def test_string_literal(self):
        cond = self._where("X.name = 'IBM'")
        assert isinstance(cond.right, ast.StringLit) and cond.right.value == "IBM"

    def test_inequality_spellings(self):
        for spelling in ("<>", "!="):
            cond = self._where(f"X.price {spelling} 5")
            assert cond.op == "!="


class TestBooleanStructure:
    def _where(self, condition):
        return parse_query(f"SELECT X.price FROM t AS (X) WHERE {condition}").where

    def test_and_chain_flattens(self):
        cond = self._where("X.price > 1 AND X.price < 5 AND X.price != 3")
        assert len(ast.conjuncts(cond)) == 3

    def test_or_precedence_below_and(self):
        cond = self._where("X.price > 1 AND X.price < 5 OR X.price = 9")
        assert isinstance(cond, ast.Or)
        assert isinstance(cond.left, ast.And)

    def test_parenthesized_or(self):
        cond = self._where("X.price > 1 AND (X.price < 5 OR X.price = 9)")
        parts = ast.conjuncts(cond)
        assert len(parts) == 2
        assert isinstance(parts[1], ast.Or)

    def test_not(self):
        cond = self._where("NOT X.price > 5")
        assert isinstance(cond, ast.Not)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROM t AS (X)",  # missing SELECT
            "SELECT X.a AS (X)",  # missing FROM
            "SELECT X.a FROM t",  # missing AS pattern
            "SELECT X.a FROM t AS ()",  # empty pattern
            "SELECT X.a FROM t AS (X",  # unclosed pattern
            "SELECT X.a FROM t AS (X) WHERE",  # dangling WHERE
            "SELECT X.a FROM t AS (X) WHERE X.a >",  # dangling comparison
            "SELECT X FROM t AS (X) WHERE X.a > 1",  # bare var, no attribute
            "SELECT X.a FROM t AS (X) WHERE X.a 5",  # missing operator
            "SELECT X.a FROM t AS (X) extra",  # trailing input
            "SELECT FIRST(X FROM t AS (*X) WHERE X.a > 1",  # unclosed FIRST
        ],
    )
    def test_malformed_queries_raise(self, text):
        with pytest.raises(SqlTsSyntaxError):
            parse_query(text)

    def test_error_position_reported(self):
        with pytest.raises(SqlTsSyntaxError) as exc:
            parse_query("SELECT X.a FROM t AS (X) WHERE X.a >")
        assert exc.value.line is not None


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(workloads.ALL_EXAMPLES))
    def test_str_reparses_to_same_shape(self, name):
        """Rendering the AST and reparsing must preserve the structure."""
        original = parse_query(workloads.ALL_EXAMPLES[name])
        reparsed = parse_query(str(original))
        assert reparsed.table == original.table
        assert reparsed.pattern == original.pattern
        assert reparsed.cluster_by == original.cluster_by
        assert len(ast.conjuncts(reparsed.where)) == len(
            ast.conjuncts(original.where)
        )
