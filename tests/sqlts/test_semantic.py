"""Semantic analysis: conjunct assignment, hoisting, symbolization, errors."""

import pytest

from repro.data import workloads
from repro.errors import SemanticError
from repro.pattern.predicates import (
    AttributeDomains,
    ComparisonCondition,
    ResidualCondition,
    StringEqualityCondition,
)
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze

DOMAINS = AttributeDomains.prices()


def analyzed(sql, domains=DOMAINS):
    return analyze(parse_query(sql), domains)


class TestAssignment:
    def test_conjunct_goes_to_latest_variable(self):
        aq = analyzed(workloads.EXAMPLE_1)
        x, y, z = aq.spec.elements
        assert len(x.predicate.conditions) == 0
        assert len(y.predicate.conditions) == 1  # Y.price > 1.15*X.price
        assert len(z.predicate.conditions) == 1

    def test_multiple_conjuncts_per_element(self):
        aq = analyzed(workloads.EXAMPLE_4)
        by_name = {e.name: e for e in aq.spec.elements}
        assert len(by_name["Z"].predicate.conditions) == 3
        assert len(by_name["T"].predicate.conditions) == 2

    def test_star_flags_carried(self):
        aq = analyzed(workloads.EXAMPLE_9)
        assert [e.star for e in aq.spec.elements] == [
            True, False, True, True, False, True, False,
        ]


class TestClusterHoisting:
    def test_cluster_by_attribute_condition_hoisted(self):
        aq = analyzed(workloads.EXAMPLE_4)
        assert len(aq.cluster_filter) == 1
        assert "IBM" in str(aq.cluster_filter[0])
        # ... and removed from the element predicate.
        x = aq.spec.elements[0]
        assert len(x.predicate.conditions) == 0

    def test_not_hoisted_without_cluster_by(self):
        aq = analyzed(
            "SELECT X.price FROM t SEQUENCE BY date AS (X, Y) "
            "WHERE X.name = 'IBM' AND Y.price > X.price"
        )
        assert aq.cluster_filter == ()
        assert len(aq.spec.elements[0].predicate.conditions) == 1

    def test_non_cluster_attribute_not_hoisted(self):
        aq = analyzed(
            "SELECT X.price FROM t CLUSTER BY name SEQUENCE BY date AS (X, Y) "
            "WHERE X.price = 10 AND Y.price > X.price"
        )
        assert aq.cluster_filter == ()


class TestSymbolization:
    def _element(self, sql, name):
        aq = analyzed(sql)
        return {e.name: e for e in aq.spec.elements}[name]

    def test_own_previous_reference(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE Y.price < Y.previous.price AND X.price > 0",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        assert not element.predicate.has_residual

    def test_adjacent_variable_becomes_offset(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, Y) WHERE Y.price < X.price "
            "AND X.price > 0",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        # X resolves to offset -1 from Y.
        attrs = {condition.left.attr, condition.right.attr}
        offsets = {attr.offset for attr in attrs if attr is not None}
        assert offsets == {0, -1}

    def test_distance_two_reference_offsets(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, Y, Z) WHERE Z.price < X.price "
            "AND X.price > 0 AND Y.price > 0",
            "Z",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        offsets = {
            term.attr.offset
            for term in (condition.left, condition.right)
            if term.attr is not None
        }
        assert -2 in offsets

    def test_reference_across_star_is_residual(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, *Y, Z) "
            "WHERE Y.price < Y.previous.price AND Z.price < X.price",
            "Z",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ResidualCondition)
        assert element.predicate.has_residual

    def test_multiplicative_rewrite_with_positive_domain(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, Y) WHERE Y.price > 1.15 * X.price "
            "AND X.price > 0",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ComparisonCondition)
        atoms = condition.symbolic_atoms(DOMAINS)
        assert atoms is not None and "price@0/price@-1" in str(atoms[0])

    def test_multiplicative_without_positive_domain_is_unanalyzable(self):
        aq = analyze(
            parse_query(
                "SELECT X.price FROM t AS (X, Y) WHERE Y.price > 1.15 * X.price"
            ),
            AttributeDomains.none(),
        )
        element = aq.spec.elements[1]
        # Runtime-evaluable but symbolically opaque.
        assert element.predicate.has_residual

    def test_string_condition(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, Y) WHERE Y.name = 'IBM' "
            "AND X.price > 0",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, StringEqualityCondition)

    def test_or_condition_becomes_analyzable_dnf(self):
        """Section 8 extension: OR conjuncts symbolize into a DNF."""
        from repro.pattern.predicates import OrCondition

        element = self._element(
            "SELECT X.price FROM t AS (X, Y) "
            "WHERE (Y.price < 10 OR Y.price > 90) AND X.price > 0",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, OrCondition)
        assert not element.predicate.has_residual
        assert len(element.predicate.symbolic) == 2

    def test_or_with_opaque_leaf_is_residual(self):
        element = self._element(
            "SELECT X.price FROM t AS (X, *Y, Z) "
            "WHERE Y.price < Y.previous.price "
            "AND (Z.price < X.price OR Z.price > 90)",
            "Z",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ResidualCondition)
        assert element.predicate.has_residual

    def test_first_last_in_where_is_residual(self):
        element = self._element(
            "SELECT X.price FROM t AS (*X, Y) "
            "WHERE X.price > X.previous.price AND Y.price > FIRST(X).price",
            "Y",
        )
        (condition,) = element.predicate.conditions
        assert isinstance(condition, ResidualCondition)


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(SemanticError):
            analyzed("SELECT X.price FROM t AS (X) WHERE Q.price > 1")

    def test_unknown_variable_in_select(self):
        with pytest.raises(SemanticError):
            analyzed("SELECT Q.price FROM t AS (X) WHERE X.price > 1")

    def test_duplicate_pattern_variables(self):
        with pytest.raises(SemanticError):
            analyzed("SELECT X.price FROM t AS (X, X) WHERE X.price > 1")

    def test_condition_without_variables(self):
        with pytest.raises(SemanticError):
            analyzed("SELECT X.price FROM t AS (X) WHERE 1 < 2")

    def test_first_on_unstarred_variable(self):
        with pytest.raises(SemanticError):
            analyzed("SELECT FIRST(X).price FROM t AS (X) WHERE X.price > 1")


class TestPaperExamplesAnalyze:
    @pytest.mark.parametrize("name", sorted(workloads.ALL_EXAMPLES))
    def test_all_examples_analyze(self, name):
        aq = analyzed(workloads.ALL_EXAMPLES[name])
        assert len(aq.spec) == len(aq.query.pattern)

    def test_example10_fully_symbolic(self):
        """Every double-bottom conjunct must be analyzable (the whole
        Section 6 point of the ratio rewrite)."""
        aq = analyzed(workloads.EXAMPLE_10)
        for element in aq.spec.elements:
            assert not element.predicate.has_residual, element.name
