"""SQL-TS lexer: tokens, positions, strings, comments, errors."""

import pytest

from repro.errors import SqlTsSyntaxError
from repro.sqlts.lexer import tokenize
from repro.sqlts.tokens import TokenType


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        assert kinds("select SELECT SeLeCt") == [
            (TokenType.KEYWORD, "SELECT")
        ] * 3

    def test_identifiers_preserve_case(self):
        assert kinds("quote Price _x a1") == [
            (TokenType.IDENT, "quote"),
            (TokenType.IDENT, "Price"),
            (TokenType.IDENT, "_x"),
            (TokenType.IDENT, "a1"),
        ]

    def test_navigation_words_are_identifiers(self):
        # previous/next are contextual: the parser decides, not the lexer.
        assert kinds("previous NEXT")[0][0] is TokenType.IDENT

    def test_star_is_distinct_token(self):
        assert kinds("*")[0][0] is TokenType.STAR


class TestNumbers:
    @pytest.mark.parametrize(
        "text, value",
        [("42", "42"), ("3.14", "3.14"), ("0.80", "0.80"), (".5", ".5"), ("1e3", "1e3"), ("2.5E-2", "2.5E-2")],
    )
    def test_number_forms(self, text, value):
        ((kind, got),) = kinds(text)
        assert kind is TokenType.NUMBER and got == value

    def test_number_followed_by_dot_attr_not_consumed(self):
        # "1.15 * X.price": the dot after X starts a path, not a decimal.
        tokens = kinds("1.15 * X.price")
        assert tokens == [
            (TokenType.NUMBER, "1.15"),
            (TokenType.STAR, "*"),
            (TokenType.IDENT, "X"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENT, "price"),
        ]


class TestStrings:
    def test_simple_string(self):
        ((kind, value),) = kinds("'IBM'")
        assert kind is TokenType.STRING and value == "IBM"

    def test_escaped_quote(self):
        ((_, value),) = kinds("'O''Neil'")
        assert value == "O'Neil"

    def test_unterminated_string(self):
        with pytest.raises(SqlTsSyntaxError):
            tokenize("'oops")


class TestOperators:
    def test_two_char_operators(self):
        assert [v for _, v in kinds("<= >= <> !=")] == ["<=", ">=", "!=", "!="]

    def test_one_char_operators(self):
        assert [v for _, v in kinds("< > = + - /")] == ["<", ">", "=", "+", "-", "/"]

    def test_punctuation(self):
        assert [v for _, v in kinds("( ) , .")] == ["(", ")", ",", "."]

    def test_unknown_character(self):
        with pytest.raises(SqlTsSyntaxError) as exc:
            tokenize("SELECT @")
        assert "@" in str(exc.value)


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert kinds("SELECT -- the works\n X") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENT, "X"),
        ]

    def test_positions_track_lines(self):
        tokens = tokenize("SELECT\n  X")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(SqlTsSyntaxError) as exc:
            tokenize("a\n  ~")
        assert exc.value.line == 2 and exc.value.column == 3
