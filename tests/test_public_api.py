"""The public surface: top-level exports, errors, core value types."""

import pytest

import repro
from repro.errors import (
    ConstraintError,
    ExecutionError,
    PlanningError,
    ReproError,
    SchemaError,
    SemanticError,
    SqlTsSyntaxError,
)
from repro.match.base import Instrumentation, Match, Span


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_pattern_compiles(self):
        """The README/docstring quickstart must actually run."""
        import datetime as dt

        table = repro.Table(
            "quote", [("name", "str"), ("date", "date"), ("price", "float")]
        )
        day = dt.date(1999, 1, 25)
        for offset, price in enumerate([100.0, 120.0, 90.0]):
            table.insert(
                {"name": "IBM", "date": day + dt.timedelta(days=offset), "price": price}
            )
        executor = repro.Executor(
            repro.Catalog([table]), domains=repro.AttributeDomains.prices()
        )
        result = executor.execute(
            """
            SELECT X.name, Y.date AS spike_day
            FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z)
            WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price
            """
        )
        assert result.rows == (("IBM", day + dt.timedelta(days=1)),)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            SqlTsSyntaxError,
            SemanticError,
            PlanningError,
            ExecutionError,
            SchemaError,
            ConstraintError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    def test_syntax_error_location_formatting(self):
        error = SqlTsSyntaxError("boom", line=3, column=7)
        assert "line 3" in str(error) and "column 7" in str(error)
        assert (error.line, error.column) == (3, 7)

    def test_syntax_error_without_location(self):
        assert str(SqlTsSyntaxError("boom")) == "boom"

    def test_one_except_catches_everything(self):
        caught = 0
        for error in (SemanticError("a"), SchemaError("b"), PlanningError("c")):
            try:
                raise error
            except ReproError:
                caught += 1
        assert caught == 3


class TestSpanAndMatch:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span(3, 2)
        assert Span(2, 2).length == 1
        assert Span(2, 5).length == 4

    def test_match_bindings_roundtrip(self):
        match = Match(0, 3, (Span(0, 1), Span(2, 3)), ("A", "B"))
        assert match.bindings() == {"A": Span(0, 1), "B": Span(2, 3)}
        assert match.span_of("A") == Span(0, 1)

    def test_instrumentation_repr(self):
        inst = Instrumentation(record_trace=True)
        inst.record(0, 1)
        assert "tests=1" in repr(inst)
        assert "trace[1]" in repr(inst)
        bare = Instrumentation()
        bare.record(5, 2)
        assert "trace" not in repr(bare)
