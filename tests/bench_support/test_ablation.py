"""The ablated compilations used by the design-choice benchmarks."""

from repro.bench.ablation import compile_blind
from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.match.base import Instrumentation


class TestBlindCompilation:
    def test_matrices_are_all_unknown_off_diagonal(self, example4_pattern):
        blind = compile_blind(example4_pattern)
        for j in range(1, 5):
            assert blind.theta[j, j] is TRUE
            assert blind.phi[j, j] is FALSE
            for k in range(1, j):
                assert blind.theta[j, k] is UNKNOWN
                assert blind.phi[j, k] is UNKNOWN

    def test_blind_shifts_collapse_to_one(self, example4_pattern):
        blind = compile_blind(example4_pattern)
        assert blind.shift(1) == 1 and blind.next(1) == 0
        for j in range(2, 5):
            assert blind.shift(j) == 1
            assert blind.next(j) == 1

    def test_blind_star_plan(self, example9_pattern):
        blind = compile_blind(example9_pattern)
        assert blind.graph is not None
        for j in range(2, blind.m + 1):
            assert blind.shift(j) == 1
            assert blind.next(j) == 1

    def test_blind_plan_is_still_correct(self, example4_pattern, example9_pattern):
        import random

        from repro.pattern.compiler import compile_pattern

        rng = random.Random(41)
        for pattern in (example4_pattern, example9_pattern):
            blind = compile_blind(pattern)
            full = compile_pattern(pattern)
            rows = []
            value = 36.0
            for _ in range(300):
                value = max(22.0, min(55.0, value + rng.choice([-6, -2, -1, 1, 2, 6])))
                rows.append({"price": value})
            expected = NaiveMatcher().find_matches(rows, full)
            assert OpsStarMatcher().find_matches(rows, blind) == expected

    def test_blind_plan_costs_more(self, example4_pattern):
        """Blindness must never be cheaper than the full compilation."""
        import random

        from repro.pattern.compiler import compile_pattern

        rng = random.Random(43)
        rows = []
        value = 45.0
        for _ in range(800):
            value = max(30.0, min(60.0, value + rng.choice([-5, -2, -1, 1, 2, 5])))
            rows.append({"price": value})
        blind_inst, full_inst = Instrumentation(), Instrumentation()
        OpsStarMatcher().find_matches(rows, compile_blind(example4_pattern), blind_inst)
        OpsStarMatcher().find_matches(
            rows, compile_pattern(example4_pattern), full_inst
        )
        assert blind_inst.tests >= full_inst.tests
