"""The benchmark harness itself: comparison plumbing and reporting."""

import pytest

from repro.bench.harness import MatcherRun, compare_matchers, compare_on_rows
from repro.bench.report import format_table
from repro.bench.workloads import (
    constant_pattern_spec,
    staircase_rows,
    staircase_spec,
)
from repro.errors import ExecutionError
from repro.pattern.compiler import compile_pattern


class TestCompareOnRows:
    def test_counts_and_agreement(self):
        cp = compile_pattern(staircase_spec(4))
        rows = staircase_rows(800, seed=3)
        runs = compare_on_rows(rows, cp, ("naive", "ops"))
        assert set(runs) == {"naive", "ops"}
        assert runs["naive"].matches == runs["ops"].matches
        assert runs["ops"].predicate_tests < runs["naive"].predicate_tests

    def test_speedup_over(self):
        fast = MatcherRun("ops", predicate_tests=100, matches=1)
        slow = MatcherRun("naive", predicate_tests=400, matches=1)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        zero = MatcherRun("ops", predicate_tests=0, matches=0)
        assert zero.speedup_over(slow) == float("inf")

    def test_unknown_matcher(self):
        cp = compile_pattern(staircase_spec(2))
        with pytest.raises(ExecutionError):
            compare_on_rows([], cp, ("warp",))

    def test_disagreement_detected(self):
        """A matcher with different semantics must trip the identity check."""
        from repro.match.naive import NaiveMatcher
        from repro.pattern.spec import PatternElement, PatternSpec
        from tests.conftest import PREV, PRICE, price_predicate
        from repro.pattern.predicates import comparison

        rise = price_predicate(comparison(PRICE, ">", PREV))
        cp = compile_pattern(
            PatternSpec([PatternElement("A", rise), PatternElement("B", rise)])
        )
        rows = [{"price": float(p)} for p in (1, 2, 3, 4, 5)]
        with pytest.raises(AssertionError):
            compare_on_rows(rows, cp, ("naive", NaiveMatcher(overlapping=True)))


class TestCompareMatchers:
    def test_sql_level(self, paper_catalog):
        from repro.data.workloads import EXAMPLE_8
        from repro.pattern.predicates import AttributeDomains

        runs = compare_matchers(
            paper_catalog,
            EXAMPLE_8,
            matchers=("naive", "ops"),
            domains=AttributeDomains.prices(),
        )
        assert runs["naive"].result == runs["ops"].result
        assert runs["ops"].result is not None


class TestWorkloads:
    def test_staircase_spec_shape(self):
        spec = staircase_spec(5, final_bound=3.0)
        assert len(spec) == 6
        assert [e.star for e in spec] == [True] * 5 + [False]

    def test_staircase_spec_validation(self):
        with pytest.raises(ValueError):
            staircase_spec(0)

    def test_staircase_rows_never_trigger_final(self):
        rows = staircase_rows(500, floor=8.0)
        assert all(row["price"] >= 8.0 for row in rows)

    def test_constant_pattern_spec(self):
        spec = constant_pattern_spec([10, 11, 15])
        assert len(spec) == 3
        assert not spec.has_star

    def test_staircase_quadratic_gap(self):
        """The complex-pattern sweep mechanism: naive superlinear, OPS
        linear — the speedup must grow with the alternation count."""
        rows = staircase_rows(1500, seed=5)
        speedups = []
        for k in (2, 6):
            runs = compare_on_rows(rows, compile_pattern(staircase_spec(k)), ("naive", "ops"))
            speedups.append(runs["ops"].speedup_over(runs["naive"]))
        assert speedups[1] > speedups[0] > 1.0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["matcher", "tests"],
            [("naive", 123456), ("ops", 789)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "matcher" in lines[1]
        assert "123,456" in text and "789" in text

    def test_floats_formatted(self):
        text = format_table(["x"], [(1.23456,)])
        assert "1.23" in text


class TestRunAll:
    def test_quick_run_produces_all_sections(self):
        import io

        from repro.bench.run_all import main

        out = io.StringIO()
        assert main(["--quick"], out=out) == 0
        text = out.getvalue()
        for marker in (
            "E1 / Figure 5",
            "E4 / Section 7",
            "E5 / Section 7",
            "structure-blind",
            "E9 / Section 8",
            "example_10",
        ):
            assert marker in text, marker
