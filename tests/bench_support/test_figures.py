"""ASCII figure rendering."""

from repro.bench.figures import (
    path_curve_csv,
    render_path_curve,
    render_path_curves,
    render_series_with_matches,
)


class TestPathCurves:
    NAIVE = [(1, 1), (2, 2), (3, 3), (2, 1), (3, 1)]
    OPS = [(1, 1), (2, 2), (3, 3), (3, 1)]

    def test_single_curve_shape(self):
        text = render_path_curve(self.NAIVE, "naive")
        lines = text.splitlines()
        assert lines[0] == "naive"
        assert lines[1].startswith("j=3")
        # Row j=1 has stars at steps 1, 4, 5.
        j1_row = [line for line in lines if line.startswith("j=1")][0]
        body = j1_row.split("|", 1)[1]
        assert [k + 1 for k, c in enumerate(body) if c == "*"] == [1, 4, 5]

    def test_empty_trace(self):
        assert "(empty trace)" in render_path_curve([], "x")

    def test_both_panels(self):
        text = render_path_curves(self.NAIVE, self.OPS)
        assert "naive search path" in text
        assert "OPS search path" in text

    def test_csv(self):
        csv = path_curve_csv(self.NAIVE, self.OPS)
        lines = csv.strip().splitlines()
        assert lines[0] == "step,algorithm,i,j"
        assert len(lines) == 1 + len(self.NAIVE) + len(self.OPS)
        assert "1,naive,1,1" in lines
        assert "4,ops,3,1" in lines


class TestSeriesRendering:
    def test_markers_under_match_regions(self):
        values = [1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 4.0]
        text = render_series_with_matches(values, [(2, 4)], height=4)
        lines = text.splitlines()
        marker_row = lines[-2]
        assert marker_row[2:5] == "^^^"
        assert marker_row[0] == " " and marker_row[-1] == " "
        assert "1 match regions" in lines[-1]

    def test_downsampling_long_series(self):
        values = [float(i % 50) for i in range(1000)]
        text = render_series_with_matches(values, [], width=60)
        assert max(len(line) for line in text.splitlines()) <= 60

    def test_empty_series(self):
        assert "(empty series)" in render_series_with_matches([], [])
