"""Lower-triangular matrix container: domain enforcement and round-trips."""

import pytest

from repro.logic.matrix import TriangularMatrix
from repro.logic.tribool import FALSE, TRUE, UNKNOWN


class TestConstruction:
    def test_default_fill_is_unknown(self):
        m = TriangularMatrix(3)
        assert m[3, 1] is UNKNOWN
        assert m[2, 2] is UNKNOWN

    def test_custom_fill(self):
        m = TriangularMatrix(2, fill=TRUE)
        assert m[2, 1] is TRUE

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TriangularMatrix(-1)

    def test_zero_size_allowed(self):
        m = TriangularMatrix(0)
        assert m.to_rows() == []


class TestIndexing:
    def test_set_get_roundtrip(self):
        m = TriangularMatrix(4)
        m[4, 2] = FALSE
        assert m[4, 2] is FALSE

    def test_string_values_coerced(self):
        m = TriangularMatrix(2)
        m[2, 1] = "U"
        assert m[2, 1] is UNKNOWN

    def test_upper_triangle_rejected(self):
        m = TriangularMatrix(3)
        with pytest.raises(IndexError):
            m[1, 2]

    def test_out_of_range_rejected(self):
        m = TriangularMatrix(3)
        with pytest.raises(IndexError):
            m[4, 1]
        with pytest.raises(IndexError):
            m[2, 0]

    def test_diagonal_excluded_when_requested(self):
        m = TriangularMatrix(3, include_diagonal=False)
        with pytest.raises(IndexError):
            m[2, 2]
        m[3, 2] = TRUE  # strictly-lower entry is fine
        assert m[3, 2] is TRUE

    def test_contains(self):
        m = TriangularMatrix(3, include_diagonal=False)
        assert (3, 1) in m
        assert (2, 2) not in m
        assert (1, 2) not in m
        assert (9, 1) not in m


class TestRowsAndLiterals:
    def test_from_rows_with_diagonal(self):
        m = TriangularMatrix.from_rows([["1"], ["0", "U"]])
        assert m[1, 1] is TRUE
        assert m[2, 1] is FALSE
        assert m[2, 2] is UNKNOWN

    def test_from_rows_without_diagonal(self):
        m = TriangularMatrix.from_rows([[], ["1"], ["0", "U"]], include_diagonal=False)
        assert m[2, 1] is TRUE
        assert m[3, 2] is UNKNOWN

    def test_from_rows_validates_row_lengths(self):
        with pytest.raises(ValueError):
            TriangularMatrix.from_rows([["1", "0"]])

    def test_to_rows_roundtrip(self):
        rows = [["1"], ["U", "0"], ["0", "1", "U"]]
        assert TriangularMatrix.from_rows(rows).to_rows() == rows

    def test_row_accessor(self):
        m = TriangularMatrix.from_rows([["1"], ["U", "0"]])
        assert m.row(2) == [UNKNOWN, FALSE]

    def test_cells_iteration_sorted(self):
        m = TriangularMatrix.from_rows([["1"], ["U", "0"]])
        assert list(m.cells()) == [
            (1, 1, TRUE),
            (2, 1, UNKNOWN),
            (2, 2, FALSE),
        ]


class TestEquality:
    def test_equal_matrices(self):
        a = TriangularMatrix.from_rows([["1"], ["U", "0"]])
        b = TriangularMatrix.from_rows([["1"], ["U", "0"]])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_values(self):
        a = TriangularMatrix.from_rows([["1"], ["U", "0"]])
        b = TriangularMatrix.from_rows([["1"], ["U", "1"]])
        assert a != b

    def test_diagonal_mode_distinguishes(self):
        a = TriangularMatrix(2, include_diagonal=True)
        b = TriangularMatrix(2, include_diagonal=False)
        assert a != b
