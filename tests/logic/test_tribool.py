"""Kleene three-valued logic: the exact truth tables the paper relies on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.tribool import FALSE, TRUE, UNKNOWN, Tribool, kleene_all, kleene_any

VALUES = [TRUE, FALSE, UNKNOWN]
tribools = st.sampled_from(VALUES)


class TestSingletons:
    def test_interning(self):
        assert Tribool("1") is TRUE
        assert Tribool("0") is FALSE
        assert Tribool("U") is UNKNOWN

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Tribool("2")

    def test_flags(self):
        assert TRUE.is_true and not TRUE.is_false and not TRUE.is_unknown
        assert FALSE.is_false and not FALSE.is_true
        assert UNKNOWN.is_unknown and not UNKNOWN.is_true and not UNKNOWN.is_false

    def test_no_implicit_truthiness(self):
        with pytest.raises(TypeError):
            bool(TRUE)
        with pytest.raises(TypeError):
            if UNKNOWN:  # pragma: no cover - the raise is the assertion
                pass


class TestCoercion:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            (True, TRUE),
            (False, FALSE),
            (1, TRUE),
            (0, FALSE),
            ("U", UNKNOWN),
            ("u", UNKNOWN),
            ("1", TRUE),
            ("0", FALSE),
            (TRUE, TRUE),
        ],
    )
    def test_coerce(self, raw, expected):
        assert Tribool.coerce(raw) is expected

    def test_coerce_rejects_garbage(self):
        with pytest.raises(TypeError):
            Tribool.coerce("yes")
        with pytest.raises(TypeError):
            Tribool.coerce(2)

    def test_equality_against_plain_values(self):
        assert TRUE == 1
        assert FALSE == 0
        assert UNKNOWN == "U"
        assert TRUE != 0


class TestPaperTruthTable:
    """Section 4.2: 'standard 3-valued logic, where not U = U,
    U and 1 = U, and U and 0 = 0'."""

    def test_not_u_is_u(self):
        assert (~UNKNOWN) is UNKNOWN

    def test_u_and_one_is_u(self):
        assert (UNKNOWN & TRUE) is UNKNOWN

    def test_u_and_zero_is_zero(self):
        assert (UNKNOWN & FALSE) is FALSE

    def test_full_and_table(self):
        table = {
            (TRUE, TRUE): TRUE,
            (TRUE, FALSE): FALSE,
            (TRUE, UNKNOWN): UNKNOWN,
            (FALSE, FALSE): FALSE,
            (FALSE, UNKNOWN): FALSE,
            (UNKNOWN, UNKNOWN): UNKNOWN,
        }
        for (a, b), expected in table.items():
            assert (a & b) is expected
            assert (b & a) is expected

    def test_full_or_table(self):
        table = {
            (TRUE, TRUE): TRUE,
            (TRUE, FALSE): TRUE,
            (TRUE, UNKNOWN): TRUE,
            (FALSE, FALSE): FALSE,
            (FALSE, UNKNOWN): UNKNOWN,
            (UNKNOWN, UNKNOWN): UNKNOWN,
        }
        for (a, b), expected in table.items():
            assert (a | b) is expected
            assert (b | a) is expected

    def test_negation_involution(self):
        for value in VALUES:
            assert ~(~value) is value


class TestKleeneProperties:
    @given(tribools, tribools)
    def test_de_morgan(self, a, b):
        assert ~(a & b) is (~a | ~b)
        assert ~(a | b) is (~a & ~b)

    @given(tribools, tribools, tribools)
    def test_associativity(self, a, b, c):
        assert ((a & b) & c) is (a & (b & c))
        assert ((a | b) | c) is (a | (b | c))

    @given(tribools, tribools, tribools)
    def test_distributivity(self, a, b, c):
        assert (a & (b | c)) is ((a & b) | (a & c))

    @given(tribools)
    def test_identity_elements(self, a):
        assert (a & TRUE) is a
        assert (a | FALSE) is a

    @given(tribools)
    def test_absorbing_elements(self, a):
        assert (a & FALSE) is FALSE
        assert (a | TRUE) is TRUE

    def test_operators_accept_raw_values(self):
        assert (UNKNOWN & 1) is UNKNOWN
        assert (UNKNOWN & 0) is FALSE
        assert (1 & UNKNOWN) is UNKNOWN


class TestFolds:
    def test_kleene_all_empty_is_true(self):
        assert kleene_all([]) is TRUE

    def test_kleene_all_short_circuits_on_false(self):
        assert kleene_all([TRUE, FALSE, UNKNOWN]) is FALSE

    def test_kleene_all_u_propagates(self):
        assert kleene_all([TRUE, UNKNOWN, TRUE]) is UNKNOWN

    def test_kleene_any_empty_is_false(self):
        assert kleene_any([]) is FALSE

    def test_kleene_any(self):
        assert kleene_any([FALSE, UNKNOWN]) is UNKNOWN
        assert kleene_any([FALSE, TRUE]) is TRUE

    @given(st.lists(tribools, max_size=6))
    def test_folds_match_pairwise(self, values):
        expected_and = TRUE
        expected_or = FALSE
        for v in values:
            expected_and = expected_and & v
            expected_or = expected_or | v
        assert kleene_all(values) is expected_and
        assert kleene_any(values) is expected_or


class TestHashRepr:
    def test_hashable(self):
        assert len({TRUE, FALSE, UNKNOWN, Tribool("1")}) == 3

    def test_repr_matches_paper_symbols(self):
        assert repr(TRUE) == "1"
        assert repr(FALSE) == "0"
        assert repr(UNKNOWN) == "U"
