"""Example 9: the paper's worked star-case compilation.

The paper gives the full theta matrix for the 7-element pattern
(*X, Y, *Z, *T, U, *V, S), constructs G_P^6, and concludes
shift(6) = 3 and next(6) = 1 (via the non-deterministic node theta_41).
The phi matrix in the published PDF is garbled by typesetting, so phi is
checked through hand-derived individual entries instead of a full
transcription.
"""

from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.compiler import compile_pattern


class TestTheta:
    def test_exact_matrix(self, example9_pattern):
        theta = build_theta(example9_pattern)
        assert theta.to_rows() == [
            ["1"],
            ["U", "1"],
            ["0", "U", "1"],
            ["1", "U", "0", "1"],
            ["U", "1", "U", "U", "1"],
            ["0", "U", "1", "0", "U", "1"],
            ["U", "0", "U", "U", "0", "U", "1"],
        ]


class TestPhiEntries:
    def test_hand_derived_entries(self, example9_pattern):
        phi = build_phi(example9_pattern)
        # p1 => p4 (identical rises), so NOT p4 => NOT p1: phi_41 = 0.
        assert phi[4, 1] is FALSE
        # p3 => p6 (identical falls): phi_63 = 0.
        assert phi[6, 3] is FALSE
        # NOT p6 (a rise-or-flat) proves neither p1 nor its negation: U.
        assert phi[6, 1] is UNKNOWN
        # Diagonal is 0 for non-tautological predicates.
        for j in range(1, 8):
            assert phi[j, j] is FALSE


class TestFailureGraph6:
    def test_structure(self, example9_compiled):
        graph = example9_compiled.graph
        assert graph is not None
        failure = graph.failure_graph(6)
        # Last row is phi row 6: [U, U, 0, U, U] -> node (6,3) removed.
        assert (6, 3) not in failure.values
        assert failure.values[(6, 1)] is UNKNOWN
        # theta_31 = 0: node removed entirely.
        assert (3, 1) not in failure.values
        assert failure.values[(4, 1)] is TRUE

    def test_paper_shift_conclusion(self, example9_compiled):
        """"There is a non-zero path from theta_41 to phi_61, thus
        shift(6) = 3" — and no path from (2,1) or (3,1)."""
        graph = example9_compiled.graph
        failure = graph.failure_graph(6)
        reaching = failure.nodes_reaching_last_row()
        assert (4, 1) in reaching
        assert (2, 1) not in reaching  # shift 1 impossible
        assert (3, 1) not in reaching  # shift 2 impossible (node absent)
        assert example9_compiled.shift(6) == 3

    def test_paper_next_conclusion(self, example9_compiled):
        """theta_41 = 1 but has two outgoing arcs (not deterministic),
        so next(6) = 1."""
        graph = example9_compiled.graph
        failure = graph.failure_graph(6)
        assert len(failure.arcs[(4, 1)]) == 2
        assert example9_compiled.next(6) == 1


class TestWholePlan:
    def test_first_position(self, example9_compiled):
        assert example9_compiled.shift(1) == 1
        assert example9_compiled.next(1) == 0

    def test_all_shifts_within_bounds(self, example9_compiled):
        cp = example9_compiled
        for j in range(1, cp.m + 1):
            assert 1 <= cp.shift(j) <= j
            assert 0 <= cp.next(j) <= j - cp.shift(j) + 1

    def test_star_plan_has_graph_not_s(self, example9_compiled):
        assert example9_compiled.graph is not None
        assert example9_compiled.s_matrix is None

    def test_render_smoke(self, example9_compiled):
        graph = example9_compiled.graph
        text = graph.render()
        assert "row 7" in text
        text6 = graph.render(6)
        assert "row 6" in text6 and "row 7" not in text6

    def test_ablation_matches_paper_rules(self, example9_pattern):
        """With the equivalence refinement off, the Example 9 worked
        values must still hold (they come from the paper's literal rules)."""
        cp = compile_pattern(example9_pattern, use_equivalence=False)
        assert cp.shift(6) == 3
        assert cp.next(6) == 1


class TestEquivalenceRefinement:
    """The default compiler strengthens the paper's shift(6) = 3 to 4.

    Under the greedy (maximal-run) star semantics, the tuple that ends
    old *T's run necessarily *failed* the rise predicate p4; since
    p1 = p4, a pattern shifted by 3 would need its leading *X to either
    stop exactly with T (diagonal path — then the new *Z must be a fall
    where phi_63 = 0 proves the input is not one) or consume that failed
    tuple (the down arc — impossible for an equivalent predicate).  Shift
    3 is therefore refuted; the paper's rule set simply does not exploit
    the maximality information.  Soundness is covered by the differential
    suite (identical matches with and without the refinement).
    """

    def test_shift6_strengthened(self, example9_refined):
        assert example9_refined.shift(6) == 4

    def test_equivalent_star_node_is_diagonal_only(self, example9_refined):
        failure = example9_refined.graph.failure_graph(6)
        assert failure.arcs[(4, 1)] == ((5, 2),)

    def test_refined_plan_still_bounded(self, example9_refined):
        cp = example9_refined
        for j in range(1, cp.m + 1):
            assert 1 <= cp.shift(j) <= j
            assert 0 <= cp.next(j) <= j - cp.shift(j) + 1
