"""Disjunctive pattern predicates through the whole optimizer (Section 8).

The paper: "We have also extended the OPS algorithm to optimize patterns
containing disjunctive conditions."  These tests drive OR predicates
through symbolization, the theta/phi analysis, compilation, and the
matchers — including the differential guarantee.
"""

import random

from repro.logic.tribool import FALSE, TRUE, UNKNOWN
from repro.match.naive import NaiveMatcher
from repro.match.ops_star import OpsStarMatcher
from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import OrCondition, comparison, predicate
from repro.pattern.spec import PatternElement, PatternSpec
from tests.conftest import DOMAINS, PREV, PRICE, price_predicate, price_rows


def or_predicate(*branches, label=""):
    """Each branch is a list of (left, op, right) comparison triples."""
    condition = OrCondition(
        [[comparison(*leaf) for leaf in branch] for branch in branches]
    )
    return predicate(condition, domains=DOMAINS, label=label)


class TestEvaluation:
    def test_any_branch_suffices(self):
        pred = or_predicate([(PRICE, "<", 10)], [(PRICE, ">", 90)])
        from repro.pattern.predicates import EvalContext

        rows = [{"price": 5.0}, {"price": 50.0}, {"price": 95.0}]
        assert pred.test(EvalContext(rows, 0))
        assert not pred.test(EvalContext(rows, 1))
        assert pred.test(EvalContext(rows, 2))

    def test_branch_is_conjunction(self):
        pred = or_predicate(
            [(PRICE, ">", 40), (PRICE, "<", 50)],
            [(PRICE, ">", 90)],
        )
        from repro.pattern.predicates import EvalContext

        rows = [{"price": 45.0}, {"price": 60.0}, {"price": 95.0}]
        assert pred.test(EvalContext(rows, 0))
        assert not pred.test(EvalContext(rows, 1))
        assert pred.test(EvalContext(rows, 2))


class TestAnalysis:
    def test_disjoint_or_vs_band_gives_zero(self):
        """(p < 10 OR p > 90) contradicts 40 < p < 50: theta = 0."""
        extremes = or_predicate([(PRICE, "<", 10)], [(PRICE, ">", 90)])
        band = price_predicate(
            comparison(PRICE, ">", 40), comparison(PRICE, "<", 50)
        )
        theta = build_theta([band, extremes])
        assert theta[2, 1] is FALSE

    def test_or_implied_by_narrow_branch(self):
        """p > 95 implies (p < 10 OR p > 90): theta = 1 via single-disjunct
        witness."""
        extremes = or_predicate([(PRICE, "<", 10)], [(PRICE, ">", 90)])
        very_high = price_predicate(comparison(PRICE, ">", 95))
        theta = build_theta([extremes, very_high])
        assert theta[2, 1] is TRUE

    def test_or_premise_implies_common_weakening(self):
        """(40<p<45 OR 50<p<55) implies 30 < p: every disjunct does."""
        split_band = or_predicate(
            [(PRICE, ">", 40), (PRICE, "<", 45)],
            [(PRICE, ">", 50), (PRICE, "<", 55)],
        )
        wide = price_predicate(comparison(PRICE, ">", 30))
        theta = build_theta([wide, split_band])
        assert theta[2, 1] is TRUE

    def test_collective_implication_stays_unknown(self):
        """0<p<10 implies (p<=5 OR p>=5) only collectively — the sound
        one-witness rule cannot prove it, so U, never a wrong 0/1."""
        whole = price_predicate(
            comparison(PRICE, ">", 0), comparison(PRICE, "<", 10)
        )
        halves = or_predicate([(PRICE, "<=", 5)], [(PRICE, ">=", 5)])
        theta = build_theta([halves, whole])
        assert theta[2, 1] is UNKNOWN

    def test_phi_with_or_target(self):
        """NOT (p >= 10) = p < 10, which implies (p < 10 OR p > 90)."""
        at_least_ten = price_predicate(comparison(PRICE, ">=", 10))
        extremes = or_predicate([(PRICE, "<", 10)], [(PRICE, ">", 90)])
        phi = build_phi([at_least_ten, extremes])
        assert phi[2, 1] is TRUE


class TestEndToEnd:
    def test_compiled_plan_exploits_disjunction(self):
        """A pattern whose OR element contradicts its neighbour gets a
        0 entry and hence a real shift."""
        band = price_predicate(
            comparison(PRICE, ">", 40), comparison(PRICE, "<", 50), label="band"
        )
        extremes = or_predicate(
            [(PRICE, "<", 10)], [(PRICE, ">", 90)], label="extremes"
        )
        spec = PatternSpec(
            [PatternElement("A", band), PatternElement("B", extremes)]
        )
        plan = compile_pattern(spec)
        assert plan.theta[2, 1] is FALSE

    def test_differential_with_or_patterns(self):
        rng = random.Random(17)
        for _ in range(150):
            elements = []
            for index in range(rng.randrange(2, 5)):
                if rng.random() < 0.5:
                    pred = or_predicate(
                        [(PRICE, "<", rng.randrange(20, 40))],
                        [(PRICE, ">", rng.randrange(60, 80))],
                    )
                else:
                    pred = price_predicate(
                        comparison(PRICE, rng.choice(["<", ">"]), PREV)
                    )
                elements.append(
                    PatternElement(f"V{index}", pred, star=rng.random() < 0.4)
                )
            spec = PatternSpec(elements)
            plan = compile_pattern(spec)
            rows = []
            value = 50.0
            for _ in range(rng.randrange(5, 60)):
                value = max(5.0, min(95.0, value + rng.choice([-20, -5, -1, 1, 5, 20])))
                rows.append({"price": value})
            assert OpsStarMatcher().find_matches(rows, plan) == NaiveMatcher().find_matches(
                rows, plan
            )

    def test_sql_level_or_query(self):
        """OR through the full SQL pipeline with matcher agreement."""
        from repro.engine.catalog import Catalog
        from repro.engine.executor import Executor
        from repro.engine.table import Table
        import datetime as dt

        table = Table("t", [("date", "date"), ("price", "float")])
        base = dt.date(2000, 1, 3)
        for offset, price in enumerate([45.0, 95.0, 45.0, 5.0, 45.0, 92.0]):
            table.insert({"date": base + dt.timedelta(days=offset), "price": price})
        catalog = Catalog([table])
        query = """
            SELECT A.date, B.price
            FROM t SEQUENCE BY date AS (A, B)
            WHERE A.price > 40 AND A.price < 50
              AND (B.price < 10 OR B.price > 90)
        """
        ops = Executor(catalog, domains=DOMAINS, matcher="ops").execute(query)
        naive = Executor(catalog, domains=DOMAINS, matcher="naive").execute(query)
        assert ops == naive
        assert len(ops) == 3
