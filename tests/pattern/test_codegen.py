"""Unit tests for the compiled predicate fast path (repro.pattern.codegen).

The contract under test: for every covered condition form, the lowered
closure is observationally identical to the interpreted ``evaluate`` —
same booleans, same False on off-end navigation and missing columns,
same ``TypeError`` on non-numeric arithmetic — and uncovered forms make
``lower_predicate`` return None (per-element interpreted fallback).
"""

import pytest

from repro.constraints.atoms import Op
from repro.pattern.codegen import lower_condition, lower_predicate
from repro.pattern.compiler import compile_pattern
from repro.pattern.predicates import (
    Attr,
    EvalContext,
    OrCondition,
    ResidualCondition,
    StringEqualityCondition,
    comparison,
    predicate,
)
from repro.pattern.spec import PatternElement, PatternSpec
from repro.sqlts.parser import parse_query
from repro.sqlts.semantic import analyze
from tests.conftest import DOMAINS, PREV, PRICE, price_predicate, price_rows

ROWS = price_rows(50, 48, 52, 47, 47)


def assert_parity(condition, rows, indices=None, bindings=None):
    """The lowered closure agrees with interpreted evaluate everywhere."""
    lowered = lower_condition(condition)
    assert lowered is not None
    bindings = bindings or {}
    for index in indices if indices is not None else range(-2, len(rows) + 2):
        expected = condition.evaluate(EvalContext(rows, index, bindings))
        assert lowered(rows, index, bindings) == expected, (condition, index)


class TestComparisonLowering:
    def test_attr_vs_attr(self):
        assert_parity(comparison(PRICE, "<", PREV), ROWS)
        assert_parity(comparison(PRICE, ">=", 0.98 * PREV), ROWS)

    def test_attr_vs_constant_and_flipped(self):
        assert_parity(comparison(PRICE, ">", 48), ROWS)
        assert_parity(comparison(48, "<=", PRICE), ROWS)

    def test_ground_comparison_is_constant(self):
        true_cond = comparison(1, "<", 2)
        false_cond = comparison(2, "<", 1)
        assert lower_condition(true_cond)([], 0, {}) is True
        assert lower_condition(false_cond)([], 0, {}) is False

    def test_linear_terms(self):
        assert_parity(comparison(2 * PRICE + 1, "<", 3 * PREV - 4), ROWS)

    def test_off_end_navigation_is_false(self):
        condition = comparison(PRICE, "<", PREV)
        lowered = lower_condition(condition)
        assert lowered(ROWS, 0, {}) is False  # previous of row 0
        assert lowered(ROWS, -1, {}) is False
        assert lowered(ROWS, len(ROWS), {}) is False

    def test_missing_column_is_false(self):
        rows = [{"volume": 10}, {"price": 50.0}]
        assert_parity(comparison(PRICE, ">", 0), rows)
        assert_parity(comparison(PRICE, ">", PREV), rows, indices=[0, 1])

    def test_type_error_parity_on_strings(self):
        rows = [{"price": "not-a-number"}]
        condition = comparison(PRICE, ">", 0)
        lowered = lower_condition(condition)
        with pytest.raises(TypeError):
            condition.evaluate(EvalContext(rows, 0, {}))
        with pytest.raises(TypeError):
            lowered(rows, 0, {})


class TestBandFusion:
    BAND = price_predicate(
        comparison(0.98 * PREV, "<", PRICE), comparison(PRICE, "<", 1.02 * PREV)
    )

    def test_fused_band_parity(self):
        lowered = lower_predicate(self.BAND)
        assert lowered is not None
        for index in range(-1, len(ROWS) + 1):
            assert lowered(ROWS, index, {}) == self.BAND.test(
                EvalContext(ROWS, index, {})
            )

    def test_fusion_short_circuits_like_the_interpreter(self):
        # First conjunct False on a non-numeric row must not mask the
        # TypeError ordering: interpreted evaluates conjunct 1 fully
        # (raising on the arithmetic) before conjunct 2.
        rows = [{"price": 10.0}, {"price": "bad"}]
        lowered = lower_predicate(self.BAND)
        with pytest.raises(TypeError):
            self.BAND.test(EvalContext(rows, 1, {}))
        with pytest.raises(TypeError):
            lowered(rows, 1, {})

    def test_distinct_cells_do_not_fuse_incorrectly(self):
        # Conditions over different cells take the generic conjunction
        # path; parity must still hold.
        pred = price_predicate(
            comparison(PRICE, ">", 40), comparison(Attr("price", -2), "<", 60)
        )
        lowered = lower_predicate(pred)
        assert lowered is not None
        for index in range(len(ROWS)):
            assert lowered(ROWS, index, {}) == pred.test(EvalContext(ROWS, index, {}))


class TestStringEquality:
    ROWS = [{"name": "IBM"}, {"name": "ACME"}, {"volume": 1}]

    def test_eq_and_ne(self):
        assert_parity(StringEqualityCondition(Attr("name", 0), Op.EQ, "IBM"), self.ROWS)
        assert_parity(StringEqualityCondition(Attr("name", 0), Op.NE, "IBM"), self.ROWS)

    def test_offset_and_missing_column(self):
        assert_parity(
            StringEqualityCondition(Attr("name", -1), Op.EQ, "IBM"), self.ROWS
        )


class TestDisjunctionLowering:
    def test_or_condition_parity(self):
        condition = OrCondition(
            [
                [comparison(PRICE, "<", 48)],
                [comparison(PRICE, ">", 50), comparison(PRICE, "<", 53)],
            ]
        )
        assert_parity(condition, ROWS)

    def test_or_with_opaque_branch_falls_back(self):
        condition = OrCondition(
            [
                [comparison(PRICE, "<", 48)],
                [ResidualCondition(lambda ctx: True, "opaque")],
            ]
        )
        assert lower_condition(condition) is None


class TestFallback:
    def test_opaque_residual_lowers_to_none(self):
        pred = predicate(
            comparison(PRICE, ">", 0),
            ResidualCondition(lambda ctx: True, "opaque"),
            domains=DOMAINS,
        )
        assert lower_predicate(pred) is None

    def test_residual_with_fast_form_lowers(self):
        fast = lambda rows, index, bindings: True
        pred = predicate(
            ResidualCondition(lambda ctx: True, "opaque", fast=fast),
            domains=DOMAINS,
        )
        assert lower_predicate(pred) is not None

    def test_empty_predicate_lowers_to_true(self):
        pred = predicate(domains=DOMAINS)
        assert lower_predicate(pred)(ROWS, 0, {}) is True


class TestCompiledPatternEvaluators:
    def spec(self):
        return PatternSpec(
            [
                PatternElement("A", price_predicate(comparison(PRICE, ">", PREV))),
                PatternElement(
                    "B",
                    predicate(
                        ResidualCondition(lambda ctx: True, "opaque"),
                        domains=DOMAINS,
                    ),
                ),
            ]
        )

    def test_evaluators_align_with_elements(self):
        compiled = compile_pattern(self.spec())
        assert compiled.evaluators[0] is not None  # comparison lowers
        assert compiled.evaluators[1] is None  # opaque residual falls back

    def test_codegen_off_disables_every_evaluator(self):
        compiled = compile_pattern(self.spec(), codegen=False)
        assert compiled.evaluators == (None, None)


class TestSemanticResidualFastForms:
    def test_analyzer_attaches_fast_forms(self):
        # Z.price > 1.5 * X.price reaches across a star: it stays a
        # residual, and the analyzer must attach a compiled fast form.
        query = parse_query(
            """
            SELECT X.price FROM quote CLUSTER BY name SEQUENCE BY date
            AS (X, *Y, Z) WHERE Y.price < Y.previous.price
            AND Z.price > X.price * 1.5
            """
        )
        analyzed = analyze(query, DOMAINS)
        residuals = [
            condition
            for element in analyzed.spec.elements
            for condition in element.predicate.conditions
            if isinstance(condition, ResidualCondition)
        ]
        assert residuals
        assert all(condition.fast is not None for condition in residuals)

    def test_residual_fast_parity_with_bindings(self):
        query = parse_query(
            """
            SELECT X.price FROM quote CLUSTER BY name SEQUENCE BY date
            AS (X, *Y, Z) WHERE Y.price < Y.previous.price
            AND Z.price > X.price * 1.5
            """
        )
        analyzed = analyze(query, DOMAINS)
        predicate_z = analyzed.spec.elements[2].predicate
        residual = next(
            condition
            for condition in predicate_z.conditions
            if isinstance(condition, ResidualCondition)
        )
        rows = price_rows(50, 48, 46, 80)
        for index in range(len(rows)):
            bindings = {"X": (0, 0), "Y": (1, 2)}
            assert residual.fast(rows, index, bindings) == residual.evaluate(
                EvalContext(rows, index, bindings)
            )
