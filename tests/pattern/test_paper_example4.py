"""Examples 5, 6, 7: the paper's worked non-star compilation, asserted exactly.

The paper computes, for the Example 4 pattern (p1..p4):

    theta = [1; 1 1; 0 0 1; 0 0 U 1]
    phi   = [0; U 0; U U 0; U U 0 0]
    S     = [U; U U; 0 0 U]            (Example 6)
    shift = 1 1 1 3                    (Example 7)
    next  = 0 1 2 1                    (Example 7)
"""

from repro.pattern.analysis import build_phi, build_theta
from repro.pattern.shift_next import build_s_matrix, compute_shift_next


class TestExample5Matrices:
    def test_theta(self, example4_pattern):
        theta = build_theta(example4_pattern)
        assert theta.to_rows() == [
            ["1"],
            ["1", "1"],
            ["0", "0", "1"],
            ["0", "0", "U", "1"],
        ]

    def test_phi(self, example4_pattern):
        phi = build_phi(example4_pattern)
        assert phi.to_rows() == [
            ["0"],
            ["U", "0"],
            ["U", "U", "0"],
            ["U", "U", "0", "0"],
        ]

    def test_individual_derivations(self, example4_predicates):
        """The six relations the paper lists in Example 5."""
        p1, p2, p3, p4 = [p.symbolic.disjuncts[0] for p in example4_predicates]
        assert p2.implies(p1)
        assert not p3.conjunction_satisfiable_with(p1)
        assert not p3.conjunction_satisfiable_with(p2)
        assert not p4.conjunction_satisfiable_with(p2)
        assert not p4.conjunction_satisfiable_with(p1)
        assert p3.implies(p4)


class TestExample6SMatrix:
    def test_s_matrix(self, example4_pattern):
        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        s = build_s_matrix(theta, phi)
        assert s.to_rows() == [[], ["U"], ["U", "U"], ["0", "0", "U"]]

    def test_s_entries_formula(self, example4_pattern):
        """Spot-check the entries against the paper's expansion."""
        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        s = build_s_matrix(theta, phi)
        assert s[2, 1] == phi[2, 1]
        assert s[3, 1] == (theta[2, 1] & phi[3, 2])
        assert s[4, 1] == (theta[2, 1] & theta[3, 2] & phi[4, 3])


class TestExample7ShiftNext:
    def test_shift(self, example4_pattern):
        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        arrays, _ = compute_shift_next(theta, phi)
        assert arrays.shift[1:] == (1, 1, 1, 3)

    def test_next(self, example4_pattern):
        theta = build_theta(example4_pattern)
        phi = build_phi(example4_pattern)
        arrays, _ = compute_shift_next(theta, phi)
        assert arrays.next_[1:] == (0, 1, 2, 1)

    def test_compiled_pattern_agrees(self, example4_compiled):
        cp = example4_compiled
        assert [cp.shift(j) for j in range(1, 5)] == [1, 1, 1, 3]
        assert [cp.next(j) for j in range(1, 5)] == [0, 1, 2, 1]
        assert cp.s_matrix is not None and cp.graph is None
